"""Pass base class and the per-module AST context passes operate on."""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.finding import Finding, Severity

#: Names exported by :mod:`repro.utils.units`; an expression that
#: references one of these is considered unit-annotated.
UNITS_NAMES: Set[str] = {
    "KIB",
    "MIB",
    "GIB",
    "TIB",
    "KB",
    "MB",
    "GB",
    "NS",
    "US",
    "MS",
    "SECOND",
    "gib_per_s",
    "gb_per_s",
}

#: Expression nodes we ascend through when looking for the arithmetic
#: chain a literal participates in (e.g. ``434 * NS``).
_CHAIN_NODES = (ast.BinOp, ast.UnaryOp)


class ModuleContext:
    """One parsed module plus the lookup structures passes need."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.posix_path = path.replace("\\", "/")
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self._parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent

    # -- navigation ----------------------------------------------------
    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current = self._parents.get(node)
        while current is not None:
            yield current
            current = self._parents.get(current)

    def line_text(self, lineno: int) -> str:
        """The stripped source line (1-based), used as the baseline key."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    # -- naming context ------------------------------------------------
    def context_names(self, node: ast.AST) -> List[str]:
        """Names that give a literal meaning, nearest first.

        Collected while ascending: keyword-argument names, assignment
        targets (plain or annotated, including attribute targets), and
        enclosing function names.  ``clock_hz=3.3e9`` yields
        ``["clock_hz", ...]``; a dict literal inside a dataclass field
        default yields the field name.
        """
        names: List[str] = []
        child = node
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, ast.keyword) and ancestor.arg:
                names.append(ancestor.arg)
            elif isinstance(ancestor, ast.arguments):
                param = _default_param_name(ancestor, child)
                if param is not None:
                    names.append(param)
            elif isinstance(ancestor, ast.Assign):
                for target in ancestor.targets:
                    names.extend(_target_names(target))
            elif isinstance(ancestor, ast.AnnAssign):
                names.extend(_target_names(ancestor.target))
            elif isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                names.append(ancestor.name)
            child = ancestor
        return names

    def nearest_name(self, node: ast.AST) -> Optional[str]:
        names = self.context_names(node)
        return names[0] if names else None

    # -- unit detection ------------------------------------------------
    def arithmetic_chain(self, node: ast.AST) -> ast.AST:
        """The outermost arithmetic expression ``node`` is part of."""
        current = node
        parent = self._parents.get(current)
        while isinstance(parent, _CHAIN_NODES):
            current = parent
            parent = self._parents.get(current)
        return current

    def referenced_names(self, node: ast.AST) -> Set[str]:
        names: Set[str] = set()
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name):
                names.add(sub.id)
            elif isinstance(sub, ast.Attribute):
                names.add(sub.attr)
        return names

    def chain_uses_units(self, node: ast.AST) -> bool:
        """True if the literal's arithmetic chain references a unit name."""
        chain = self.arithmetic_chain(node)
        return bool(self.referenced_names(chain) & UNITS_NAMES)

    def module_references(self, name: str) -> bool:
        """True if the module mentions ``name`` anywhere (import or use)."""
        for sub in ast.walk(self.tree):
            if isinstance(sub, ast.Name) and sub.id == name:
                return True
            if isinstance(sub, ast.Attribute) and sub.attr == name:
                return True
            if isinstance(sub, (ast.Import, ast.ImportFrom)):
                for alias in sub.names:
                    if name in (alias.name, alias.asname):
                        return True
        return False


class AnalysisPass:
    """Base class: a named rule set scoped to parts of the source tree.

    Subclasses set ``name``, ``description``, ``severity``, and
    ``scope`` (path substrings, POSIX separators) and implement
    :meth:`check`.  Scoping by substring lets test fixtures opt into a
    pass by mirroring the directory name (``fixtures/costmodel/x.py``
    is in scope for a pass scoped to ``costmodel/``).
    """

    name: str = ""
    description: str = ""
    severity: Severity = Severity.ERROR
    scope: Tuple[str, ...] = ()
    #: True for whole-project passes (see :class:`ProjectPass`).
    project: bool = False

    def in_scope(self, posix_path: str) -> bool:
        if not self.scope:
            return True
        return any(fragment in posix_path for fragment in self.scope)

    def run(self, ctx: ModuleContext) -> List[Finding]:
        if not self.in_scope(ctx.posix_path):
            return []
        findings: List[Finding] = []
        seen = set()
        for finding in self.check(ctx):
            key = (finding.line, finding.message)
            if key in seen:
                continue  # e.g. two literals of one expression, same diagnosis
            seen.add(key)
            findings.append(finding)
        return findings

    def check(self, ctx: ModuleContext) -> Sequence[Finding]:
        raise NotImplementedError

    def finding(
        self, ctx: ModuleContext, node: ast.AST, message: str
    ) -> Finding:
        line = getattr(node, "lineno", 1)
        column = getattr(node, "col_offset", 0) + 1
        return Finding(
            rule=self.name,
            severity=self.severity,
            path=ctx.posix_path,
            line=line,
            column=column,
            message=message,
            context=ctx.line_text(line),
        )


class ProjectPass(AnalysisPass):
    """An interprocedural pass over a whole :class:`ProjectContext`.

    Subclasses implement :meth:`check_project` instead of
    :meth:`check`; the runner builds one project context per run and
    invokes every project pass exactly once.  Scoping still applies,
    but *per finding* — a project pass analyzes every module it needs
    and reports only into the paths its ``scope`` covers (the
    :meth:`project_finding` helper enforces this).

    ``invalidates_on`` lists path fragments whose modules carry global
    contracts (e.g. a schema declaration): when such a module changes,
    the incremental cache re-analyzes the whole project instead of
    just the import-graph dependents.
    """

    project: bool = True
    invalidates_on: Tuple[str, ...] = ()

    def run(self, ctx: ModuleContext) -> List[Finding]:
        return []  # project passes never run per-module

    def check(self, ctx: ModuleContext) -> Sequence[Finding]:
        return []

    def check_project(self, project: "object") -> Sequence[Finding]:
        raise NotImplementedError

    def run_project(self, project: "object") -> List[Finding]:
        """Deduplicated, scope-filtered findings for one project."""
        findings: List[Finding] = []
        seen = set()
        for finding in self.check_project(project):
            if not self.in_scope(finding.path):
                continue
            key = (finding.path, finding.line, finding.message)
            if key in seen:
                continue
            seen.add(key)
            findings.append(finding)
        findings.sort(key=lambda f: (f.path, f.line, f.column))
        return findings

    def project_finding(
        self,
        ctx: ModuleContext,
        node: ast.AST,
        message: str,
        severity: Optional[Severity] = None,
    ) -> Finding:
        """A finding anchored in one module of the project."""
        line = getattr(node, "lineno", 1)
        column = getattr(node, "col_offset", 0) + 1
        return Finding(
            rule=self.name,
            severity=severity if severity is not None else self.severity,
            path=ctx.posix_path,
            line=line,
            column=column,
            message=message,
            context=ctx.line_text(line),
        )

    def finding_at(
        self,
        path: str,
        line: int,
        column: int,
        message: str,
        context: str = "",
        severity: Optional[Severity] = None,
    ) -> Finding:
        """A finding at a raw location (when only line info is known)."""
        return Finding(
            rule=self.name,
            severity=severity if severity is not None else self.severity,
            path=path,
            line=line,
            column=column,
            message=message,
            context=context,
        )


def _default_param_name(args: ast.arguments, default: ast.AST) -> Optional[str]:
    """Name of the parameter a default expression belongs to."""
    positional = list(getattr(args, "posonlyargs", [])) + list(args.args)
    for arg, value in zip(positional[len(positional) - len(args.defaults):],
                          args.defaults):
        if value is default:
            return arg.arg
    for arg, value in zip(args.kwonlyargs, args.kw_defaults):
        if value is default:
            return arg.arg
    return None


def _target_names(target: ast.AST) -> List[str]:
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, ast.Attribute):
        return [target.attr]
    if isinstance(target, (ast.Tuple, ast.List)):
        names: List[str] = []
        for element in target.elts:
            names.extend(_target_names(element))
        return names
    return []


def dotted_name(node: ast.AST) -> str:
    """Best-effort dotted rendering of a Name/Attribute chain."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
    else:
        parts.append("<expr>")
    return ".".join(reversed(parts))
