"""Incremental analysis cache: re-analyze only what changed.

The cache stores, per analyzed file, a content hash, the set of
scanned files it imports (the file-dependency graph), and the
findings the last run produced for it.  A warm run then:

* re-parses only *dirty* files — content changed, file is new, or a
  transitive *dependent* of a changed file (an importer, since
  cross-module findings in an importer can change when its dependency
  changes);
* additionally parses the transitive *dependencies* of dirty files so
  interprocedural passes see the symbols they resolve against — these
  dependency parses keep their **cached** findings (they are context,
  not analysis targets);
* replays cached findings verbatim for every clean file.

Two safety valves force a full re-analysis: the *tool fingerprint* (a
digest of the analysis package's own sources — a pass edit invalidates
everything) and :attr:`~repro.analysis.base.ProjectPass.invalidates_on`
(a change to a global-contract module, e.g. the manifest schema,
invalidates the whole project, not just its import-graph dependents).

The cache file is JSON and safe to delete at any time; a missing,
corrupt, or version-mismatched cache simply means a cold run.
"""

from __future__ import annotations

import ast
import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set

CACHE_VERSION = 1


def file_hash(source: str) -> str:
    """Content hash used for dirty-file detection."""
    return hashlib.blake2b(source.encode("utf-8"), digest_size=16).hexdigest()


def tool_fingerprint() -> str:
    """Digest of the analysis package's own sources.

    Any edit to a pass, the project builder, or the cache itself must
    invalidate every cached finding — stale findings from an older
    tool version are worse than a cold run.
    """
    package_dir = Path(__file__).resolve().parent
    digest = hashlib.blake2b(digest_size=16)
    for source in sorted(package_dir.rglob("*.py")):
        digest.update(source.relative_to(package_dir).as_posix().encode())
        digest.update(source.read_bytes())
    return digest.hexdigest()


@dataclass
class CacheEntry:
    """One file's cached state."""

    hash: str
    deps: List[str] = field(default_factory=list)
    findings: List[Dict[str, object]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {
            "hash": self.hash,
            "deps": sorted(self.deps),
            "findings": self.findings,
        }


class AnalysisCache:
    """Load/query/save the per-file incremental state."""

    def __init__(
        self,
        path: str,
        entries: Optional[Dict[str, CacheEntry]] = None,
        fingerprint: Optional[str] = None,
    ) -> None:
        self.path = path
        self.entries: Dict[str, CacheEntry] = entries or {}
        self.fingerprint = fingerprint or tool_fingerprint()

    @classmethod
    def load(cls, path: str) -> "AnalysisCache":
        """Load a cache; any mismatch degrades to an empty (cold) cache."""
        current = tool_fingerprint()
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return cls(path, fingerprint=current)
        if (
            not isinstance(payload, dict)
            or payload.get("version") != CACHE_VERSION
            or payload.get("tool_fingerprint") != current
        ):
            return cls(path, fingerprint=current)
        entries: Dict[str, CacheEntry] = {}
        raw_files = payload.get("files", {})
        if isinstance(raw_files, dict):
            for file_path, raw in raw_files.items():
                if not isinstance(raw, dict):
                    continue
                entries[str(file_path)] = CacheEntry(
                    hash=str(raw.get("hash", "")),
                    deps=[str(d) for d in raw.get("deps", [])],
                    findings=[
                        f for f in raw.get("findings", []) if isinstance(f, dict)
                    ],
                )
        return cls(path, entries=entries, fingerprint=current)

    def save(self) -> None:
        payload = {
            "version": CACHE_VERSION,
            "tool_fingerprint": self.fingerprint,
            "files": {
                path: entry.to_dict()
                for path, entry in sorted(self.entries.items())
            },
        }
        tmp = f"{self.path}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1, sort_keys=False)
            handle.write("\n")
        os.replace(tmp, self.path)

    # -- dirty-set computation -------------------------------------------
    def changed_files(self, hashes: Dict[str, str]) -> Set[str]:
        """Files whose content differs from the cache (or are new)."""
        return {
            path
            for path, digest in hashes.items()
            if path not in self.entries or self.entries[path].hash != digest
        }

    def with_dependents(self, changed: Set[str]) -> Set[str]:
        """``changed`` plus every transitive importer (reverse closure)."""
        reverse: Dict[str, Set[str]] = {}
        for path, entry in self.entries.items():
            for dep in entry.deps:
                reverse.setdefault(dep, set()).add(path)
        dirty = set(changed)
        stack = list(changed)
        while stack:
            current = stack.pop()
            for importer in reverse.get(current, ()):
                if importer not in dirty:
                    dirty.add(importer)
                    stack.append(importer)
        return dirty

    def dependency_closure(self, roots: Set[str]) -> Set[str]:
        """``roots`` plus everything they transitively import (cached)."""
        out = set(roots)
        stack = list(roots)
        while stack:
            current = stack.pop()
            entry = self.entries.get(current)
            if entry is None:
                continue
            for dep in entry.deps:
                if dep not in out:
                    out.add(dep)
                    stack.append(dep)
        return out


# -- lightweight import extraction -------------------------------------------
#
# The parse worklist needs the dependencies of a freshly parsed dirty
# file *before* the whole project is built, so import targets are
# resolved purely against the path-derived module-name table of the
# scanned file set (same suffix-insensitive rule as
# ``ProjectContext.resolve_module``).


def import_targets(tree: ast.Module, module_name: str) -> List[str]:
    """Dotted import targets of a module (relative imports resolved)."""
    targets: List[str] = []

    def visit(stmts: Sequence[ast.stmt]) -> None:
        for node in stmts:
            if isinstance(node, ast.Import):
                targets.extend(alias.name for alias in node.names)
            elif isinstance(node, ast.ImportFrom):
                base = _import_base(node, module_name)
                for alias in node.names:
                    if alias.name == "*":
                        if base:
                            targets.append(base)
                        continue
                    targets.append(
                        f"{base}.{alias.name}" if base else alias.name
                    )
            elif isinstance(node, (ast.If, ast.Try)):
                visit([s for s in ast.iter_child_nodes(node)
                       if isinstance(s, ast.stmt)])

    visit(tree.body)
    return targets


def _import_base(node: ast.ImportFrom, module_name: str) -> str:
    if not node.level:
        return node.module or ""
    parts = module_name.split(".")
    keep = len(parts) - node.level
    base = ".".join(parts[:keep]) if keep > 0 else ""
    if node.module:
        base = f"{base}.{node.module}" if base else node.module
    return base


def resolve_import_path(
    dotted: str, name_table: Dict[str, str]
) -> Optional[str]:
    """Map a dotted import target onto a scanned file path, or None.

    Tries the full dotted name with leading components progressively
    stripped (suffix-insensitive, matching ``resolve_module``), then
    the same with the last component dropped (``from mod import sym``
    records ``mod.sym``).
    """
    for candidate in (dotted, dotted.rpartition(".")[0]):
        if not candidate:
            continue
        parts = candidate.split(".")
        for start in range(len(parts)):
            name = ".".join(parts[start:])
            if name in name_table:
                return name_table[name]
    return None
