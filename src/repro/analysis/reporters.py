"""Text and JSON rendering of an analysis report.

The JSON schema is versioned and covered by a schema-stability test;
bump ``SCHEMA_VERSION`` when changing field names or structure.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.analysis.runner import AnalysisReport

#: v2: findings carry a stable ``id``; the summary splits
#: ``errors``/``warnings``; ``files_parsed``/``files_from_cache``
#: expose the incremental cache's work split.
SCHEMA_VERSION = 2
TOOL_NAME = "repro.analysis"


def render_text(report: AnalysisReport, show_baselined: bool = False) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines: List[str] = []
    for finding in report.findings:
        if finding.baselined and not show_baselined:
            continue
        lines.append(str(finding))
        if finding.context:
            lines.append(f"    {finding.context}")
    for entry in report.unused_baseline_entries:
        lines.append(
            f"stale baseline entry (matched nothing): {entry.path} "
            f"[{entry.rule}] {entry.context!r} — delete it"
        )
    unbaselined = len(report.unbaselined)
    baselined = len(report.findings) - unbaselined
    lines.append(
        f"{report.files_scanned} file(s) scanned: "
        f"{unbaselined} finding(s), {baselined} baselined"
        + (
            f", {len(report.unused_baseline_entries)} stale baseline entr(y/ies)"
            if report.unused_baseline_entries
            else ""
        )
    )
    return "\n".join(lines)


def render_json(report: AnalysisReport) -> str:
    """Machine-readable report with a stable, versioned schema."""
    by_rule: Dict[str, int] = {}
    for finding in report.findings:
        by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
    payload = {
        "schema_version": SCHEMA_VERSION,
        "tool": TOOL_NAME,
        "files_scanned": report.files_scanned,
        "files_parsed": report.files_parsed,
        "files_from_cache": report.files_from_cache,
        "summary": {
            "total": len(report.findings),
            "unbaselined": len(report.unbaselined),
            "baselined": len(report.findings) - len(report.unbaselined),
            "errors": len(report.errors),
            "warnings": len(report.warnings),
            "by_rule": dict(sorted(by_rule.items())),
        },
        "stale_baseline_entries": [
            {"path": e.path, "rule": e.rule, "context": e.context}
            for e in report.unused_baseline_entries
        ],
        "findings": [finding.to_dict() for finding in report.findings],
    }
    return json.dumps(payload, indent=2, sort_keys=False)
