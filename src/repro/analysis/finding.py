"""The finding/severity model shared by all analysis passes."""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass
from typing import Dict, Optional


class Severity(enum.Enum):
    """How bad a finding is; any unbaselined finding fails the run."""

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:
        return self.value


@dataclass
class Finding:
    """One rule violation at one source location.

    ``context`` is the stripped source line the finding points at; the
    baseline matches on (path, rule, context) so suppressions survive
    unrelated edits that shift line numbers.
    """

    rule: str
    severity: Severity
    path: str
    line: int
    column: int
    message: str
    context: str = ""
    baselined: bool = False
    suppression_reason: Optional[str] = None

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.column}"

    @property
    def id(self) -> str:
        """Stable finding identity, independent of line numbers.

        Hashes ``(rule, path, context, message)`` so the id survives
        unrelated edits that shift the finding's line, but changes when
        the diagnosed code or diagnosis changes.  Used by tooling to
        track findings across runs.
        """
        payload = "|".join((self.rule, self.path, self.context, self.message))
        return hashlib.blake2b(payload.encode(), digest_size=6).hexdigest()

    def to_dict(self) -> Dict[str, object]:
        """Stable serialization consumed by the JSON reporter."""
        return {
            "id": self.id,
            "rule": self.rule,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
            "context": self.context,
            "baselined": self.baselined,
            "suppression_reason": self.suppression_reason,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Finding":
        """Rebuild a finding from :meth:`to_dict` output (cache replay).

        Baseline state is *not* restored — the baseline is re-applied
        to every run's merged finding list, cached or fresh.
        """
        return cls(
            rule=str(payload["rule"]),
            severity=Severity(str(payload["severity"])),
            path=str(payload["path"]),
            line=int(payload["line"]),  # type: ignore[arg-type]
            column=int(payload["column"]),  # type: ignore[arg-type]
            message=str(payload["message"]),
            context=str(payload.get("context", "")),
        )

    def __str__(self) -> str:
        mark = " (baselined)" if self.baselined else ""
        return f"{self.location}: {self.severity} [{self.rule}] {self.message}{mark}"
