"""The finding/severity model shared by all analysis passes."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional


class Severity(enum.Enum):
    """How bad a finding is; any unbaselined finding fails the run."""

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:
        return self.value


@dataclass
class Finding:
    """One rule violation at one source location.

    ``context`` is the stripped source line the finding points at; the
    baseline matches on (path, rule, context) so suppressions survive
    unrelated edits that shift line numbers.
    """

    rule: str
    severity: Severity
    path: str
    line: int
    column: int
    message: str
    context: str = ""
    baselined: bool = False
    suppression_reason: Optional[str] = None

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.column}"

    def to_dict(self) -> Dict[str, object]:
        """Stable serialization consumed by the JSON reporter."""
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
            "context": self.context,
            "baselined": self.baselined,
            "suppression_reason": self.suppression_reason,
        }

    def __str__(self) -> str:
        mark = " (baselined)" if self.baselined else ""
        return f"{self.location}: {self.severity} [{self.rule}] {self.message}{mark}"
