"""Whole-project context: symbols, imports, calls, and attribute accesses.

:class:`ProjectContext` is the interprocedural counterpart of
:class:`~repro.analysis.base.ModuleContext`.  It parses every module of
one analysis run together and derives the structures cross-module
passes need:

* a **module table** keyed by dotted name, with suffix-tolerant import
  resolution (``repro.exec.pool`` and ``exec.pool`` both resolve when
  the scan root is ``src/`` or ``src/repro/``);
* a **symbol table**: classes, methods, module functions, module-level
  constants, plus per-class attribute *types* inferred from
  ``__init__`` assignments and parameter annotations;
* a **call graph** over best-effort resolved callees (module functions,
  ``self.method()``, constructor calls, attribute chains stepped
  through inferred types, ``threading.Thread(target=...)`` edges), with
  every call site also recording its *name* so name-based matching
  still works when resolution fails;
* an **attribute-access graph**: every ``self.attr`` (and guarded
  module-global) read/write/mutate, annotated with the set of locks
  held at the access — the input of the lock-discipline pass.

Everything here is best-effort static analysis: precision is tuned for
the idioms this codebase actually uses (``threading`` locks held via
``with``, types established in ``__init__``), and the passes built on
top are expected to carry their own exemption lists for the rest.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.base import ModuleContext

#: threading primitives that *are* locks (acquiring via ``with``).
LOCK_TYPES = {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}

#: threading primitives that are internally synchronized — accesses to
#: attributes of these types are never lock-discipline findings.
SYNCHRONIZED_TYPES = {
    "Event",
    "Barrier",
    "Queue",
    "SimpleQueue",
    "LifoQueue",
    "PriorityQueue",
    "local",
}

#: method names that mutate their receiver (container/primitive API).
MUTATOR_METHODS = {
    "append",
    "appendleft",
    "add",
    "clear",
    "discard",
    "extend",
    "extendleft",
    "insert",
    "pop",
    "popleft",
    "popitem",
    "remove",
    "reverse",
    "rotate",
    "setdefault",
    "sort",
    "update",
}

#: function names whose bodies are construction-time (no concurrency).
INIT_METHODS = {"__init__", "__post_init__", "__new__", "__set_name__"}


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))


def _annotation_class_name(node: Optional[ast.AST]) -> Optional[str]:
    """Best-effort class name out of an annotation expression.

    Unwraps ``Optional[T]``/``List[T]``-style subscripts and string
    annotations; returns the dotted name of the innermost type.
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.Subscript):
        outer = _dotted(node.value)
        inner = node.slice
        if isinstance(inner, ast.Tuple):
            # Optional[T] is Union[T, None]: take the first non-None elt.
            for elt in inner.elts:
                if not (isinstance(elt, ast.Constant) and elt.value is None):
                    return _annotation_class_name(elt)
            return None
        if outer in ("Optional", "typing.Optional", "List", "typing.List",
                     "Sequence", "typing.Sequence", "Union", "typing.Union"):
            return _annotation_class_name(inner)
        return outer
    return _dotted(node)


@dataclass(frozen=True)
class AttrAccess:
    """One ``self.attr`` (or guarded-global) access inside a function."""

    attr: str
    kind: str  # "read" | "write" | "mutate"
    function: str  # qualname of the enclosing function
    lineno: int
    col: int
    locks: FrozenSet[str]  # lock ids held at the access
    in_init: bool


@dataclass(frozen=True)
class CallSite:
    """One call expression inside a function."""

    name: str  # last component of the called name ("next_batch")
    targets: Tuple[str, ...]  # resolved callee qualnames (may be empty)
    lineno: int
    locks: FrozenSet[str]
    in_loop: bool


@dataclass(frozen=True)
class LockAcquire:
    """One ``with <lock>:`` acquisition event."""

    lock: str
    lineno: int
    held: FrozenSet[str]  # locks already held when acquiring


@dataclass
class FunctionInfo:
    """One function or method with its call/access/lock records."""

    qualname: str  # "mod.sub:Class.method" or "mod.sub:func"
    name: str
    module: str
    class_name: Optional[str]
    node: ast.AST
    lineno: int
    calls: List[CallSite] = field(default_factory=list)
    accesses: List[AttrAccess] = field(default_factory=list)
    acquires: List[LockAcquire] = field(default_factory=list)
    is_thread_target: bool = False


@dataclass
class ClassInfo:
    """One class: methods, lock attributes, inferred attribute types."""

    name: str
    module: str
    node: ast.ClassDef
    bases: Tuple[str, ...] = ()
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    lock_attrs: Set[str] = field(default_factory=set)
    #: attr -> dotted class name as written at the assignment site.
    attr_types: Dict[str, str] = field(default_factory=dict)

    @property
    def qualname(self) -> str:
        return f"{self.module}:{self.name}"

    def accesses(self) -> Iterator[AttrAccess]:
        for method in self.methods.values():
            yield from method.accesses


@dataclass
class ModuleInfo:
    """One parsed module plus its project-level symbol information."""

    name: str
    ctx: ModuleContext
    imports: Dict[str, str] = field(default_factory=dict)  # local -> dotted
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    #: module-level ``NAME = <literal>`` constants (the AST value node).
    constants: Dict[str, ast.AST] = field(default_factory=dict)
    global_locks: Set[str] = field(default_factory=set)

    @property
    def path(self) -> str:
        return self.ctx.posix_path


class ProjectContext:
    """All modules of one analysis run, cross-linked."""

    def __init__(self, modules: Dict[str, ModuleInfo]) -> None:
        self.modules = modules
        self.by_path: Dict[str, ModuleInfo] = {
            info.path: info for info in modules.values()
        }
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        for info in modules.values():
            for fn in info.functions.values():
                self.functions[fn.qualname] = fn
            for cls in info.classes.values():
                self.classes[cls.qualname] = cls
                for method in cls.methods.values():
                    self.functions[method.qualname] = method
        self._closure_cache: Dict[str, FrozenSet[str]] = {}

    # -- construction ---------------------------------------------------
    @classmethod
    def build(
        cls,
        contexts: Sequence[ModuleContext],
        roots: Sequence[str] = (),
    ) -> "ProjectContext":
        """Build from parsed modules; ``roots`` are scan-root posix paths."""
        modules: Dict[str, ModuleInfo] = {}
        for ctx in contexts:
            name = module_name_for(ctx.posix_path, roots)
            modules[name] = ModuleInfo(name=name, ctx=ctx)
        project = cls(modules)
        for info in modules.values():
            _ModuleCollector(project, info).collect()
        # Second phase needs every class's lock/type tables populated:
        for info in modules.values():
            for fn_info, owner in _iter_functions(info):
                _FunctionWalker(project, info, owner, fn_info).walk()
        project.functions = {}
        for info in modules.values():
            for fn in info.functions.values():
                project.functions[fn.qualname] = fn
            for cls_info in info.classes.values():
                for method in cls_info.methods.values():
                    project.functions[method.qualname] = method
        return project

    # -- import/name resolution ----------------------------------------
    def resolve_module(self, dotted: str) -> Optional[ModuleInfo]:
        """Find a scanned module by dotted name, prefix-insensitively."""
        parts = dotted.split(".")
        for start in range(len(parts)):
            candidate = ".".join(parts[start:])
            if candidate in self.modules:
                return self.modules[candidate]
        return None

    def resolve_symbol(
        self, module: ModuleInfo, name: str
    ) -> Optional[Tuple[ModuleInfo, str]]:
        """Resolve a (possibly imported) local name to (module, symbol)."""
        if name in module.classes or name in module.functions:
            return module, name
        target = module.imports.get(name)
        if target is None:
            return None
        target_module = self.resolve_module(target)
        if target_module is not None:
            # ``import a.b [as c]`` — the local name is the module itself.
            return target_module, ""
        if "." in target:
            mod_part, _, symbol = target.rpartition(".")
            target_module = self.resolve_module(mod_part)
            if target_module is not None:
                return target_module, symbol
        return None

    def resolve_class(
        self, module: ModuleInfo, dotted: str
    ) -> Optional[ClassInfo]:
        """Resolve a dotted class reference written inside ``module``."""
        head, _, rest = dotted.partition(".")
        resolved = self.resolve_symbol(module, head)
        if resolved is None:
            return None
        target_module, symbol = resolved
        name = symbol or head
        if rest:
            if symbol:  # Class.attr chains are not classes
                inner = target_module.classes.get(symbol)
                return inner if inner is not None and not rest else None
            # module alias: rest is "Class" (or deeper module path)
            sub = target_module
            parts = rest.split(".")
            while len(parts) > 1:
                nested = self.resolve_module(f"{sub.name}.{parts[0]}")
                if nested is None:
                    break
                sub = nested
                parts = parts[1:]
            return sub.classes.get(parts[-1]) if len(parts) == 1 else None
        return target_module.classes.get(name)

    # -- call-graph queries ---------------------------------------------
    def callees(self, qualname: str) -> FrozenSet[str]:
        fn = self.functions.get(qualname)
        if fn is None:
            return frozenset()
        out: Set[str] = set()
        for call in fn.calls:
            out.update(call.targets)
        return frozenset(out)

    def transitive_callees(self, qualname: str) -> FrozenSet[str]:
        """Every function reachable from ``qualname`` (excl. itself)."""
        cached = self._closure_cache.get(qualname)
        if cached is not None:
            return cached
        seen: Set[str] = set()
        stack = list(self.callees(qualname))
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self.callees(current))
        result = frozenset(seen)
        self._closure_cache[qualname] = result
        return result

    def called_names(self, qualname: str) -> FrozenSet[str]:
        """Call-site *names* in ``qualname`` and its transitive callees.

        Name-based matching is resolution-proof: an unresolved
        ``self.plan.check_morsel(...)`` still contributes
        ``check_morsel``.
        """
        names: Set[str] = set()
        for fn_name in {qualname} | set(self.transitive_callees(qualname)):
            fn = self.functions.get(fn_name)
            if fn is None:
                continue
            names.update(call.name for call in fn.calls)
        return frozenset(names)

    def reachable_from(self, entry_points: Sequence[str]) -> FrozenSet[str]:
        """Entry points plus everything they transitively call."""
        out: Set[str] = set()
        for entry in entry_points:
            if entry in self.functions:
                out.add(entry)
                out.update(self.transitive_callees(entry))
        return frozenset(out)

    # -- file-dependency graph (for the incremental cache) ---------------
    def file_dependencies(self) -> Dict[str, Set[str]]:
        """posix path -> set of scanned posix paths it imports."""
        deps: Dict[str, Set[str]] = {}
        for info in self.modules.values():
            targets: Set[str] = set()
            for dotted in info.imports.values():
                target = self.resolve_module(dotted)
                if target is None and "." in dotted:
                    target = self.resolve_module(dotted.rpartition(".")[0])
                if target is not None and target.path != info.path:
                    targets.add(target.path)
            deps[info.path] = targets
        return deps


def module_name_for(posix_path: str, roots: Sequence[str] = ()) -> str:
    """Dotted module name for a file path, relative to a scan root."""
    path = posix_path
    for root in roots:
        root = root.rstrip("/")
        if root and path.startswith(root + "/"):
            path = path[len(root) + 1:]
            break
    if path.endswith(".py"):
        path = path[: -len(".py")]
    if path.endswith("/__init__"):
        path = path[: -len("/__init__")]
    return path.replace("/", ".")


def _iter_functions(
    info: ModuleInfo,
) -> Iterator[Tuple[FunctionInfo, Optional[ClassInfo]]]:
    for fn in info.functions.values():
        yield fn, None
    for cls in info.classes.values():
        for method in cls.methods.values():
            yield method, cls


class _ModuleCollector:
    """Phase 1: imports, symbols, lock attributes, attribute types."""

    def __init__(self, project: ProjectContext, info: ModuleInfo) -> None:
        self.project = project
        self.info = info

    def collect(self) -> None:
        tree = self.info.ctx.tree
        for node in tree.body:
            self._top_level(node)

    def _top_level(self, node: ast.stmt) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                self.info.imports[local] = alias.name
        elif isinstance(node, ast.ImportFrom):
            base = self._import_base(node)
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                self.info.imports[local] = (
                    f"{base}.{alias.name}" if base else alias.name
                )
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self.info.functions[node.name] = FunctionInfo(
                qualname=f"{self.info.name}:{node.name}",
                name=node.name,
                module=self.info.name,
                class_name=None,
                node=node,
                lineno=node.lineno,
            )
        elif isinstance(node, ast.ClassDef):
            self._collect_class(node)
        elif isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                self.info.constants[target.id] = node.value
                if _is_lock_construction(node.value):
                    self.info.global_locks.add(target.id)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if isinstance(node.target, ast.Name):
                self.info.constants[node.target.id] = node.value
                if _is_lock_construction(node.value):
                    self.info.global_locks.add(node.target.id)
        elif isinstance(node, (ast.If, ast.Try)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.stmt):
                    self._top_level(child)

    def _import_base(self, node: ast.ImportFrom) -> str:
        if not node.level:
            return node.module or ""
        parts = self.info.name.split(".")
        # level 1 = current package (module name minus the leaf).
        keep = len(parts) - node.level
        base = ".".join(parts[:keep]) if keep > 0 else ""
        if node.module:
            base = f"{base}.{node.module}" if base else node.module
        return base

    def _collect_class(self, node: ast.ClassDef) -> None:
        cls = ClassInfo(
            name=node.name,
            module=self.info.name,
            node=node,
            bases=tuple(filter(None, (_dotted(b) for b in node.bases))),
        )
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                cls.methods[stmt.name] = FunctionInfo(
                    qualname=f"{self.info.name}:{node.name}.{stmt.name}",
                    name=stmt.name,
                    module=self.info.name,
                    class_name=node.name,
                    node=stmt,
                    lineno=stmt.lineno,
                )
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                # Dataclass-style field: the annotation is the type.
                annotated = _annotation_class_name(stmt.annotation)
                if annotated:
                    leaf = annotated.split(".")[-1]
                    if leaf in LOCK_TYPES or (
                        stmt.value is not None
                        and _is_lock_construction(stmt.value)
                    ):
                        cls.lock_attrs.add(stmt.target.id)
                    else:
                        cls.attr_types[stmt.target.id] = annotated
        # __init__-time attribute types and lock attributes:
        for method in cls.methods.values():
            self._collect_attr_types(cls, method)
        self.info.classes[node.name] = cls

    def _collect_attr_types(self, cls: ClassInfo, method: FunctionInfo) -> None:
        node = method.node
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        param_types: Dict[str, Optional[str]] = {}
        for arg in list(node.args.posonlyargs) + list(node.args.args) + list(
            node.args.kwonlyargs
        ):
            param_types[arg.arg] = _annotation_class_name(arg.annotation)
        for stmt in ast.walk(node):
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(stmt, ast.Assign):
                targets, value = list(stmt.targets), stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                targets, value = [stmt.target], stmt.value
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        annotated = _annotation_class_name(stmt.annotation)
                        if annotated:
                            cls.attr_types.setdefault(target.attr, annotated)
            for target in targets:
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                attr = target.attr
                if value is not None and _is_lock_construction(value):
                    cls.lock_attrs.add(attr)
                    continue
                inferred = _infer_value_type(value, param_types)
                if inferred:
                    cls.attr_types.setdefault(attr, inferred)


def _is_lock_construction(value: ast.AST) -> bool:
    """True for ``threading.Lock()``-style lock constructions.

    Also matches ``field(default_factory=threading.Lock)`` dataclass
    fields and bare ``Lock()`` calls of an imported name.
    """
    if isinstance(value, ast.Call):
        name = _dotted(value.func)
        if name:
            leaf = name.split(".")[-1]
            if leaf in LOCK_TYPES:
                return True
            if leaf == "field":
                for kw in value.keywords:
                    if kw.arg == "default_factory":
                        factory = _dotted(kw.value)
                        if factory and factory.split(".")[-1] in LOCK_TYPES:
                            return True
    return False


def _infer_value_type(
    value: Optional[ast.AST], param_types: Dict[str, Optional[str]]
) -> Optional[str]:
    """Dotted class name of an assigned value, best-effort."""
    if value is None:
        return None
    if isinstance(value, ast.Call):
        name = _dotted(value.func)
        if name and name.split(".")[-1][:1].isupper():
            return name
        return None
    if isinstance(value, ast.Name):
        return param_types.get(value.id)
    if isinstance(value, ast.IfExp):
        return _infer_value_type(value.body, param_types) or _infer_value_type(
            value.orelse, param_types
        )
    return None


class _FunctionWalker(ast.NodeVisitor):
    """Phase 2: walk one function body recording calls/accesses/locks."""

    def __init__(
        self,
        project: ProjectContext,
        info: ModuleInfo,
        owner: Optional[ClassInfo],
        fn: FunctionInfo,
    ) -> None:
        self.project = project
        self.info = info
        self.owner = owner
        self.fn = fn
        self.lock_stack: List[str] = []
        self.loop_depth = 0
        self.in_nested = False
        self.in_init = owner is not None and fn.name in INIT_METHODS
        self.local_types: Dict[str, str] = {}
        node = fn.node
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        for arg in list(node.args.posonlyargs) + list(node.args.args) + list(
            node.args.kwonlyargs
        ):
            annotated = _annotation_class_name(arg.annotation)
            if annotated:
                self.local_types[arg.arg] = annotated

    # -- driver ---------------------------------------------------------
    def walk(self) -> None:
        node = self.fn.node
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        for stmt in node.body:
            self.visit(stmt)

    def _held(self) -> FrozenSet[str]:
        return frozenset(self.lock_stack)

    # -- nested definitions: descend for *calls only* -------------------
    # A nested def is usually a local helper closure invoked inline
    # (``take`` in allocate_hybrid), so its calls belong to the
    # enclosing function's closure for hook-coverage purposes.  But it
    # may also run later, on another thread, outside the current lock
    # scope — so the lock stack is cleared (no false lock-order edges)
    # and attribute accesses are not recorded (no false discipline
    # findings either way).
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._nested_def(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._nested_def(node)

    def _nested_def(self, node: "ast.FunctionDef | ast.AsyncFunctionDef") -> None:
        saved_locks, self.lock_stack = self.lock_stack, []
        saved_nested, self.in_nested = self.in_nested, True
        try:
            for stmt in node.body:
                self.visit(stmt)
        finally:
            self.lock_stack = saved_locks
            self.in_nested = saved_nested

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        pass

    # -- locks ----------------------------------------------------------
    def visit_With(self, node: ast.With) -> None:
        self._with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._with(node)

    def _with(self, node: "ast.With | ast.AsyncWith") -> None:
        acquired: List[str] = []
        for item in node.items:
            lock_id = self._lock_id(item.context_expr)
            if lock_id is not None:
                self.fn.acquires.append(
                    LockAcquire(
                        lock=lock_id, lineno=node.lineno, held=self._held()
                    )
                )
                self.lock_stack.append(lock_id)
                acquired.append(lock_id)
            else:
                self.visit(item.context_expr)
        for stmt in node.body:
            self.visit(stmt)
        for _ in acquired:
            self.lock_stack.pop()

    def _lock_id(self, expr: ast.AST) -> Optional[str]:
        """Stable id of a lock expression, or None if not a known lock."""
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
            and self.owner is not None
            and expr.attr in self.owner.lock_attrs
        ):
            return f"{self.owner.qualname}.{expr.attr}"
        if isinstance(expr, ast.Name) and expr.id in self.info.global_locks:
            return f"{self.info.name}:{expr.id}"
        return None

    # -- loops -----------------------------------------------------------
    def visit_For(self, node: ast.For) -> None:
        self._loop(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._loop(node)

    def visit_While(self, node: ast.While) -> None:
        self._loop(node)

    def _loop(self, node: ast.stmt) -> None:
        self.loop_depth += 1
        for child in ast.iter_child_nodes(node):
            self.visit(child)
        self.loop_depth -= 1

    # -- local type environment -----------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
            inferred = _infer_value_type(node.value, {})
            if inferred:
                self.local_types[node.targets[0].id] = inferred
        self.generic_visit(node)

    # -- calls ------------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        name = self._call_name(node.func)
        targets = self._resolve_call(node)
        if name is not None:
            self.fn.calls.append(
                CallSite(
                    name=name,
                    targets=tuple(sorted(targets)),
                    lineno=node.lineno,
                    locks=self._held(),
                    in_loop=self.loop_depth > 0,
                )
            )
        self._thread_target_edges(node, name)
        self.generic_visit(node)

    @staticmethod
    def _call_name(func: ast.AST) -> Optional[str]:
        if isinstance(func, ast.Attribute):
            return func.attr
        if isinstance(func, ast.Name):
            return func.id
        return None

    def _thread_target_edges(
        self, node: ast.Call, name: Optional[str]
    ) -> None:
        """``Thread(target=self._worker_loop)`` creates a call edge."""
        if name != "Thread":
            return
        for kw in node.keywords:
            if kw.arg != "target":
                continue
            target_fn = self._function_reference(kw.value)
            if target_fn is not None:
                target_fn.is_thread_target = True
                self.fn.calls.append(
                    CallSite(
                        name=target_fn.name,
                        targets=(target_fn.qualname,),
                        lineno=node.lineno,
                        locks=self._held(),
                        in_loop=self.loop_depth > 0,
                    )
                )

    def _function_reference(self, expr: ast.AST) -> Optional[FunctionInfo]:
        """Resolve a bare function reference (not a call) to its info."""
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
            and self.owner is not None
        ):
            return self.owner.methods.get(expr.attr)
        if isinstance(expr, ast.Name):
            return self.info.functions.get(expr.id)
        return None

    def _resolve_call(self, node: ast.Call) -> List[str]:
        func = node.func
        if isinstance(func, ast.Name):
            return self._resolve_plain_name(func.id)
        if isinstance(func, ast.Attribute):
            return self._resolve_attribute_call(func)
        return []

    def _resolve_plain_name(self, name: str) -> List[str]:
        resolved = self.project.resolve_symbol(self.info, name)
        if resolved is None:
            return []
        module, symbol = resolved
        symbol = symbol or name
        if symbol in module.functions:
            return [module.functions[symbol].qualname]
        if symbol in module.classes:
            cls = module.classes[symbol]
            init = cls.methods.get("__init__")
            return [init.qualname] if init else [cls.qualname + ".__init__"]
        return []

    def _resolve_attribute_call(self, func: ast.Attribute) -> List[str]:
        chain = _attribute_chain(func)
        if chain is None:
            return []
        base, attrs = chain  # base name + attribute path incl. method name
        if base == "self" and self.owner is not None:
            return self._resolve_self_chain(attrs)
        # local variable with an inferred constructor type
        local_type = self.local_types.get(base)
        if local_type is not None:
            cls = self.project.resolve_class(self.info, local_type)
            if cls is not None:
                return self._step_chain(cls, attrs)
        # imported module or class
        resolved = self.project.resolve_symbol(self.info, base)
        if resolved is not None:
            module, symbol = resolved
            if symbol and symbol in module.classes:
                return self._step_chain(module.classes[symbol], attrs)
            if not symbol:
                sub = module
                while len(attrs) > 1:
                    nested = self.project.resolve_module(
                        f"{sub.name}.{attrs[0]}"
                    )
                    if nested is None:
                        break
                    sub = nested
                    attrs = attrs[1:]
                if len(attrs) == 1:
                    if attrs[0] in sub.functions:
                        return [sub.functions[attrs[0]].qualname]
                    if attrs[0] in sub.classes:
                        init = sub.classes[attrs[0]].methods.get("__init__")
                        return [init.qualname] if init else []
                elif len(attrs) == 2 and attrs[0] in sub.classes:
                    return self._step_chain(sub.classes[attrs[0]], attrs[1:])
        return []

    def _resolve_self_chain(self, attrs: List[str]) -> List[str]:
        assert self.owner is not None
        if len(attrs) == 1:
            method = self.owner.methods.get(attrs[0])
            return [method.qualname] if method else []
        declared = self.owner.attr_types.get(attrs[0])
        if declared is None:
            return []
        cls = self.project.resolve_class(
            self.project.modules[self.info.name], declared
        )
        if cls is None:
            return []
        return self._step_chain(cls, attrs[1:])

    def _step_chain(self, cls: ClassInfo, attrs: List[str]) -> List[str]:
        """Step ``a.b.m()`` through inferred attribute types to a method."""
        current: Optional[ClassInfo] = cls
        for index, attr in enumerate(attrs):
            if current is None:
                return []
            if index == len(attrs) - 1:
                method = current.methods.get(attr)
                return [method.qualname] if method else []
            declared = current.attr_types.get(attr)
            if declared is None:
                return []
            owner_module = self.project.modules.get(current.module)
            if owner_module is None:
                return []
            current = self.project.resolve_class(owner_module, declared)
        return []

    # -- attribute accesses ------------------------------------------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.value, ast.Name) and node.value.id == "self":
            self._record_self_access(node)
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if (
            self.owner is None
            and not self.in_nested
            and self.info.global_locks
            and node.id in self.info.constants
            and node.id not in self.info.global_locks
        ):
            kind = (
                "write"
                if isinstance(node.ctx, (ast.Store, ast.Del))
                else "read"
            )
            self.fn.accesses.append(
                AttrAccess(
                    attr=node.id,
                    kind=kind,
                    function=self.fn.qualname,
                    lineno=node.lineno,
                    col=node.col_offset,
                    locks=self._held(),
                    in_init=False,
                )
            )

    def visit_Global(self, node: ast.Global) -> None:
        # ``global X`` inside a function makes later plain-name writes
        # module-global writes; the Name visitor above records them
        # because the names already appear in ``constants``.
        pass

    def _record_self_access(self, node: ast.Attribute) -> None:
        if self.owner is None or self.in_nested:
            return
        attr = node.attr
        if attr in self.owner.lock_attrs or attr in self.owner.methods:
            return
        declared = self.owner.attr_types.get(attr, "")
        if declared.split(".")[-1] in SYNCHRONIZED_TYPES:
            return
        if isinstance(node.ctx, (ast.Store, ast.Del)):
            kind = "write"
        else:
            kind = "read"
            parent = self.info.ctx.parent(node)
            if (
                isinstance(parent, ast.Attribute)
                and parent.attr in MUTATOR_METHODS
            ):
                grand = self.info.ctx.parent(parent)
                if isinstance(grand, ast.Call) and grand.func is parent:
                    kind = "mutate"
            elif isinstance(parent, ast.Subscript):
                grand = self.info.ctx.parent(parent)
                if isinstance(grand, (ast.Assign, ast.AugAssign)) and (
                    parent
                    in (
                        grand.targets
                        if isinstance(grand, ast.Assign)
                        else [grand.target]
                    )
                ):
                    kind = "mutate"
        self.fn.accesses.append(
            AttrAccess(
                attr=attr,
                kind=kind,
                function=self.fn.qualname,
                lineno=node.lineno,
                col=node.col_offset,
                locks=self._held(),
                in_init=self.in_init,
            )
        )


def _attribute_chain(func: ast.Attribute) -> Optional[Tuple[str, List[str]]]:
    """``self.a.b.m`` -> ("self", ["a", "b", "m"]); None if not a chain."""
    attrs: List[str] = []
    current: ast.AST = func
    while isinstance(current, ast.Attribute):
        attrs.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    return current.id, list(reversed(attrs))
