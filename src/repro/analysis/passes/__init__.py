"""The domain-specific analysis passes, in reporting order."""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.analysis.base import AnalysisPass
from repro.analysis.passes.coherence import SimulatedCoherencePass
from repro.analysis.passes.determinism import DeterminismPass
from repro.analysis.passes.executor_boundary import ExecutorBoundaryPass
from repro.analysis.passes.fault_hooks import FaultHookCoveragePass
from repro.analysis.passes.lock_discipline import LockDisciplinePass
from repro.analysis.passes.manifest_schema import ManifestSchemaPass
from repro.analysis.passes.unit_safety import UnitSafetyPass
from repro.analysis.passes.vectorization import VectorizationPass

ALL_PASSES: List[AnalysisPass] = [
    UnitSafetyPass(),
    DeterminismPass(),
    VectorizationPass(),
    SimulatedCoherencePass(),
    ExecutorBoundaryPass(),
    LockDisciplinePass(),
    FaultHookCoveragePass(),
    ManifestSchemaPass(),
]


def get_passes(names: Optional[Sequence[str]] = None) -> List[AnalysisPass]:
    """Resolve a rule-name selection; ``None`` means every pass."""
    if names is None:
        return list(ALL_PASSES)
    by_name = {p.name: p for p in ALL_PASSES}
    unknown = [n for n in names if n not in by_name]
    if unknown:
        valid = ", ".join(sorted(by_name))
        raise ValueError(f"unknown rule(s) {unknown}; valid rules: {valid}")
    return [by_name[n] for n in names]


__all__ = [
    "ALL_PASSES",
    "DeterminismPass",
    "ExecutorBoundaryPass",
    "FaultHookCoveragePass",
    "LockDisciplinePass",
    "ManifestSchemaPass",
    "SimulatedCoherencePass",
    "UnitSafetyPass",
    "VectorizationPass",
    "get_passes",
]
