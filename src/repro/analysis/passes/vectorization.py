"""Vectorization pass: per-element Python loops in hot-path modules.

The functional layer executes joins on scaled-down relations, but its
throughput still bounds how large the executed cardinality can be —
and the cost model rescales *counters*, not wall time, so an O(n)
Python loop turns a millisecond batch operation into seconds.  Hot-path
operators (joins, hash tables, scan/selection kernels) must stay in
numpy batch operations; this pass flags ``for`` loops that index arrays
element-wise with the loop variable.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List, Set

from repro.analysis.base import AnalysisPass, ModuleContext, dotted_name
from repro.analysis.finding import Finding, Severity

#: Loop variables that conventionally denote positional indices.
_INDEX_VAR = re.compile(r"^(i|j|k|idx|ix|pos|p|q|row|col)\d*$")

#: Iterator calls that yield positional indices.
_INDEX_ITERS = {"range", "enumerate", "arange", "flatnonzero", "argsort"}


class VectorizationPass(AnalysisPass):
    name = "vectorization"
    description = (
        "hot-path operators must use numpy batch operations, not "
        "per-element Python loops"
    )
    severity = Severity.WARNING
    scope = ("core/join/", "core/hashtable/", "core/ops/")

    def check(self, ctx: ModuleContext) -> List[Finding]:
        return list(self._iter_findings(ctx))

    def _iter_findings(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.For):
                continue
            index_vars = self._index_vars(node)
            if not index_vars:
                continue
            example = self._element_subscript(node, index_vars)
            if example is None:
                continue
            yield self.finding(
                ctx,
                node,
                f"Python loop indexes arrays element-wise (`{example}`); "
                "replace with a numpy batch operation or justify via the "
                "baseline (e.g. a small fixed-fanout loop)",
            )

    def _index_vars(self, loop: ast.For) -> Set[str]:
        """Loop variables that look like positional indices."""
        targets = _loop_target_names(loop.target)
        if not targets:
            return set()
        iterator = loop.iter
        if isinstance(iterator, ast.Call):
            func_tail = dotted_name(iterator.func).split(".")[-1]
            if func_tail in _INDEX_ITERS:
                # for i in range(...) / for i, x in enumerate(...)
                return {targets[0]}
        # for i in order: — rely on the index-like naming convention.
        return {t for t in targets if _INDEX_VAR.match(t)}

    def _element_subscript(
        self, loop: ast.For, index_vars: Set[str]
    ) -> "str | None":
        """First ``arr[i]`` subscript by a bare index var in the body."""
        for stmt in loop.body:
            for node in ast.walk(stmt):
                if not isinstance(node, ast.Subscript):
                    continue
                index = node.slice
                if isinstance(index, ast.Name) and index.id in index_vars:
                    return f"{dotted_name(node.value)}[{index.id}]"
        return None


def _loop_target_names(target: ast.AST) -> List[str]:
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        names: List[str] = []
        for element in target.elts:
            names.extend(_loop_target_names(element))
        return names
    return []
