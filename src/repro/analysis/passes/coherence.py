"""Simulated-coherence pass: shared hash-table mutation discipline.

The Het strategy (Section 6) shares one mutable hash table between CPU
and GPU workers; that is only sound on a cache-coherent interconnect
with system-wide atomics, and the cost model prices every shared-table
write through ``atomic_stream`` (with the contention penalty of
Figure 21b).  NUMA hash-table experience shows unsynchronized shared
writes silently corrupt results, so in the cooperative-join and
scheduler modules this pass enforces:

* no direct element stores into hash-table storage arrays
  (``table.keys[slot] = ...``) — mutation goes through the batch
  accessors (``insert_batch``), which keep the access counters the
  cost model rescales;
* any module that builds a table (``insert_batch``) must also account
  for the build traffic with ``atomic_stream``.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List

from repro.analysis.base import AnalysisPass, ModuleContext, dotted_name
from repro.analysis.finding import Finding, Severity

#: Attribute names of hash-table storage arrays (SoA layout).
_TABLE_ARRAYS = {"keys", "values", "heads", "next", "slots"}

#: Variable names that denote a (possibly shared) hash table.
_TABLE_NAME = re.compile(r"^(ht|table|hash_table|shared_table)\b")


class SimulatedCoherencePass(AnalysisPass):
    name = "simulated-coherence"
    description = (
        "shared hash-table mutations must go through the batch accessors "
        "and atomic_stream cost accounting (Het strategy, Section 6)"
    )
    severity = Severity.ERROR
    scope = ("core/join/coop", "core/scheduler/")

    def check(self, ctx: ModuleContext) -> List[Finding]:
        return list(self._iter_findings(ctx))

    def _iter_findings(self, ctx: ModuleContext) -> Iterator[Finding]:
        accounts_atomics = ctx.module_references("atomic_stream")
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Subscript) and _is_table_storage(
                        target.value
                    ):
                        yield self.finding(
                            ctx,
                            node,
                            "direct element store into shared hash-table "
                            f"storage `{dotted_name(target.value)}[...]`; "
                            "route the mutation through insert_batch so the "
                            "atomic-access counters stay correct",
                        )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr == "insert_batch"
                    and not accounts_atomics
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"`{dotted_name(func)}()` builds a hash table but "
                        "this module never prices the build with "
                        "`atomic_stream` — shared-table writes must be "
                        "accounted as atomics (Section 6)",
                    )


def _is_table_storage(base: ast.AST) -> bool:
    """True for ``<table>.keys`` chains or table-named subscript bases."""
    if isinstance(base, ast.Attribute):
        if base.attr in _TABLE_ARRAYS:
            root = base.value
            # self.keys[...] inside a hash-table class is the accessor
            # implementation itself, not a bypass.
            if isinstance(root, ast.Name) and root.id == "self":
                return False
            return True
        return _TABLE_NAME.match(base.attr) is not None
    if isinstance(base, ast.Name):
        return _TABLE_NAME.match(base.id) is not None
    return False
