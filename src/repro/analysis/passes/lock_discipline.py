"""Lock-discipline pass: RacerD-style guard-set consistency + deadlocks.

PRs 4-5 made the codebase genuinely concurrent: a morsel-parallel
thread pool (``repro.exec``), lock-hardened observability and memory
allocation, and fault hooks visited from worker threads.  The
correctness argument everywhere is *lock discipline*: each class picks
a lock and touches its shared attributes only while holding it.  This
pass checks that discipline holds across module boundaries:

* **guard-set inference** — for every class owning a ``threading``
  lock, the attributes *written or mutated* while the lock is held
  (outside ``__init__``) form the class's guard set;
* **inconsistent access** — a write/mutate of a guarded attribute with
  no lock held is an ERROR; an unguarded *read* is an ERROR when the
  enclosing function is reachable from a ``repro.exec`` worker entry
  point (a real thread runs it) and a WARNING otherwise (torn or stale
  reads, e.g. a multi-field snapshot);
* **module-global discipline** — the same rule for module globals
  guarded by a module-level lock (the ``repro.faults.runtime``
  pattern);
* **lock-order cycles** — acquiring lock B while holding lock A adds
  the edge A→B (directly nested ``with`` blocks, or calls made while
  holding A into functions that may acquire B, propagated to a
  fixpoint over the call graph); any cycle in that graph is a deadlock
  candidate and an ERROR.

Worker entry points are functions reachable as
``threading.Thread(target=...)`` plus functions under ``exec/`` whose
name contains ``worker``.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Sequence, Set, Tuple

from repro.analysis.base import ProjectPass
from repro.analysis.finding import Finding, Severity
from repro.analysis.project import (
    AttrAccess,
    ClassInfo,
    FunctionInfo,
    LockAcquire,
    ModuleInfo,
    ProjectContext,
)


class LockDisciplinePass(ProjectPass):
    name = "lock-discipline"
    description = (
        "attributes guarded by a class (or module) lock must be accessed "
        "holding it, and lock acquisition order must be cycle-free"
    )
    severity = Severity.ERROR
    scope = (
        "exec/",
        "obs/",
        "memory/",
        "faults/",
        "core/scheduler/",
        "transfer/",
    )

    def check_project(self, project: ProjectContext) -> Sequence[Finding]:  # type: ignore[override]
        assert isinstance(project, ProjectContext)
        findings: List[Finding] = []
        reachable = worker_reachable(project)
        for info in project.modules.values():
            if not self.in_scope(info.path):
                continue
            for cls in info.classes.values():
                findings.extend(self._check_class(info, cls, reachable))
            findings.extend(self._check_module_globals(info, reachable))
        findings.extend(self._check_lock_order(project))
        return findings

    # -- guard-set consistency -------------------------------------------
    def _check_class(
        self,
        info: ModuleInfo,
        cls: ClassInfo,
        reachable: FrozenSet[str],
    ) -> Iterator[Finding]:
        if not cls.lock_attrs:
            return
        accesses = list(cls.accesses())
        guard_set = _guard_set(accesses)
        if not guard_set:
            return
        for access in accesses:
            if access.attr not in guard_set or access.in_init or access.locks:
                continue
            yield from self._flag(info, cls.name, access, reachable)

    def _check_module_globals(
        self, info: ModuleInfo, reachable: FrozenSet[str]
    ) -> Iterator[Finding]:
        if not info.global_locks:
            return
        accesses = [a for fn in info.functions.values() for a in fn.accesses]
        guard_set = _guard_set(accesses)
        for access in accesses:
            if access.attr not in guard_set or access.locks:
                continue
            yield from self._flag(info, "<module>", access, reachable)

    def _flag(
        self,
        info: ModuleInfo,
        owner: str,
        access: AttrAccess,
        reachable: FrozenSet[str],
    ) -> Iterator[Finding]:
        worker_path = access.function in reachable
        if access.kind == "read" and not worker_path:
            severity = Severity.WARNING
            detail = "a concurrent writer can interleave (torn/stale read)"
        elif access.kind == "read":
            severity = Severity.ERROR
            detail = (
                "this function is reachable from a repro.exec worker "
                "entry point"
            )
        else:
            severity = Severity.ERROR
            detail = "concurrent writers race on it"
        attr = (
            f"self.{access.attr}" if owner != "<module>" else access.attr
        )
        yield self.finding_at(
            path=info.path,
            line=access.lineno,
            column=access.col + 1,
            message=(
                f"`{attr}` is guarded by {owner}'s lock elsewhere but "
                f"this {access.kind} in `{_short(access.function)}` holds "
                f"no lock — {detail}"
            ),
            context=info.ctx.line_text(access.lineno),
            severity=severity,
        )

    # -- lock-order cycles -------------------------------------------------
    def _check_lock_order(
        self, project: ProjectContext
    ) -> Iterator[Finding]:
        may_acquire = _may_acquire(project)
        edges: Dict[Tuple[str, str], Tuple[str, int]] = {}

        def add_edge(held: str, acquired: str, path: str, line: int) -> None:
            if held != acquired:
                edges.setdefault((held, acquired), (path, line))

        for fn in project.functions.values():
            info = project.by_path.get(_fn_path(project, fn))
            if info is None or not self.in_scope(info.path):
                continue
            for acquire in fn.acquires:
                for held in acquire.held:
                    add_edge(held, acquire.lock, info.path, acquire.lineno)
            for call in fn.calls:
                if not call.locks:
                    continue
                acquired: Set[str] = set()
                for target in call.targets:
                    acquired.update(may_acquire.get(target, frozenset()))
                for held in call.locks:
                    for lock in acquired:
                        add_edge(held, lock, info.path, call.lineno)
        for cycle in _find_cycles(edges):
            first_edge = (cycle[0], cycle[1 % len(cycle)])
            path, line = edges.get(first_edge, ("", 1))
            if not path:
                continue
            info = project.by_path.get(path)
            chain = " -> ".join(cycle + (cycle[0],))
            yield self.finding_at(
                path=path,
                line=line,
                column=1,
                message=(
                    f"lock-acquisition-order cycle (deadlock candidate): "
                    f"{chain}; pick one global order for these locks"
                ),
                context=info.ctx.line_text(line) if info else "",
                severity=Severity.ERROR,
            )


# -- helpers ------------------------------------------------------------


def _guard_set(accesses: Sequence[AttrAccess]) -> Set[str]:
    """Attributes written/mutated at least once while holding a lock."""
    return {
        a.attr
        for a in accesses
        if a.kind in ("write", "mutate") and a.locks and not a.in_init
    }


def _short(qualname: str) -> str:
    return qualname.split(":", 1)[-1]


def _fn_path(project: ProjectContext, fn: FunctionInfo) -> str:
    info = project.modules.get(fn.module)
    return info.path if info is not None else ""


def worker_reachable(project: ProjectContext) -> FrozenSet[str]:
    """Functions reachable from repro.exec worker entry points."""
    entries: List[str] = []
    for fn in project.functions.values():
        if fn.is_thread_target:
            entries.append(fn.qualname)
            continue
        info = project.modules.get(fn.module)
        if (
            info is not None
            and "exec/" in info.path
            and "worker" in fn.name.lower()
        ):
            entries.append(fn.qualname)
    return project.reachable_from(entries)


def _may_acquire(project: ProjectContext) -> Dict[str, FrozenSet[str]]:
    """Fixpoint: locks each function may acquire, directly or via calls."""
    direct: Dict[str, Set[str]] = {}
    for qualname, fn in project.functions.items():
        direct[qualname] = {acquire.lock for acquire in fn.acquires}
    result: Dict[str, Set[str]] = {q: set(locks) for q, locks in direct.items()}
    changed = True
    iterations = 0
    while changed and iterations < 50:
        changed = False
        iterations += 1
        for qualname, fn in project.functions.items():
            current = result[qualname]
            before = len(current)
            for call in fn.calls:
                for target in call.targets:
                    current.update(result.get(target, set()))
            if len(current) != before:
                changed = True
    return {q: frozenset(locks) for q, locks in result.items()}


def _find_cycles(
    edges: Dict[Tuple[str, str], Tuple[str, int]]
) -> List[Tuple[str, ...]]:
    """Elementary cycles in the lock-order graph, canonicalized."""
    graph: Dict[str, Set[str]] = {}
    for held, acquired in edges:
        graph.setdefault(held, set()).add(acquired)
        graph.setdefault(acquired, set())
    cycles: Set[Tuple[str, ...]] = set()

    def dfs(start: str, node: str, path: List[str], seen: Set[str]) -> None:
        for succ in sorted(graph.get(node, ())):
            if succ == start:
                cycles.add(_canonical(tuple(path)))
            elif succ not in seen and len(path) < 8:
                seen.add(succ)
                path.append(succ)
                dfs(start, succ, path, seen)
                path.pop()
                seen.remove(succ)

    for node in sorted(graph):
        dfs(node, node, [node], {node})
    return sorted(cycles)


def _canonical(cycle: Tuple[str, ...]) -> Tuple[str, ...]:
    """Rotate a cycle so its smallest element comes first (dedup key)."""
    pivot = cycle.index(min(cycle))
    return cycle[pivot:] + cycle[:pivot]
