"""Executor-boundary pass: only ``repro.plan`` prices phases.

The phase-plan refactor made the :class:`repro.plan.PlanExecutor` the
single component that prices work through the cost model.  Operators
compile :class:`~repro.plan.PhaseSpec` DAGs and hand them to the
executor, which owns the chunked-overlap arithmetic, the concurrent
solver, and the exactly-once span/metric emission.  A direct call to
``CostModel.phase_cost`` / ``phases_cost`` / ``occupancy_per_unit``
anywhere else bypasses all of that: the phase would be priced without
its overlap attributes and either double-emit or skip its
observability records.  This pass flags such calls; deliberate
exceptions (e.g. pedagogical examples) go through
``analysis-baseline.json`` with a justification.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.analysis.base import AnalysisPass, ModuleContext, dotted_name
from repro.analysis.finding import Finding, Severity

#: CostModel pricing entry points reserved for the plan executor.
_PRICING_METHODS = {"phase_cost", "phases_cost", "occupancy_per_unit"}


class ExecutorBoundaryPass(AnalysisPass):
    name = "executor-boundary"
    description = (
        "operators compile phase plans; only repro.plan may price "
        "phases through CostModel.phase_cost/phases_cost/"
        "occupancy_per_unit"
    )
    severity = Severity.ERROR
    #: everything is in scope except the pricing layer itself; see
    #: :meth:`in_scope`.
    scope = ()

    #: path fragments allowed to price directly: the executor package
    #: and the cost model's own implementation.
    exempt = ("repro/plan/", "costmodel/model")

    def in_scope(self, posix_path: str) -> bool:
        return not any(fragment in posix_path for fragment in self.exempt)

    def check(self, ctx: ModuleContext) -> List[Finding]:
        return list(self._iter_findings(ctx))

    def _iter_findings(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr not in _PRICING_METHODS:
                continue
            yield self.finding(
                ctx,
                node,
                f"direct pricing call `{dotted_name(func)}()` outside "
                "repro.plan; compile the work into a PhaseSpec and let "
                "the PlanExecutor price it (overlap arithmetic and "
                "span/metric emission live there)",
            )
