"""Executor-boundary pass: only ``repro.plan`` prices phases.

The phase-plan refactor made the :class:`repro.plan.PlanExecutor` the
single component that prices work through the cost model.  Operators
compile :class:`~repro.plan.PhaseSpec` DAGs and hand them to the
executor, which owns the chunked-overlap arithmetic, the concurrent
solver, and the exactly-once span/metric emission.  A direct call to
``CostModel.phase_cost`` / ``phases_cost`` / ``occupancy_per_unit``
anywhere else bypasses all of that: the phase would be priced without
its overlap attributes and either double-emit or skip its
observability records.  This pass flags such calls; deliberate
exceptions (e.g. pedagogical examples) go through
``analysis-baseline.json`` with a justification.

Since the logical-plan layer landed, the same boundary argument
applies one level up: :class:`repro.plan.Plan` DAGs are *compiler
output*.  Operators state a logical query and physical configuration
and let ``repro.logical.lower.compile_query`` assemble the plan, so
the optimizer can enumerate alternatives for anything an operator can
run.  A hand-built ``Plan(...)`` outside ``repro.logical`` /
``repro.plan`` escapes that search space; the pass flags it, and the
pipelines not yet migrated (radix, multi-GPU, scan fallback) are
baselined until their lowering rules exist.

The serving engine adds a third boundary: the discrete-event
:class:`repro.sim.Simulator` itself.  Its clock semantics
(``run(until=...)`` landing exactly on ``until``, the epsilon clamp in
``schedule_at``) are load-bearing for multi-query scheduling, and two
components driving private simulators over the same logical workload
would disagree about virtual time.  Multi-query workloads may only be
driven by ``repro.serve.scheduler`` (the ``ContentionScheduler``);
single-operator DES usage stays inside ``repro.plan`` and the
``repro.transfer`` stream cross-check.  A ``Simulator(...)``
constructed anywhere else is flagged.

The cancellation path (PR 10) widened that surface: deadline
enforcement rests on ``Simulator.schedule_at`` + ``cancel_event``
pairs whose epoch bookkeeping lives in the scheduler, so a component
*driving* those APIs — even against a simulator it did not construct —
would race the scheduler's deadline/retry event accounting.  Calls to
``schedule_at(...)`` / ``cancel_event(...)`` outside the sanctioned
DES drivers are flagged alongside rogue constructions.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.analysis.base import AnalysisPass, ModuleContext, dotted_name
from repro.analysis.finding import Finding, Severity

#: CostModel pricing entry points reserved for the plan executor.
_PRICING_METHODS = {"phase_cost", "phases_cost", "occupancy_per_unit"}

#: Simulator-driving entry points reserved for the sanctioned DES
#: drivers.  ``schedule`` alone is too generic a name to key on;
#: ``schedule_at`` and ``cancel_event`` are distinctive to the event
#: loop and carry its clock/epoch semantics.
_SIM_DRIVER_METHODS = {"schedule_at", "cancel_event"}


class ExecutorBoundaryPass(AnalysisPass):
    name = "executor-boundary"
    description = (
        "operators compile phase plans; only repro.plan may price "
        "phases through CostModel.phase_cost/phases_cost/"
        "occupancy_per_unit, only repro.logical/repro.plan may "
        "hand-assemble Plan objects, and only the sanctioned drivers "
        "(repro.serve.scheduler for multi-query workloads) may "
        "construct Simulator instances or drive its "
        "schedule_at/cancel_event event APIs"
    )
    severity = Severity.ERROR
    #: everything is in scope except the pricing layer itself; see
    #: :meth:`in_scope`.
    scope = ()

    #: path fragments allowed to price directly: the executor package
    #: and the cost model's own implementation.
    exempt = ("repro/plan/", "costmodel/model")

    #: path fragments additionally allowed to construct ``Plan``
    #: objects: the lowering compiler is the plan factory.
    plan_exempt = ("repro/plan/", "repro/logical/")

    #: path fragments allowed to construct :class:`repro.sim.Simulator`:
    #: the engine's own package, the plan executor's DES paths, the
    #: transfer-pipeline cross-check, and — the only sanctioned driver
    #: of ``Simulator.run`` for *multi-query* workloads — the serving
    #: scheduler.
    sim_exempt = (
        "repro/sim/",
        "repro/plan/",
        "repro/serve/scheduler",
        "repro/transfer/stream",
    )

    def in_scope(self, posix_path: str) -> bool:
        return not any(fragment in posix_path for fragment in self.exempt)

    def check(self, ctx: ModuleContext) -> List[Finding]:
        return list(self._iter_findings(ctx))

    def _may_build_plans(self, ctx: ModuleContext) -> bool:
        return any(
            fragment in ctx.posix_path for fragment in self.plan_exempt
        )

    def _may_build_simulators(self, ctx: ModuleContext) -> bool:
        return any(
            fragment in ctx.posix_path for fragment in self.sim_exempt
        )

    def _iter_findings(self, ctx: ModuleContext) -> Iterator[Finding]:
        plans_allowed = self._may_build_plans(ctx)
        sims_allowed = self._may_build_simulators(ctx)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                not plans_allowed
                and isinstance(func, ast.Name)
                and func.id == "Plan"
            ):
                yield self.finding(
                    ctx,
                    node,
                    "hand-built `Plan(...)` outside repro.logical/"
                    "repro.plan; plans are compiler output — express the "
                    "pipeline as a logical query (or a lowering rule in "
                    "repro.logical.lower) so the optimizer can enumerate "
                    "its physical alternatives",
                )
                continue
            if (
                not sims_allowed
                and isinstance(func, ast.Name)
                and func.id == "Simulator"
            ):
                yield self.finding(
                    ctx,
                    node,
                    "direct `Simulator(...)` construction outside the "
                    "sanctioned DES drivers; only repro.serve.scheduler "
                    "may drive Simulator.run for multi-query workloads "
                    "(single-operator DES lives in repro.plan / "
                    "repro.transfer.stream) — route concurrent queries "
                    "through the ContentionScheduler so they share one "
                    "virtual clock",
                )
                continue
            if not isinstance(func, ast.Attribute):
                continue
            if not sims_allowed and func.attr in _SIM_DRIVER_METHODS:
                yield self.finding(
                    ctx,
                    node,
                    f"DES-driving call `{dotted_name(func)}()` outside "
                    "the sanctioned drivers; schedule_at/cancel_event "
                    "carry the simulator's clock and cancellation "
                    "semantics (deadline/retry events are epoch-"
                    "accounted in repro.serve.scheduler) — route event "
                    "scheduling through the ContentionScheduler or the "
                    "single-operator DES paths in repro.plan / "
                    "repro.transfer.stream",
                )
                continue
            if func.attr not in _PRICING_METHODS:
                continue
            yield self.finding(
                ctx,
                node,
                f"direct pricing call `{dotted_name(func)}()` outside "
                "repro.plan; compile the work into a PhaseSpec and let "
                "the PlanExecutor price it (overlap arithmetic and "
                "span/metric emission live there)",
            )
