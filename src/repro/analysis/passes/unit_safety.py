"""Unit-safety pass: raw byte/bandwidth/latency literals.

The paper is explicit about decimal GB/s (electrical link bandwidths,
Figure 2) versus binary GiB/s (measured bandwidths, Figures 1 and 3);
:mod:`repro.utils.units` exists so every call site states which one it
means.  This pass flags numeric literals that *look* like byte sizes,
bandwidths, or latencies but bypass the units module:

* ``pow2-bytes`` — power-of-two byte-size shapes: ``1 << 30``,
  ``2**30``, ``1024**3``.  These are always clearer as ``GIB``-style
  constants, so the shape alone is a finding.
* ``big-float`` — scientific literals of bandwidth magnitude
  (``900e9``) outside an arithmetic chain that references a unit name.
* ``latency-literal`` — a float literal bound to a latency-like name
  without ``NS``/``US``/``MS``.
* ``bytes-literal`` — a large integer literal bound to a bytes-like
  name (``page_bytes = 2 * 1024 * 1024``).

Names that denote counts or rates rather than byte quantities
(``clock_hz``, ``atomic_rate``, ``morsel_tuples``...) are allowlisted:
tuple counts and per-second rates are not byte-unit quantities.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List

from repro.analysis.base import AnalysisPass, ModuleContext
from repro.analysis.finding import Finding, Severity

#: Context names whose values are counts/rates/frequencies, not byte
#: quantities — large literals under these names are legitimate.
_ALLOWED_NAME = re.compile(
    r"(rate|hz|clock|tuple|morsel|mlp|count|seed|exponent|iteration)",
    re.IGNORECASE,
)

_LATENCY_NAME = re.compile(r"(latency|delay|_cost$|timeout)", re.IGNORECASE)
_BYTES_NAME = re.compile(r"(bytes|bandwidth|_bw\b|\bbw_|capacity)", re.IGNORECASE)

#: Smallest interesting power-of-two byte size: 1 MiB (shift 20).
_MIN_SHIFT = 20
#: Floats at or above this magnitude look like bandwidths in bytes/s.
_BIG_FLOAT = 1e9
#: Integers at or above this look like raw byte counts under byte names.
_MIN_BYTES_LITERAL = 1024


class UnitSafetyPass(AnalysisPass):
    name = "unit-safety"
    description = (
        "byte sizes, bandwidths, and latencies must use repro.utils.units "
        "constants (decimal GB vs binary GiB must stay distinguishable)"
    )
    severity = Severity.ERROR
    scope = (
        "costmodel/",
        "hardware/",
        "bench/",
        "core/",
        "memory/",
        "transfer/",
    )

    def check(self, ctx: ModuleContext) -> List[Finding]:
        return list(self._iter_findings(ctx))

    def _iter_findings(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.BinOp):
                finding = self._check_pow2_shape(ctx, node)
                if finding is not None:
                    yield finding
            elif isinstance(node, ast.Constant):
                finding = self._check_literal(ctx, node)
                if finding is not None:
                    yield finding

    # -- pow2-bytes ----------------------------------------------------
    def _check_pow2_shape(self, ctx: ModuleContext, node: ast.BinOp) -> (
        "Finding | None"
    ):
        shape = _pow2_byte_shape(node)
        if shape is None:
            return None
        if self._allowlisted(ctx, node):
            return None
        return self.finding(
            ctx,
            node,
            f"raw power-of-two byte size `{shape}`; use the "
            "KIB/MIB/GIB/TIB constants from repro.utils.units",
        )

    # -- literal rules -------------------------------------------------
    def _check_literal(self, ctx: ModuleContext, node: ast.Constant) -> (
        "Finding | None"
    ):
        value = node.value
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return None
        parent = ctx.parent(node)
        if isinstance(parent, ast.BinOp) and _pow2_byte_shape(parent) is not None:
            return None  # the pow2-bytes rule owns this literal
        if ctx.chain_uses_units(node):
            return None
        if self._allowlisted(ctx, node):
            return None
        nearest = ctx.nearest_name(node) or ""
        if isinstance(value, float) and abs(value) >= _BIG_FLOAT:
            return self.finding(
                ctx,
                node,
                f"bandwidth-magnitude literal {value!r} without a unit "
                "constant; write it as `N * GB` (decimal, electrical) or "
                "`N * GIB` (binary, measured) from repro.utils.units",
            )
        if (
            isinstance(value, float)
            and value != 0.0
            and _LATENCY_NAME.search(nearest)
        ):
            return self.finding(
                ctx,
                node,
                f"latency literal {value!r} bound to {nearest!r} without a "
                "time unit; write it as `N * NS/US/MS` from repro.utils.units",
            )
        if (
            isinstance(value, int)
            and value >= _MIN_BYTES_LITERAL
            and _BYTES_NAME.search(nearest)
        ):
            return self.finding(
                ctx,
                node,
                f"byte-count literal {value} bound to {nearest!r}; use the "
                "KIB/MIB/GIB constants from repro.utils.units",
            )
        return None

    def _allowlisted(self, ctx: ModuleContext, node: ast.AST) -> bool:
        return any(_ALLOWED_NAME.search(name) for name in ctx.context_names(node))


def _pow2_byte_shape(node: ast.BinOp) -> "str | None":
    """Render ``1 << 30`` / ``2**30`` / ``1024**3`` shapes, else None."""
    right = node.right
    if not isinstance(right, ast.Constant) or not isinstance(right.value, int):
        return None
    if isinstance(node.op, ast.LShift):
        left = node.left
        if (
            isinstance(left, ast.Constant)
            and isinstance(left.value, int)
            and right.value >= _MIN_SHIFT
        ):
            return f"{left.value} << {right.value}"
        return None
    if isinstance(node.op, ast.Pow):
        left = node.left
        if not isinstance(left, ast.Constant):
            return None
        if left.value == 2 and right.value >= _MIN_SHIFT:
            return f"2**{right.value}"
        if left.value == 1024 and right.value >= 2:
            return f"1024**{right.value}"
    return None
