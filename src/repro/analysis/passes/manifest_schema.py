"""Manifest-schema drift: every written key must be declared.

``repro.obs.manifest`` declares the manifest JSON layout twice: once
implicitly, in the writer functions that build the dicts, and once
explicitly, in the ``MANIFEST_SCHEMA`` literal (sections → writer +
allowed keys, pinned by a checksum).  Downstream consumers — bench
baseline diffs, the paper's figure scripts, CI's changelog guard —
parse manifests by key, so a key added in a writer but absent from the
declaration is silent schema drift: the version string stays ``1.1``
while the actual layout changes under consumers' feet.

This pass closes the loop statically:

* the ``version`` field of ``MANIFEST_SCHEMA`` must equal
  ``MANIFEST_SCHEMA_VERSION`` (both literals, same module);
* the ``checksum`` field must equal the BLAKE2b digest of the
  canonical ``sections`` mapping — so *any* key-set edit forces a
  conscious schema edit (the pass prints the expected digest);
* every top-level string key a declared writer emits (returned or
  assigned dict literals, plus ``d["key"] = ...`` stores on them) must
  appear in that section's declared keys — an undeclared key is an
  ERROR telling the author to declare it and bump the version;
* a declared key no writer emits is a WARNING (stale schema entry);
* a declared writer that cannot be found is an ERROR (the schema
  points at nothing).

Writers are resolved nearest-first: the schema's own module, then its
directory, then the whole project — so a test fixture declaring its
own ``MANIFEST_SCHEMA`` is checked against its own writers, never
against ``src/repro``'s.
"""

from __future__ import annotations

import ast
import hashlib
import json
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.base import ProjectPass
from repro.analysis.finding import Finding, Severity
from repro.analysis.project import FunctionInfo, ModuleInfo, ProjectContext

#: Name of the declared-schema constant this pass enforces.
SCHEMA_CONSTANT = "MANIFEST_SCHEMA"
#: Name of the version constant the schema must agree with.
VERSION_CONSTANT = "MANIFEST_SCHEMA_VERSION"


def schema_checksum(sections: Dict[str, object]) -> str:
    """Canonical digest of a schema's ``sections`` mapping.

    BLAKE2b over the sorted-key JSON rendering; 8 hex bytes is plenty
    for a tamper-evidence seal that humans copy by hand.
    """
    canonical = json.dumps(sections, sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(canonical.encode(), digest_size=8).hexdigest()


class ManifestSchemaPass(ProjectPass):
    name = "manifest-schema"
    description = (
        "keys written into manifest sections must appear in the declared "
        "MANIFEST_SCHEMA, and key-set changes must bump the schema version"
    )
    severity = Severity.ERROR
    scope = ("obs/", "faults/")
    invalidates_on = ("obs/manifest",)

    def check_project(self, project: ProjectContext) -> Sequence[Finding]:  # type: ignore[override]
        assert isinstance(project, ProjectContext)
        findings: List[Finding] = []
        for info in project.modules.values():
            node = info.constants.get(SCHEMA_CONSTANT)
            if node is None:
                continue
            findings.extend(self._check_schema(project, info, node))
        return findings

    # -- one schema declaration --------------------------------------------
    def _check_schema(
        self, project: ProjectContext, info: ModuleInfo, node: ast.AST
    ) -> Iterator[Finding]:
        line = getattr(node, "lineno", 1)
        try:
            schema = ast.literal_eval(node)
        except (ValueError, SyntaxError):
            yield self._at(info, line, (
                f"{SCHEMA_CONSTANT} must be a pure literal so tooling can "
                "evaluate it without importing the module"
            ))
            return
        if not isinstance(schema, dict) or not isinstance(
            schema.get("sections"), dict
        ):
            yield self._at(info, line, (
                f"{SCHEMA_CONSTANT} must be a dict with a 'sections' "
                "mapping of section -> {writer, keys}"
            ))
            return
        sections: Dict[str, object] = schema["sections"]
        yield from self._check_version(info, node, schema)
        yield from self._check_checksum(info, line, schema, sections)
        for section, spec in sections.items():
            if (
                not isinstance(spec, dict)
                or not isinstance(spec.get("writer"), str)
                or not isinstance(spec.get("keys"), list)
            ):
                yield self._at(info, line, (
                    f"section '{section}' of {SCHEMA_CONSTANT} must "
                    "declare a 'writer' string and a 'keys' list"
                ))
                continue
            yield from self._check_section(
                project, info, line, section, spec["writer"],
                [str(key) for key in spec["keys"]],
            )

    def _check_version(
        self, info: ModuleInfo, node: ast.AST, schema: Dict[str, object]
    ) -> Iterator[Finding]:
        line = getattr(node, "lineno", 1)
        declared = schema.get("version")
        version_node = info.constants.get(VERSION_CONSTANT)
        if version_node is None:
            yield self._at(info, line, (
                f"{SCHEMA_CONSTANT} has no companion {VERSION_CONSTANT} "
                "constant in this module"
            ))
            return
        try:
            actual = ast.literal_eval(version_node)
        except (ValueError, SyntaxError):
            actual = None
        if declared != actual:
            yield self._at(info, line, (
                f"{SCHEMA_CONSTANT}['version'] is {declared!r} but "
                f"{VERSION_CONSTANT} is {actual!r} — keep them in "
                "lockstep (bump both when the layout changes)"
            ))

    def _check_checksum(
        self,
        info: ModuleInfo,
        line: int,
        schema: Dict[str, object],
        sections: Dict[str, object],
    ) -> Iterator[Finding]:
        declared = schema.get("checksum")
        expected = schema_checksum(sections)
        if declared != expected:
            yield self._at(info, line, (
                f"{SCHEMA_CONSTANT}['checksum'] is {declared!r} but the "
                f"declared sections hash to '{expected}' — the key sets "
                "changed; update the checksum, bump "
                f"{VERSION_CONSTANT}, and record the bump in the schema "
                "changelog"
            ))

    # -- one section --------------------------------------------------------
    def _check_section(
        self,
        project: ProjectContext,
        info: ModuleInfo,
        schema_line: int,
        section: str,
        writer: str,
        declared: List[str],
    ) -> Iterator[Finding]:
        writers = _resolve_writer(project, info, writer)
        if not writers:
            yield self._at(info, schema_line, (
                f"section '{section}' declares writer '{writer}' but no "
                "such function or method exists — fix the declaration or "
                "restore the writer"
            ))
            return
        declared_set = set(declared)
        written: Set[str] = set()
        for writer_info, fn in writers:
            for key, key_line in _written_keys(fn.node):
                written.add(key)
                if key not in declared_set:
                    yield self._at(writer_info, key_line, (
                        f"writer `{writer}` emits undeclared manifest key "
                        f"'{key}' (section '{section}') — declare it in "
                        f"{SCHEMA_CONSTANT}, update the checksum, and bump "
                        f"{VERSION_CONSTANT}"
                    ))
        for key in sorted(declared_set - written):
            yield self._at(info, schema_line, (
                f"section '{section}' declares key '{key}' but writer "
                f"`{writer}` never emits it — stale schema entry"
            ), severity=Severity.WARNING)

    def _at(
        self,
        info: ModuleInfo,
        line: int,
        message: str,
        severity: Optional[Severity] = None,
    ) -> Finding:
        return self.finding_at(
            path=info.path,
            line=line,
            column=1,
            message=message,
            context=info.ctx.line_text(line),
            severity=severity,
        )


# -- writer resolution ------------------------------------------------------


def _resolve_writer(
    project: ProjectContext, schema_mod: ModuleInfo, writer: str
) -> List[Tuple[ModuleInfo, FunctionInfo]]:
    """Writer functions, nearest tier first: module, directory, project."""
    directory = schema_mod.path.rsplit("/", 1)[0] if "/" in schema_mod.path else ""
    tiers: List[List[ModuleInfo]] = [
        [schema_mod],
        [
            info
            for info in project.modules.values()
            if info is not schema_mod
            and (info.path.rsplit("/", 1)[0] if "/" in info.path else "")
            == directory
        ],
        [info for info in project.modules.values()],
    ]
    for tier in tiers:
        matches: List[Tuple[ModuleInfo, FunctionInfo]] = []
        for info in tier:
            fn = _lookup_writer(info, writer)
            if fn is not None:
                matches.append((info, fn))
        if matches:
            return matches
    return []


def _lookup_writer(info: ModuleInfo, writer: str) -> Optional[FunctionInfo]:
    if "." in writer:
        cls_name, method = writer.split(".", 1)
        cls = info.classes.get(cls_name)
        if cls is not None:
            return cls.methods.get(method)
        return None
    return info.functions.get(writer)


# -- written-key extraction --------------------------------------------------


def _written_keys(fn: ast.AST) -> Iterator[Tuple[str, int]]:
    """Top-level string keys the writer emits, with their lines.

    Candidates are dict literals in ``return`` statements or on the
    right of an assignment, plus ``name["key"] = ...`` subscript
    stores on names bound to a candidate dict.  Nested dict literals
    (values inside a candidate, comprehension elements) are *not*
    candidates — only the section's top level is schema-checked.
    """
    candidate_names: Set[str] = set()
    for stmt in ast.walk(fn):
        value: Optional[ast.AST] = None
        if isinstance(stmt, ast.Return):
            value = stmt.value
        elif isinstance(stmt, ast.Assign):
            value = stmt.value
            for target in stmt.targets:
                if isinstance(target, ast.Name) and isinstance(
                    stmt.value, ast.Dict
                ):
                    candidate_names.add(target.id)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            value = stmt.value
            if isinstance(stmt.target, ast.Name) and isinstance(
                stmt.value, ast.Dict
            ):
                candidate_names.add(stmt.target.id)
        if isinstance(value, ast.Dict):
            for key in value.keys:
                if isinstance(key, ast.Constant) and isinstance(
                    key.value, str
                ):
                    yield key.value, key.lineno
    for stmt in ast.walk(fn):
        if not isinstance(stmt, ast.Assign):
            continue
        for target in stmt.targets:
            if (
                isinstance(target, ast.Subscript)
                and isinstance(target.value, ast.Name)
                and target.value.id in candidate_names
                and isinstance(target.slice, ast.Constant)
                and isinstance(target.slice.value, str)
            ):
                yield target.slice.value, target.lineno
