"""Determinism pass: unseeded randomness and wall-clock reads.

The discrete-event simulator orders ties deterministically (events are
``(time, seq)`` ordered) and the benchmarks assert figure *shapes*, so
a hidden nondeterministic input — an unseeded generator, the legacy
global numpy RNG, or a wall-clock read folded into virtual time —
silently breaks reproducibility.  Inside simulation code paths every
random source must take an explicit seed (or an injected
``np.random.Generator``) and time must come from ``Simulator.now``.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.analysis.base import AnalysisPass, ModuleContext, dotted_name
from repro.analysis.finding import Finding, Severity

#: Legacy module-level numpy RNG entry points (share hidden global state).
_NUMPY_LEGACY = {
    "seed",
    "rand",
    "randn",
    "randint",
    "random",
    "random_sample",
    "choice",
    "shuffle",
    "permutation",
    "normal",
    "uniform",
    "zipf",
}

#: ``random`` stdlib module-level functions (share the hidden global RNG).
_STDLIB_RANDOM = {
    "random",
    "randint",
    "randrange",
    "uniform",
    "choice",
    "choices",
    "shuffle",
    "sample",
    "seed",
    "gauss",
    "betavariate",
    "expovariate",
}

#: Wall-clock sources; simulated time must come from ``Simulator.now``.
_TIME_FUNCS = {
    "time",
    "time_ns",
    "perf_counter",
    "perf_counter_ns",
    "monotonic",
    "monotonic_ns",
    "process_time",
}

_DATETIME_FUNCS = {"now", "utcnow", "today"}


class DeterminismPass(AnalysisPass):
    name = "determinism"
    description = (
        "simulation code paths must not read unseeded randomness or the "
        "wall clock (reproducible event ordering)"
    )
    severity = Severity.ERROR
    scope = ("sim/", "costmodel/", "core/", "workloads/", "memory/")

    def check(self, ctx: ModuleContext) -> List[Finding]:
        return list(self._iter_findings(ctx))

    def _iter_findings(self, ctx: ModuleContext) -> Iterator[Finding]:
        imported_time_funcs = _from_imports(ctx, "time") & _TIME_FUNCS
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = dotted_name(func)
            parts = name.split(".")
            tail = parts[-1]

            if tail == "default_rng" and _is_unseeded(node):
                yield self.finding(
                    ctx,
                    node,
                    f"`{name}()` without a seed draws OS entropy; pass an "
                    "explicit seed or accept an injected Generator",
                )
            elif (
                len(parts) >= 2
                and parts[-2] == "random"
                and parts[0] in ("np", "numpy")
                and tail in _NUMPY_LEGACY
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"legacy global-state RNG `{name}()`; use a seeded "
                    "`np.random.default_rng(seed)` Generator instead",
                )
            elif parts[0] == "random" and len(parts) == 2 and tail in _STDLIB_RANDOM:
                yield self.finding(
                    ctx,
                    node,
                    f"stdlib global RNG `{name}()`; use `random.Random(seed)` "
                    "or a seeded numpy Generator",
                )
            elif parts[0] == "time" and len(parts) == 2 and tail in _TIME_FUNCS:
                yield self.finding(
                    ctx,
                    node,
                    f"wall-clock read `{name}()` in simulation code; derive "
                    "time from `Simulator.now` (virtual time) instead",
                )
            elif isinstance(func, ast.Name) and func.id in imported_time_funcs:
                yield self.finding(
                    ctx,
                    node,
                    f"wall-clock read `{func.id}()` in simulation code; derive "
                    "time from `Simulator.now` (virtual time) instead",
                )
            elif (
                len(parts) >= 2
                and parts[-2] in ("datetime", "date")
                and tail in _DATETIME_FUNCS
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"wall-clock read `{name}()` in simulation code; pass "
                    "timestamps in explicitly",
                )


def _is_unseeded(call: ast.Call) -> bool:
    """default_rng() with no positional seed (or an explicit None)."""
    if call.args:
        first = call.args[0]
        return isinstance(first, ast.Constant) and first.value is None
    for kw in call.keywords:
        if kw.arg == "seed":
            value = kw.value
            return isinstance(value, ast.Constant) and value.value is None
    return True


def _from_imports(ctx: ModuleContext, module: str) -> "set[str]":
    names = set()
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ImportFrom) and node.module == module:
            for alias in node.names:
                names.add(alias.asname or alias.name)
    return names
