"""Fault-hook coverage: chaos testing must see every risky site.

``repro.faults`` defines one hook per *site class* — the places a real
system fails and where PR 5's chaos suite injects faults:

========================  =======================  ====================
site class                trigger (this pass)      required hook
========================  =======================  ====================
worker loop               a loop that pulls from   ``check_morsel``
                          a morsel dispatcher
                          (``next_batch`` /
                          ``next_morsel``) under
                          ``exec/``
allocation site           a ``.reserve(...)``      ``check_alloc``
                          call or an
                          ``OutOfMemoryError``
                          raise under ``memory/``
                          or ``core/hashtable/``
transfer path             an ``ingest_bandwidth``  ``bandwidth_factor``
                          implementation's
                          ``effective_*`` wrapper
                          under ``transfer/``
========================  =======================  ====================

A new executor loop, allocator, or transfer method that forgets its
hook silently escapes chaos testing — every fault scenario in
``faults/scenarios.py`` would pass trivially against it.  The check is
interprocedural: the hook may live in a helper (``_worker_loop`` →
``_attempt`` → ``plan.check_morsel``), so a site is covered when the
hook name appears anywhere in the function's transitive call closure.

Two misuse rules ride along: raw ``ingest_bandwidth`` calls outside
``transfer/`` bypass the ``bandwidth_factor`` choke point (call
``effective_ingest_bandwidth``), and a module defining fault-hook
*sites* under ``exec/`` must consult ``active_plan`` — the
zero-overhead switch — rather than importing plan state some other
way.
"""

from __future__ import annotations

from typing import FrozenSet, Iterator, List, Sequence

from repro.analysis.base import ProjectPass
from repro.analysis.finding import Finding, Severity
from repro.analysis.project import FunctionInfo, ModuleInfo, ProjectContext

#: dispatcher-pull call names that mark a worker loop.
_DISPATCH_NAMES = frozenset({"next_batch", "next_morsel"})

#: names whose presence in a closure satisfies the morsel site class.
_MORSEL_HOOK = "check_morsel"
_ALLOC_HOOK = "check_alloc"
_LINK_HOOK = "bandwidth_factor"


class FaultHookCoveragePass(ProjectPass):
    name = "fault-hook-coverage"
    description = (
        "worker loops, allocation sites, and transfer paths must call "
        "their repro.faults hook (check_morsel / check_alloc / "
        "bandwidth_factor) so chaos testing covers them"
    )
    severity = Severity.ERROR
    scope = ("exec/", "memory/", "transfer/", "core/hashtable/", "plan/")

    def check_project(self, project: ProjectContext) -> Sequence[Finding]:  # type: ignore[override]
        assert isinstance(project, ProjectContext)
        findings: List[Finding] = []
        for info in project.modules.values():
            if not self.in_scope(info.path):
                continue
            for fn in _all_functions(info):
                findings.extend(self._check_function(project, info, fn))
        return findings

    def _check_function(
        self, project: ProjectContext, info: ModuleInfo, fn: FunctionInfo
    ) -> Iterator[Finding]:
        closure_names = project.called_names(fn.qualname)
        direct_names = frozenset(call.name for call in fn.calls)
        if "exec/" in info.path:
            yield from self._check_worker_loop(
                project, info, fn, closure_names
            )
        if "memory/" in info.path or "core/hashtable/" in info.path:
            yield from self._check_alloc_site(info, fn, closure_names)
        if "transfer/" in info.path:
            yield from self._check_transfer_path(info, fn, direct_names)
        else:
            yield from self._check_raw_bandwidth_call(info, fn)

    # -- worker loops ------------------------------------------------------
    def _check_worker_loop(
        self,
        project: ProjectContext,
        info: ModuleInfo,
        fn: FunctionInfo,
        closure_names: FrozenSet[str],
    ) -> Iterator[Finding]:
        pulls = False
        for call in fn.calls:
            if not call.in_loop:
                continue
            if call.name in _DISPATCH_NAMES:
                pulls = True
                break
            for target in call.targets:
                if _DISPATCH_NAMES & project.called_names(target):
                    pulls = True
                    break
            if pulls:
                break
        if not pulls:
            return
        if _MORSEL_HOOK not in closure_names:
            yield self.finding_at(
                path=info.path,
                line=fn.lineno,
                column=1,
                message=(
                    f"worker loop `{_short(fn.qualname)}` pulls morsels "
                    "from a dispatcher but never reaches a "
                    f"`{_MORSEL_HOOK}` fault hook — crashes and "
                    "transient faults cannot be injected into it "
                    "(repro.faults site class: worker loop)"
                ),
                context=info.ctx.line_text(fn.lineno),
            )

    # -- allocation sites ---------------------------------------------------
    def _check_alloc_site(
        self,
        info: ModuleInfo,
        fn: FunctionInfo,
        closure_names: FrozenSet[str],
    ) -> Iterator[Finding]:
        reserves = any(call.name == "reserve" for call in fn.calls)
        capacity_check = any(
            call.name == "OutOfMemoryError" for call in fn.calls
        )
        if not reserves and not capacity_check:
            return
        if _ALLOC_HOOK in closure_names:
            return
        what = "reserves region capacity" if reserves else (
            "makes a capacity decision (raises OutOfMemoryError)"
        )
        yield self.finding_at(
            path=info.path,
            line=fn.lineno,
            column=1,
            message=(
                f"allocation site `{_short(fn.qualname)}` {what} but "
                f"never reaches a `{_ALLOC_HOOK}` fault hook — OomAt "
                "rules cannot target it (repro.faults site class: "
                "allocation)"
            ),
            context=info.ctx.line_text(fn.lineno),
        )

    # -- transfer paths -----------------------------------------------------
    def _check_transfer_path(
        self,
        info: ModuleInfo,
        fn: FunctionInfo,
        direct_names: FrozenSet[str],
    ) -> Iterator[Finding]:
        if not (
            fn.name.startswith("effective_") and "bandwidth" in fn.name
        ):
            return
        if _LINK_HOOK not in direct_names:
            yield self.finding_at(
                path=info.path,
                line=fn.lineno,
                column=1,
                message=(
                    f"transfer path `{_short(fn.qualname)}` computes an "
                    "effective bandwidth but never applies "
                    f"`{_LINK_HOOK}` — DegradeLink rules cannot slow "
                    "this link (repro.faults site class: transfer)"
                ),
                context=info.ctx.line_text(fn.lineno),
            )

    def _check_raw_bandwidth_call(
        self, info: ModuleInfo, fn: FunctionInfo
    ) -> Iterator[Finding]:
        for call in fn.calls:
            if call.name == "ingest_bandwidth":
                yield self.finding_at(
                    path=info.path,
                    line=call.lineno,
                    column=1,
                    message=(
                        f"`{_short(fn.qualname)}` calls the raw "
                        "`ingest_bandwidth` outside transfer/ — use "
                        "`effective_ingest_bandwidth`, the choke point "
                        "where DegradeLink faults apply"
                    ),
                    context=info.ctx.line_text(call.lineno),
                    severity=Severity.ERROR,
                )


def _all_functions(info: ModuleInfo) -> Iterator[FunctionInfo]:
    yield from info.functions.values()
    for cls in info.classes.values():
        yield from cls.methods.values()


def _short(qualname: str) -> str:
    return qualname.split(":", 1)[-1]
