"""File discovery and pass orchestration.

Orchestration has three layers:

* **discovery** — walk the given paths for ``.py`` files, pruning
  cache/VCS directories, ``*scratch*`` output directories, and
  ``BENCH_*`` artifacts, plus any ``--exclude`` globs;
* **per-module passes** — parse each file once into a
  :class:`~repro.analysis.base.ModuleContext` and run the classic
  single-file passes;
* **project passes** — build one
  :class:`~repro.analysis.project.ProjectContext` over every parsed
  module and run the interprocedural passes exactly once per run.

With a cache path (``--cache``), the run is incremental: only changed
files and their import-graph dependents are re-analyzed, dependencies
of those are re-parsed for context, and every other file replays its
cached findings (see :mod:`repro.analysis.cache`).
"""

from __future__ import annotations

import ast
import fnmatch
import os
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set

from repro.analysis.base import AnalysisPass, ModuleContext, ProjectPass
from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.cache import (
    AnalysisCache,
    CacheEntry,
    file_hash,
    import_targets,
    resolve_import_path,
)
from repro.analysis.finding import Finding, Severity
from repro.analysis.passes import ALL_PASSES
from repro.analysis.project import ProjectContext, module_name_for

#: Directory names never worth scanning (caches, VCS, environments).
_SKIP_DIRS = {
    "__pycache__",
    ".git",
    ".hypothesis",
    ".pytest_cache",
    ".mypy_cache",
    ".ruff_cache",
    ".venv",
    "venv",
    "node_modules",
}

#: Default glob excludes: bench-output scratch artifacts.  ``BENCH_*``
#: files are committed bench baselines (JSON, plus any scratch helper
#: dumped next to them) and ``*scratch*`` directories hold run output —
#: neither is source code this tool should parse.
_DEFAULT_EXCLUDES = ("BENCH_*", "*scratch*")


@dataclass
class AnalysisReport:
    """Everything one analysis run produced."""

    findings: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    #: Files actually parsed this run (≤ files_scanned on a warm cache).
    files_parsed: int = 0
    #: Files whose findings were replayed from the incremental cache.
    files_from_cache: int = 0
    unused_baseline_entries: List[BaselineEntry] = field(default_factory=list)

    @property
    def unbaselined(self) -> List[Finding]:
        return [f for f in self.findings if not f.baselined]

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.unbaselined if f.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.unbaselined if f.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        """True when the run should exit 0."""
        return not self.unbaselined and not self.unused_baseline_entries


def _posix(path: str) -> str:
    return path.replace(os.sep, "/")


def _excluded(posix_path: str, patterns: Sequence[str]) -> bool:
    """True if a path (or its basename) matches an exclude glob."""
    name = posix_path.rsplit("/", 1)[-1]
    for pattern in patterns:
        if (
            fnmatch.fnmatch(posix_path, pattern)
            or fnmatch.fnmatch(name, pattern)
            or fnmatch.fnmatch(posix_path, f"*/{pattern}")
        ):
            return True
    return False


def iter_python_files(
    paths: Sequence[str], exclude: Sequence[str] = ()
) -> Iterator[str]:
    """Yield .py files under the given files/directories, sorted.

    ``exclude`` globs match the full posix path, the basename, or any
    path suffix (``--exclude 'fixtures/*'`` prunes every fixtures
    directory).  Explicitly named files bypass the default scratch
    excludes but still honor user globs.
    """
    patterns = list(exclude)
    default_patterns = patterns + list(_DEFAULT_EXCLUDES)
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py") and not _excluded(_posix(path), patterns):
                yield path
            continue
        if not os.path.isdir(path):
            raise FileNotFoundError(f"no such file or directory: {path}")
        for root, dirs, files in os.walk(path):
            dirs[:] = sorted(
                d
                for d in dirs
                if d not in _SKIP_DIRS
                and not d.startswith(".")
                and not _excluded(_posix(os.path.join(root, d)), default_patterns)
            )
            for name in sorted(files):
                if not name.endswith(".py"):
                    continue
                full = os.path.join(root, name)
                if _excluded(_posix(full), default_patterns):
                    continue
                yield full


def _syntax_error_finding(path: str, exc: SyntaxError) -> Finding:
    return Finding(
        rule="syntax-error",
        severity=Severity.ERROR,
        path=path,
        line=exc.lineno or 1,
        column=(exc.offset or 0) + 1,
        message=f"file does not parse: {exc.msg}",
    )


def analyze_source(
    source: str,
    path: str = "<string>",
    passes: Optional[Sequence[AnalysisPass]] = None,
) -> List[Finding]:
    """Run passes over one in-memory module (test/fixture entry point).

    Project passes see a single-module project — cross-module
    resolution degrades to name-based matching, which is exactly what
    single-file fixtures exercise.
    """
    active = list(ALL_PASSES) if passes is None else list(passes)
    posix = path.replace(os.sep, "/")
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [_syntax_error_finding(posix, exc)]
    ctx = ModuleContext(posix, source, tree)
    findings: List[Finding] = []
    project: Optional[ProjectContext] = None
    for analysis_pass in active:
        if isinstance(analysis_pass, ProjectPass):
            if project is None:
                project = ProjectContext.build([ctx])
            findings.extend(analysis_pass.run_project(project))
        else:
            findings.extend(analysis_pass.run(ctx))
    return findings


def analyze_paths(
    paths: Sequence[str],
    passes: Optional[Sequence[AnalysisPass]] = None,
    baseline: Optional[Baseline] = None,
    exclude: Sequence[str] = (),
    cache_path: Optional[str] = None,
) -> AnalysisReport:
    """Analyze files/trees, apply the baseline, and build a report."""
    active = list(ALL_PASSES) if passes is None else list(passes)
    module_passes = [p for p in active if not isinstance(p, ProjectPass)]
    project_passes = [p for p in active if isinstance(p, ProjectPass)]

    files = [_posix(f) for f in iter_python_files(paths, exclude)]
    roots = sorted(
        (_posix(p).rstrip("/") for p in paths if os.path.isdir(p)),
        key=len,
        reverse=True,
    )
    sources: Dict[str, str] = {}
    hashes: Dict[str, str] = {}
    for file_path in files:
        with open(file_path, "r", encoding="utf-8") as handle:
            sources[file_path] = handle.read()
        hashes[file_path] = file_hash(sources[file_path])

    report = AnalysisReport(files_scanned=len(files))
    file_set = set(files)

    cache = AnalysisCache.load(cache_path) if cache_path else None
    if cache is None:
        dirty = set(files)
    else:
        changed = cache.changed_files(hashes)
        dirty = cache.with_dependents(changed) & file_set
        # A change to a global-contract module (e.g. the manifest
        # schema) invalidates the whole project, not just importers.
        for project_pass in project_passes:
            if any(
                fragment in path
                for fragment in project_pass.invalidates_on
                for path in changed
            ):
                dirty = set(files)
                break

    # -- parse worklist: dirty files plus (for project passes) their
    # transitive dependencies, for cross-module resolution context.
    name_table = {
        module_name_for(file_path, roots): file_path for file_path in files
    }
    contexts: Dict[str, ModuleContext] = {}
    deps_map: Dict[str, Set[str]] = {}
    fresh: Dict[str, List[Finding]] = {path: [] for path in dirty}
    queue = sorted(dirty)
    scheduled: Set[str] = set(queue)
    while queue:
        file_path = queue.pop()
        try:
            tree = ast.parse(sources[file_path], filename=file_path)
        except SyntaxError as exc:
            deps_map[file_path] = set()
            if file_path in dirty:
                fresh[file_path].append(
                    _syntax_error_finding(file_path, exc)
                )
            continue
        contexts[file_path] = ModuleContext(
            file_path, sources[file_path], tree
        )
        module_name = module_name_for(file_path, roots)
        deps: Set[str] = set()
        for dotted in import_targets(tree, module_name):
            target = resolve_import_path(dotted, name_table)
            if target is not None and target != file_path:
                deps.add(target)
        deps_map[file_path] = deps
        if project_passes:
            for dep in deps:
                if dep not in scheduled:
                    scheduled.add(dep)
                    queue.append(dep)
    report.files_parsed = len(scheduled)
    report.files_from_cache = len(files) - len(dirty)

    # -- per-module passes on dirty files only.
    for file_path in dirty:
        ctx = contexts.get(file_path)
        if ctx is None:
            continue  # syntax error already recorded
        for analysis_pass in module_passes:
            fresh[file_path].extend(analysis_pass.run(ctx))

    # -- project passes over everything parsed; only dirty files take
    # fresh findings (clean parsed files are context and keep cached
    # results — a partial project is unreliable for them).
    if project_passes and contexts:
        project = ProjectContext.build(list(contexts.values()), roots)
        for project_pass in project_passes:
            for finding in project_pass.run_project(project):
                if finding.path in fresh:
                    fresh[finding.path].append(finding)

    # -- merge fresh + cached findings in file order.
    for file_path in files:
        if file_path in dirty:
            report.findings.extend(fresh[file_path])
        elif cache is not None:
            entry = cache.entries.get(file_path)
            if entry is not None:
                report.findings.extend(
                    Finding.from_dict(payload) for payload in entry.findings
                )
    report.findings.sort(key=lambda f: (f.path, f.line, f.column, f.rule))

    if cache is not None:
        for file_path in dirty:
            cache.entries[file_path] = CacheEntry(
                hash=hashes[file_path],
                deps=sorted(deps_map.get(file_path, set())),
                findings=[f.to_dict() for f in fresh[file_path]],
            )
        cache.entries = {
            path: entry
            for path, entry in cache.entries.items()
            if path in file_set
        }
        cache.save()

    if baseline is not None:
        baseline.apply(report.findings)
        report.unused_baseline_entries = baseline.unused_entries()
    return report
