"""File discovery and pass orchestration."""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence

from repro.analysis.base import AnalysisPass, ModuleContext
from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.finding import Finding, Severity
from repro.analysis.passes import ALL_PASSES

_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache"}


@dataclass
class AnalysisReport:
    """Everything one analysis run produced."""

    findings: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    unused_baseline_entries: List[BaselineEntry] = field(default_factory=list)

    @property
    def unbaselined(self) -> List[Finding]:
        return [f for f in self.findings if not f.baselined]

    @property
    def ok(self) -> bool:
        """True when the run should exit 0."""
        return not self.unbaselined


def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    """Yield .py files under the given files/directories, sorted."""
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py"):
                yield path
            continue
        if not os.path.isdir(path):
            raise FileNotFoundError(f"no such file or directory: {path}")
        for root, dirs, files in os.walk(path):
            dirs[:] = sorted(
                d for d in dirs if d not in _SKIP_DIRS and not d.startswith(".")
            )
            for name in sorted(files):
                if name.endswith(".py"):
                    yield os.path.join(root, name)


def analyze_source(
    source: str,
    path: str = "<string>",
    passes: Optional[Sequence[AnalysisPass]] = None,
) -> List[Finding]:
    """Run passes over one in-memory module (test/fixture entry point)."""
    active = list(ALL_PASSES) if passes is None else list(passes)
    posix = path.replace(os.sep, "/")
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                rule="syntax-error",
                severity=Severity.ERROR,
                path=posix,
                line=exc.lineno or 1,
                column=(exc.offset or 0) + 1,
                message=f"file does not parse: {exc.msg}",
            )
        ]
    ctx = ModuleContext(posix, source, tree)
    findings: List[Finding] = []
    for analysis_pass in active:
        findings.extend(analysis_pass.run(ctx))
    return findings


def analyze_paths(
    paths: Sequence[str],
    passes: Optional[Sequence[AnalysisPass]] = None,
    baseline: Optional[Baseline] = None,
) -> AnalysisReport:
    """Analyze files/trees, apply the baseline, and build a report."""
    report = AnalysisReport()
    for file_path in iter_python_files(paths):
        report.files_scanned += 1
        with open(file_path, "r", encoding="utf-8") as handle:
            source = handle.read()
        report.findings.extend(analyze_source(source, file_path, passes))
    report.findings.sort(key=lambda f: (f.path, f.line, f.column, f.rule))
    if baseline is not None:
        baseline.apply(report.findings)
        report.unused_baseline_entries = baseline.unused_entries()
    return report
