"""Domain-specific static analysis for the reproduction codebase.

The simulator's fidelity rests on invariants that ordinary linters do
not know about:

* decimal GB/s and binary GiB/s must never be mixed (Figures 1-3 of the
  paper distinguish electrical from measured bandwidths) — raw byte-size
  and bandwidth literals must go through :mod:`repro.utils.units`;
* the discrete-event simulator must stay deterministic — no unseeded
  random sources or wall-clock reads in simulation code paths;
* hot-path operators must stay vectorized — no per-element Python loops
  over numpy arrays;
* every mutation of a shared hash table must route through the batch
  accessors and be priced with ``atomic_stream`` cost accounting
  (Section 6: the Het strategy's shared table relies on system-wide
  atomics);
* lock discipline must hold across module boundaries — attributes a
  class guards with its lock must never be touched without it, and
  lock acquisition order must be cycle-free (``lock-discipline``);
* every worker loop, allocation site, and transfer path must call its
  ``repro.faults`` hook so chaos testing covers it
  (``fault-hook-coverage``);
* keys written into run manifests must match the declared
  ``MANIFEST_SCHEMA``, and key-set changes must bump the schema
  version (``manifest-schema``).

The framework has two tiers: per-module passes see one
:class:`ModuleContext`; interprocedural passes see a
:class:`ProjectContext` — all modules of the run, cross-linked into a
symbol table, call graph, and lock-annotated attribute-access graph.
Runs are incrementally cached (``--cache``), baselined with a ratchet
(``--ratchet``), and runnable as ``python -m repro.analysis <paths>``.
"""

from repro.analysis.base import AnalysisPass, ModuleContext, ProjectPass
from repro.analysis.baseline import Baseline, BaselineError
from repro.analysis.cache import AnalysisCache
from repro.analysis.finding import Finding, Severity
from repro.analysis.passes import ALL_PASSES, get_passes
from repro.analysis.project import ProjectContext
from repro.analysis.reporters import SCHEMA_VERSION, render_json, render_text
from repro.analysis.runner import AnalysisReport, analyze_paths, analyze_source

__all__ = [
    "ALL_PASSES",
    "AnalysisCache",
    "AnalysisPass",
    "AnalysisReport",
    "Baseline",
    "BaselineError",
    "Finding",
    "ModuleContext",
    "ProjectContext",
    "ProjectPass",
    "SCHEMA_VERSION",
    "Severity",
    "analyze_paths",
    "analyze_source",
    "get_passes",
    "render_json",
    "render_text",
]
