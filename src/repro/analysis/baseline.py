"""Per-file baseline suppression for accepted findings.

A baseline entry acknowledges one existing finding without fixing it.
Entries match on ``(path, rule, context)`` — the stripped source line —
so they survive unrelated edits that move line numbers, and every entry
must carry a one-line justification (``reason``).  Unused entries are
reported so the baseline cannot rot.

File format (JSON, kept at the repository root as
``analysis-baseline.json``)::

    {
      "version": 1,
      "ratchet_limit": 3,
      "suppressions": [
        {
          "path": "src/repro/core/join/radix.py",
          "rule": "vectorization",
          "context": "for p in range(fanout):",
          "reason": "why this is acceptable",
          "count": 1
        }
      ]
    }

``ratchet_limit`` is the baseline ratchet: under ``--ratchet`` the run
fails if the baseline holds *more* entries than the limit (debt grew)
or *fewer* (debt was paid off — lower the limit to lock in the win).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.finding import Finding

BASELINE_VERSION = 1
DEFAULT_BASELINE_NAME = "analysis-baseline.json"


class BaselineError(ValueError):
    """Raised for malformed baseline files (bad schema, missing reason)."""


@dataclass
class BaselineEntry:
    """One accepted finding; suppresses up to ``count`` matches."""

    path: str
    rule: str
    context: str
    reason: str
    count: int = 1
    used: int = field(default=0, compare=False)

    def matches(self, finding: Finding) -> bool:
        if self.used >= self.count:
            return False
        if finding.rule != self.rule:
            return False
        if finding.context != self.context:
            return False
        return finding.path.endswith(self.path)


@dataclass
class Baseline:
    """A loaded set of suppressions, applied to a finding list."""

    entries: List[BaselineEntry] = field(default_factory=list)
    source: str = "<memory>"
    #: Ratchet ceiling for ``--ratchet`` runs; None = no ratchet declared.
    ratchet_limit: Optional[int] = None

    @classmethod
    def load(cls, path: str) -> "Baseline":
        with open(path, "r", encoding="utf-8") as handle:
            try:
                payload = json.load(handle)
            except json.JSONDecodeError as exc:
                raise BaselineError(f"{path}: invalid JSON: {exc}") from exc
        return cls.from_dict(payload, source=path)

    @classmethod
    def from_dict(cls, payload: object, source: str = "<memory>") -> "Baseline":
        if not isinstance(payload, dict):
            raise BaselineError(f"{source}: baseline must be a JSON object")
        version = payload.get("version")
        if version != BASELINE_VERSION:
            raise BaselineError(
                f"{source}: unsupported baseline version {version!r} "
                f"(expected {BASELINE_VERSION})"
            )
        raw_entries = payload.get("suppressions", [])
        if not isinstance(raw_entries, list):
            raise BaselineError(f"{source}: 'suppressions' must be a list")
        ratchet_limit = payload.get("ratchet_limit")
        if ratchet_limit is not None and (
            not isinstance(ratchet_limit, int) or ratchet_limit < 0
        ):
            raise BaselineError(
                f"{source}: ratchet_limit must be a non-negative integer"
            )
        unknown = set(payload) - {"version", "suppressions", "ratchet_limit"}
        if unknown:
            raise BaselineError(
                f"{source}: unknown field(s): {', '.join(sorted(unknown))}"
            )
        entries: List[BaselineEntry] = []
        for index, raw in enumerate(raw_entries):
            entries.append(_parse_entry(raw, index, source))
        return cls(entries=entries, source=source, ratchet_limit=ratchet_limit)

    def apply(self, findings: Sequence[Finding]) -> None:
        """Mark findings covered by an entry as baselined (in place)."""
        for finding in findings:
            for entry in self.entries:
                if entry.matches(finding):
                    entry.used += 1
                    finding.baselined = True
                    finding.suppression_reason = entry.reason
                    break

    def unused_entries(self) -> List[BaselineEntry]:
        """Entries that matched nothing — stale, a hard failure."""
        return [entry for entry in self.entries if entry.used == 0]

    def ratchet_violation(self) -> Optional[str]:
        """Why the ratchet fails, or None if it holds.

        The ratchet is two-sided: more entries than the limit means
        new debt slipped in; fewer means debt was paid off and the
        limit must be lowered so it cannot silently grow back.
        """
        if self.ratchet_limit is None:
            return (
                f"{self.source}: --ratchet requires a 'ratchet_limit' "
                "field in the baseline"
            )
        count = len(self.entries)
        if count > self.ratchet_limit:
            return (
                f"{self.source}: baseline has {count} entries but the "
                f"ratchet limit is {self.ratchet_limit} — fix the new "
                "findings instead of baselining them"
            )
        if count < self.ratchet_limit:
            return (
                f"{self.source}: baseline has {count} entries but the "
                f"ratchet limit is {self.ratchet_limit} — lower "
                f"ratchet_limit to {count} to lock in the improvement"
            )
        return None


def _parse_entry(raw: object, index: int, source: str) -> BaselineEntry:
    where = f"{source}: suppressions[{index}]"
    if not isinstance(raw, dict):
        raise BaselineError(f"{where}: entry must be an object")
    required = ("path", "rule", "context", "reason")
    missing = [key for key in required if not raw.get(key)]
    if missing:
        raise BaselineError(
            f"{where}: missing or empty field(s): {', '.join(missing)} "
            "(every suppression needs a one-line justification)"
        )
    fields: Dict[str, object] = {key: raw[key] for key in required}
    for key, value in fields.items():
        if not isinstance(value, str):
            raise BaselineError(f"{where}: {key} must be a string")
    count = raw.get("count", 1)
    if not isinstance(count, int) or count < 1:
        raise BaselineError(f"{where}: count must be a positive integer")
    unknown = set(raw) - set(required) - {"count"}
    if unknown:
        raise BaselineError(
            f"{where}: unknown field(s): {', '.join(sorted(unknown))}"
        )
    return BaselineEntry(
        path=str(raw["path"]),
        rule=str(raw["rule"]),
        context=str(raw["context"]),
        reason=str(raw["reason"]),
        count=count,
    )
