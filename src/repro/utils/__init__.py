"""Shared utilities: units, statistics, and table rendering."""

from repro.utils.units import (
    KIB,
    MIB,
    GIB,
    KB,
    MB,
    GB,
    NS,
    US,
    MS,
    SECOND,
    format_bytes,
    format_time,
    format_throughput,
    gib_per_s,
)
from repro.utils.stats import (
    RunStats,
    geometric_mean,
    harmonic_mean,
    mean,
    standard_error,
)
from repro.utils.tables import Table

__all__ = [
    "KIB",
    "MIB",
    "GIB",
    "KB",
    "MB",
    "GB",
    "NS",
    "US",
    "MS",
    "SECOND",
    "format_bytes",
    "format_time",
    "format_throughput",
    "gib_per_s",
    "RunStats",
    "geometric_mean",
    "harmonic_mean",
    "mean",
    "standard_error",
    "Table",
]
