"""Small statistics helpers for benchmark reporting.

The paper reports "the mean and standard error over 10 runs".  The simulator
is deterministic, but the functional layer re-runs with different seeds and
the harness reports the same statistics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; raises on an empty sequence."""
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def standard_error(values: Sequence[float]) -> float:
    """Standard error of the mean (sample standard deviation / sqrt(n))."""
    if not values:
        raise ValueError("standard error of empty sequence")
    if len(values) == 1:
        return 0.0
    mu = mean(values)
    variance = sum((v - mu) ** 2 for v in values) / (len(values) - 1)
    return math.sqrt(variance) / math.sqrt(len(values))


def harmonic_mean(values: Iterable[float]) -> float:
    """Harmonic mean, appropriate for averaging throughputs."""
    values = list(values)
    if not values:
        raise ValueError("harmonic mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("harmonic mean requires positive values")
    return len(values) / sum(1.0 / v for v in values)


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean, appropriate for averaging speedup ratios."""
    values = list(values)
    if not values:
        raise ValueError("geometric mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


@dataclass(frozen=True)
class RunStats:
    """Mean and standard error over repeated runs of one measurement."""

    mean: float
    stderr: float
    n: int

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "RunStats":
        return cls(mean=mean(values), stderr=standard_error(values), n=len(values))

    @property
    def relative_stderr(self) -> float:
        """Standard error as a fraction of the mean (paper keeps this <5%)."""
        if self.mean == 0:
            return 0.0
        return self.stderr / abs(self.mean)

    def __str__(self) -> str:
        return f"{self.mean:.4g} ± {self.stderr:.2g} (n={self.n})"
