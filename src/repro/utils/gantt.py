"""ASCII Gantt rendering of simulation timelines.

Visualizes the morsel-driven co-processing dynamics (Section 6.1): one
lane per worker, one block per dispatch span — making end-of-input skew
and batching effects visible in the terminal.
"""

from __future__ import annotations

from typing import List

from repro.obs.trace import Timeline
from repro.utils.units import format_time

_BLOCK = "▇"
_IDLE = "·"


def render_gantt(timeline: Timeline, width: int = 72) -> str:
    """Render a timeline as one ASCII lane per worker.

    Each character cell covers ``makespan / width`` seconds; a cell is
    filled when the worker is busy for the majority of it.
    """
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    if not timeline.spans:
        return "(empty timeline)"
    start = min(span.start for span in timeline.spans)
    end = max(span.end for span in timeline.spans)
    makespan = end - start
    if makespan <= 0:
        return "(zero-length timeline)"
    cell = makespan / width
    lines: List[str] = [
        f"timeline: {format_time(makespan)} total, "
        f"{format_time(cell)} per cell"
    ]
    label_width = max(len(worker) for worker in timeline.by_worker())
    for worker, spans in sorted(timeline.by_worker().items()):
        busy = [0.0] * width
        for span in spans:
            first = int((span.start - start) / cell)
            last = min(width - 1, int((span.end - start - 1e-12) / cell))
            for i in range(max(0, first), last + 1):
                cell_start = start + i * cell
                cell_end = cell_start + cell
                overlap = min(span.end, cell_end) - max(span.start, cell_start)
                busy[i] += max(0.0, overlap)
        lane = "".join(
            _BLOCK if b >= 0.5 * cell else _IDLE for b in busy
        )
        utilization = timeline.busy_time(worker) / makespan
        lines.append(f"{worker:<{label_width}} |{lane}| {utilization:.0%}")
    return "\n".join(lines)
