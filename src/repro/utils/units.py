"""Byte, time, and throughput units used throughout the simulator.

The paper mixes decimal units (GB/s electrical bandwidths in Figure 2) and
binary units (GiB/s measured bandwidths in Figures 1 and 3).  We keep both
and are explicit at every call site about which one is meant.  Internally
the simulator works in bytes and seconds.
"""

from __future__ import annotations

# --- byte units (binary) ---------------------------------------------------
KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB
TIB = 1024 * GIB

# --- byte units (decimal, used for electrical link bandwidths) -------------
KB = 1000
MB = 1000 * KB
GB = 1000 * MB

# --- time units (seconds) ---------------------------------------------------
NS = 1e-9
US = 1e-6
MS = 1e-3
SECOND = 1.0


def gib_per_s(value: float) -> float:
    """Convert a GiB/s figure into bytes/second."""
    return value * GIB


def gb_per_s(value: float) -> float:
    """Convert a decimal GB/s figure into bytes/second."""
    return value * GB


def format_bytes(num_bytes: float) -> str:
    """Render a byte count with a binary suffix, e.g. ``"32.0 GiB"``."""
    if num_bytes < 0:
        raise ValueError(f"byte count must be non-negative, got {num_bytes}")
    value = float(num_bytes)
    for suffix in ("B", "KiB", "MiB", "GiB", "TiB"):
        if value < 1024 or suffix == "TiB":
            if suffix == "B":
                return f"{value:.0f} {suffix}"
            return f"{value:.1f} {suffix}"
        value /= 1024
    raise AssertionError("unreachable")


def format_time(seconds: float) -> str:
    """Render a duration with an adaptive unit, e.g. ``"434 ns"``."""
    if seconds < 0:
        raise ValueError(f"duration must be non-negative, got {seconds}")
    if seconds == 0:
        return "0 s"
    if seconds < US:
        return f"{seconds / NS:.0f} ns"
    if seconds < MS:
        return f"{seconds / US:.1f} us"
    if seconds < SECOND:
        return f"{seconds / MS:.1f} ms"
    return f"{seconds:.2f} s"


def format_throughput(tuples_per_second: float) -> str:
    """Render a join throughput as the paper does, in G Tuples/s."""
    return f"{tuples_per_second / 1e9:.2f} G Tuples/s"
