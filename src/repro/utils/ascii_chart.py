"""Terminal bar charts for the benchmark harness.

The paper's figures are bar and line charts; the harness can render a
rough ASCII version of each reproduced figure next to its table so the
*shape* is visible at a glance without plotting dependencies.
"""

from __future__ import annotations

from typing import List, Mapping, Sequence

_BAR = "█"
_HALF = "▌"


def bar(value: float, maximum: float, width: int = 40) -> str:
    """One horizontal bar scaled to ``maximum``."""
    if maximum <= 0:
        return ""
    if value < 0:
        raise ValueError(f"bar values must be non-negative, got {value}")
    cells = value / maximum * width
    full = int(cells)
    return _BAR * full + (_HALF if cells - full >= 0.5 else "")

def bar_chart(
    values: Mapping[str, float],
    title: str = "",
    width: int = 40,
    unit: str = "",
) -> str:
    """A labelled horizontal bar chart.

    >>> print(bar_chart({"a": 2.0, "b": 1.0}, width=4))
    a 2 ████
    b 1 ██
    """
    if not values:
        raise ValueError("bar chart needs at least one value")
    maximum = max(values.values())
    label_width = max(len(str(label)) for label in values)
    number_width = max(len(f"{v:.3g}") for v in values.values())
    lines: List[str] = []
    if title:
        lines.append(title)
    for label, value in values.items():
        lines.append(
            f"{str(label):<{label_width}} "
            f"{value:>{number_width}.3g}{unit} "
            f"{bar(value, maximum, width)}"
        )
    return "\n".join(lines)


def grouped_bar_chart(
    rows: Sequence[Mapping],
    label_key: str,
    series: Sequence[str],
    title: str = "",
    width: int = 30,
) -> str:
    """Grouped bars: one block per row, one bar per series.

    ``rows`` are mappings with a label plus one value per series name
    (missing series are skipped) — the shape of a FigureResult row.
    """
    values = [
        row[name]
        for row in rows
        for name in series
        if name in row and row[name] is not None
    ]
    if not values:
        raise ValueError("no values to chart")
    maximum = max(values)
    series_width = max(len(s) for s in series)
    lines: List[str] = []
    if title:
        lines.append(title)
    for row in rows:
        lines.append(f"{row[label_key]}")
        for name in series:
            if name not in row or row[name] is None:
                continue
            value = row[name]
            lines.append(
                f"  {name:<{series_width}} {value:>8.3g} "
                f"{bar(value, maximum, width)}"
            )
    return "\n".join(lines)


def figure_chart(result, width: int = 30) -> str:
    """Chart a FigureResult (simulated series only)."""
    rows = [dict(row.values, **{"__label__": row.label}) for row in result.rows]
    return grouped_bar_chart(
        rows,
        label_key="__label__",
        series=result.series_names(),
        title=f"{result.figure}: {result.title} [{result.unit}]",
        width=width,
    )
