"""Minimal ASCII table renderer for the benchmark harness.

The benchmark harness prints the same rows/series the paper reports, side by
side with the paper's published value.  A tiny dependency-free renderer keeps
the output readable both under pytest and when the bench modules are run as
scripts.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


class Table:
    """Accumulates rows and renders them with aligned columns.

    >>> t = Table(["method", "throughput"])
    >>> t.add_row(["Coherence", "3.83"])
    >>> print(t.render())  # doctest: +NORMALIZE_WHITESPACE
    method    | throughput
    ----------+-----------
    Coherence | 3.83
    """

    def __init__(self, columns: Sequence[str], title: str = "") -> None:
        if not columns:
            raise ValueError("a table needs at least one column")
        self.title = title
        self.columns = [str(c) for c in columns]
        self.rows: List[List[str]] = []

    def add_row(self, values: Iterable[object]) -> None:
        row = [self._format(v) for v in values]
        if len(row) != len(self.columns):
            raise ValueError(
                f"row has {len(row)} values but table has {len(self.columns)} columns"
            )
        self.rows.append(row)

    @staticmethod
    def _format(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.3g}"
        return str(value)

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = []
        if self.title:
            lines.append(self.title)
        header = " | ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        lines.append(header)
        lines.append("-+-".join("-" * w for w in widths))
        for row in self.rows:
            lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
