"""Execution timelines recorded during simulation (compatibility shim).

The :class:`Span` / :class:`Timeline` types moved into the unified
observability layer (:mod:`repro.obs.trace`), where they gained
structured attributes and a :class:`~repro.obs.trace.Tracer` front end;
this module re-exports them so existing imports keep working.
"""

from __future__ import annotations

from repro.obs.trace import Span, Timeline

__all__ = ["Span", "Timeline"]
