"""Deprecated shim — import from :mod:`repro.obs.trace` instead.

The :class:`Span` / :class:`Timeline` types moved into the unified
observability layer (:mod:`repro.obs.trace`), where they gained
structured attributes and a :class:`~repro.obs.trace.Tracer` front end.
All in-tree callers now import from ``repro.obs``; this re-export
remains only so external code keeps working and may be removed in a
future release.
"""

from __future__ import annotations

from repro.obs.trace import Span, Timeline

__all__ = ["Span", "Timeline"]
