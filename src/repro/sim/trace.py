"""Execution timelines recorded during simulation.

A :class:`Timeline` collects :class:`Span` records (who did what, when)
so tests and benches can inspect scheduling behaviour: morsel counts per
processor, idle tails from execution skew, batch effects, etc.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass(frozen=True)
class Span:
    """One unit of simulated work on one worker."""

    worker: str
    label: str
    start: float
    end: float
    units: float = 0.0

    @property
    def duration(self) -> float:
        return self.end - self.start

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"span ends before it starts: {self}")


@dataclass
class Timeline:
    """Append-only record of spans."""

    spans: List[Span] = field(default_factory=list)

    def record(
        self, worker: str, label: str, start: float, end: float, units: float = 0.0
    ) -> Span:
        span = Span(worker=worker, label=label, start=start, end=end, units=units)
        self.spans.append(span)
        return span

    def by_worker(self) -> Dict[str, List[Span]]:
        result: Dict[str, List[Span]] = {}
        for span in self.spans:
            result.setdefault(span.worker, []).append(span)
        return result

    def busy_time(self, worker: str) -> float:
        return sum(s.duration for s in self.spans if s.worker == worker)

    def units_processed(self, worker: str) -> float:
        return sum(s.units for s in self.spans if s.worker == worker)

    def makespan(self) -> float:
        if not self.spans:
            return 0.0
        return max(s.end for s in self.spans) - min(s.start for s in self.spans)

    def idle_tail(self, worker: str) -> float:
        """Time between a worker's last span end and the global makespan
        end — the execution-skew penalty the scheduler tries to minimize.
        """
        mine = [s.end for s in self.spans if s.worker == worker]
        if not mine or not self.spans:
            return 0.0
        return max(s.end for s in self.spans) - max(mine)
