"""A minimal deterministic discrete-event simulator.

Events are (time, sequence) ordered; ties resolve in scheduling order,
which makes simulations reproducible.  Callbacks receive the simulator
so they can schedule follow-up events.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.obs.trace import Tracer


class SimulationError(RuntimeError):
    """Raised for invalid scheduling (negative delays, running twice)."""


@dataclass(frozen=True)
class Event:
    """A scheduled callback; ordering key is (time, seq)."""

    time: float
    seq: int
    callback: Callable[["Simulator"], None]

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class Simulator:
    """Event loop with a virtual clock.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(2.0, lambda s: fired.append(s.now))
    >>> _ = sim.schedule(1.0, lambda s: fired.append(s.now))
    >>> sim.run()
    >>> fired
    [1.0, 2.0]
    """

    def __init__(self, tracer: Optional[Tracer] = None) -> None:
        self.now = 0.0
        self.tracer = tracer
        self._queue: List[Event] = []
        self._seq = itertools.count()
        self._fired = 0
        self._running = False

    def schedule(self, delay: float, callback: Callable[["Simulator"], None]) -> Event:
        """Schedule ``callback`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: delay={delay}")
        event = Event(time=self.now + delay, seq=next(self._seq), callback=callback)
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(self, time: float, callback: Callable[["Simulator"], None]) -> Event:
        """Schedule ``callback`` at an absolute virtual time."""
        return self.schedule(time - self.now, callback)

    @property
    def pending(self) -> int:
        return len(self._queue)

    def step(self) -> bool:
        """Fire the next event; returns False when the queue is empty."""
        if not self._queue:
            return False
        event = heapq.heappop(self._queue)
        if event.time < self.now:
            raise SimulationError("event queue corrupted: time went backwards")
        self.now = event.time
        self._fired += 1
        event.callback(self)
        return True

    def run(self, until: Optional[float] = None) -> float:
        """Drain the event queue (optionally stopping at ``until``).

        Returns the final virtual time.  When a tracer is attached, the
        run is recorded as a ``sim.run`` span and the tracer's sim-clock
        advances by the elapsed virtual time, so discrete-event phases
        land on the same timeline as cost-model-priced ones.
        """
        if self._running:
            raise SimulationError("simulator is already running")
        self._running = True
        start = self.now
        fired_before = self._fired
        try:
            while self._queue:
                if until is not None and self._queue[0].time > until:
                    self.now = until
                    break
                self.step()
        finally:
            self._running = False
        if self.tracer is not None:
            with self.tracer.span(
                "sim.run",
                worker="simulator",
                events=self._fired - fired_before,
            ) as span:
                span.advance(self.now - start)
        return self.now
