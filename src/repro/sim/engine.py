"""A minimal deterministic discrete-event simulator.

Events are (time, sequence) ordered; ties resolve in scheduling order,
which makes simulations reproducible.  Callbacks receive the simulator
so they can schedule follow-up events.  Scheduled events can be
revoked with :meth:`Simulator.cancel_event` before they fire — the
serving scheduler uses this for per-query deadline events, which are
cancelled when the query completes in time.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Callable, List, Optional, Set

from repro.obs.trace import Tracer


class SimulationError(RuntimeError):
    """Raised for invalid scheduling (negative delays, running twice)."""


#: Relative clock slop absorbed by :meth:`Simulator.schedule_at`.
#: Absolute timestamps are typically computed outside the event loop
#: (cumulative sums of inter-arrival gaps, precomputed schedules), so
#: float accumulation can leave a target a few ULPs behind ``now`` even
#: though it is logically "now or later"; deltas within
#: ``CLOCK_EPSILON * max(1, now)`` of zero are clamped to zero while
#: genuinely past times stay fatal.
CLOCK_EPSILON = 1e-9


@dataclass(frozen=True)
class Event:
    """A scheduled callback; ordering key is (time, seq)."""

    time: float
    seq: int
    callback: Callable[["Simulator"], None]

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class Simulator:
    """Event loop with a virtual clock.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(2.0, lambda s: fired.append(s.now))
    >>> _ = sim.schedule(1.0, lambda s: fired.append(s.now))
    >>> sim.run()
    >>> fired
    [1.0, 2.0]
    """

    def __init__(self, tracer: Optional[Tracer] = None) -> None:
        self.now = 0.0
        self.tracer = tracer
        self._queue: List[Event] = []
        self._seq = itertools.count()
        self._fired = 0
        self._running = False
        #: seqs of scheduled-but-cancelled events; purged lazily when
        #: they reach the heap head, so cancellation is O(1).
        self._cancelled: Set[int] = set()
        #: seqs currently live in the queue (scheduled, not yet fired
        #: or cancelled) — lets :meth:`cancel_event` distinguish "still
        #: pending" from "already fired / already cancelled".
        self._live: Set[int] = set()

    def schedule(self, delay: float, callback: Callable[["Simulator"], None]) -> Event:
        """Schedule ``callback`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: delay={delay}")
        event = Event(time=self.now + delay, seq=next(self._seq), callback=callback)
        heapq.heappush(self._queue, event)
        self._live.add(event.seq)
        return event

    def schedule_at(self, time: float, callback: Callable[["Simulator"], None]) -> Event:
        """Schedule ``callback`` at an absolute virtual time.

        Epsilon-negative deltas — ``|time - now|`` within
        :data:`CLOCK_EPSILON` relative to the clock — are clamped to
        zero, so absolute timestamps that drifted a few ULPs behind the
        clock through float accumulation fire immediately instead of
        raising; times genuinely in the past remain a
        :class:`SimulationError`.
        """
        delta = time - self.now
        if delta < 0 and -delta <= CLOCK_EPSILON * max(1.0, self.now):
            delta = 0.0
        return self.schedule(delta, callback)

    def cancel_event(self, event: Event) -> bool:
        """Cancel a scheduled event before it fires.

        Returns True when the event was still pending (it will now
        never fire and the clock will never advance to it on its
        account); False when it already fired or was already
        cancelled.  Cancellation is O(1): the heap entry is discarded
        lazily when it reaches the head.

        This is what makes deadline enforcement cheap for the serving
        scheduler: every admitted query schedules one deadline event,
        and the common case — the query finishes in time — cancels it
        instead of letting a stale callback fire.
        """
        if event.seq not in self._live:
            return False
        self._live.discard(event.seq)
        self._cancelled.add(event.seq)
        return True

    def _purge_cancelled(self) -> None:
        """Drop cancelled events sitting at the heap head."""
        while self._queue and self._queue[0].seq in self._cancelled:
            dead = heapq.heappop(self._queue)
            self._cancelled.discard(dead.seq)

    @property
    def pending(self) -> int:
        return len(self._live)

    def step(self) -> bool:
        """Fire the next live event; returns False when none remain."""
        self._purge_cancelled()
        if not self._queue:
            return False
        event = heapq.heappop(self._queue)
        self._live.discard(event.seq)
        if event.time < self.now:
            raise SimulationError("event queue corrupted: time went backwards")
        self.now = event.time
        self._fired += 1
        event.callback(self)
        return True

    def run(self, until: Optional[float] = None) -> float:
        """Drain the event queue (optionally stopping at ``until``).

        Returns the final virtual time.  ``run(until=T)`` always leaves
        the clock at ``T`` when ``T`` exceeds the last fired event's
        time — whether the queue still holds later events or drained
        early — so callers observe consistent final-clock semantics on
        both paths; the clock never moves backwards (``until`` earlier
        than ``now`` leaves the clock where it is).  When a tracer is
        attached, the run is recorded as a ``sim.run`` span and the
        tracer's sim-clock advances by the elapsed virtual time, so
        discrete-event phases land on the same timeline as
        cost-model-priced ones.
        """
        if self._running:
            raise SimulationError("simulator is already running")
        self._running = True
        start = self.now
        fired_before = self._fired
        try:
            while self._queue:
                self._purge_cancelled()
                if not self._queue:
                    break
                if until is not None and self._queue[0].time > until:
                    break
                self.step()
            if until is not None and until > self.now:
                self.now = until
        finally:
            self._running = False
        if self.tracer is not None:
            with self.tracer.span(
                "sim.run",
                worker="simulator",
                events=self._fired - fired_before,
            ) as span:
                span.advance(self.now - start)
        return self.now
