"""Discrete-event simulation engine for virtual-time execution.

The analytical cost model prices single-processor phases; co-processing
(Section 6) additionally needs *dynamics*: a morsel dispatcher handing
work to processors that drain at different rates, batched GPU dispatch
latency, and end-of-input load imbalance.  This package provides a small
deterministic event engine plus a shared-resource throughput solver.
"""

from repro.sim.engine import Event, SimulationError, Simulator
from repro.sim.resources import SolverError, solve_concurrent_rates
from repro.obs.trace import Span, Timeline

__all__ = [
    "Event",
    "SimulationError",
    "Simulator",
    "SolverError",
    "solve_concurrent_rates",
    "Span",
    "Timeline",
]
