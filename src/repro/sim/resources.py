"""Shared-resource throughput solver for concurrent workers.

When a CPU and a GPU process the same join cooperatively (Section 6),
they compete for shared resources — most importantly the CPU memory
channels feeding both the CPU cores and the GPU's interconnect reads.
Given each worker's per-work-unit occupancy vector (seconds of busy time
deposited on each resource per tuple), the solver finds sustainable
per-worker rates under max-min fairness with proportional scaling:

* every worker starts at its solo rate (bounded by its own bottleneck),
* any resource whose total demand exceeds 1 busy-second per second
  scales its users down proportionally,
* repeat until feasible.

This waterfilling converges quickly (monotone decrease, fixed point at
feasibility) and reproduces the paper's observation that co-processing
must "avoid resource contention ... to prevent slowing down the overall
execution" (Section 6, requirement (c)).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence, Tuple

ResourceVector = Mapping[str, float]


class SolverError(RuntimeError):
    """The waterfilling solver could not reach a feasible point.

    Carries diagnostics instead of a bare message: the most
    oversubscribed resource, its residual load (busy-seconds deposited
    per second of wall time; feasible means <= 1), and how many
    iterations ran before giving up.
    """

    def __init__(
        self,
        worst_resource: Optional[str],
        residual_load: float,
        iterations: int,
    ) -> None:
        self.worst_resource = worst_resource
        self.residual_load = residual_load
        self.iterations = iterations
        super().__init__(
            f"concurrent rate solver failed to converge after "
            f"{iterations} iterations: resource {worst_resource!r} "
            f"still carries load {residual_load:.12g} (> 1)"
        )


def solo_rate(occupancy_per_unit: ResourceVector) -> float:
    """Units/s a worker sustains alone: 1 / max resource occupancy."""
    if not occupancy_per_unit:
        return float("inf")
    worst = max(occupancy_per_unit.values())
    if worst <= 0:
        return float("inf")
    return 1.0 / worst


def _worst_loaded(
    demands: Mapping[str, ResourceVector],
    rates: Mapping[str, float],
    finite: Sequence[str],
    tolerance: float,
) -> Tuple[Optional[str], float]:
    """The most oversubscribed resource at ``rates`` (None if feasible)."""
    loads: Dict[str, float] = {}
    for worker in finite:
        for resource, occupancy in demands[worker].items():
            loads[resource] = loads.get(resource, 0.0) + occupancy * rates[worker]
    worst_resource: Optional[str] = None
    worst_load = 1.0 + tolerance
    for resource, load in loads.items():
        if load > worst_load:
            worst_load = load
            worst_resource = resource
    return worst_resource, worst_load


def solve_concurrent_rates(
    demands: Mapping[str, ResourceVector],
    tolerance: float = 1e-9,
    max_iterations: int = 1000,
) -> Dict[str, float]:
    """Sustainable units/s per worker under shared-resource contention.

    Args:
        demands: worker name -> {resource name: occupancy seconds/unit}.

    Returns:
        worker name -> rate (units/s).  Workers with no demands get inf.

    Raises:
        SolverError: if ``max_iterations`` waterfilling rounds leave a
            resource oversubscribed (the error names the worst resource,
            its residual load, and the iteration count).  An oscillation
            guard returns early instead when the same resource stays
            worst without its load improving by more than ``tolerance``
            — the float-rounding fixed point, feasible within noise.
    """
    rates = {worker: solo_rate(vector) for worker, vector in demands.items()}
    # Insertion order, not set order: load sums stay deterministic
    # under hash randomization.
    finite = [w for w, r in rates.items() if r != float("inf")]
    last_resource: Optional[str] = None
    last_load = float("inf")
    for _ in range(max_iterations):
        worst_resource, worst_load = _worst_loaded(
            demands, rates, finite, tolerance
        )
        if worst_resource is None:
            return rates
        # Oscillation guard: scaling never increases any rate, so a
        # resource that stays worst with no measurable improvement is
        # at the float-rounding fixed point (load ~ 1 + ULPs); return
        # rather than spinning until the iteration cap.
        if worst_resource == last_resource and last_load - worst_load <= tolerance:
            return rates
        last_resource = worst_resource
        last_load = worst_load
        # Scale down every user of the oversubscribed resource.
        scale = 1.0 / worst_load
        for worker in finite:
            if demands[worker].get(worst_resource, 0.0) > 0:
                rates[worker] *= scale
    residual_resource, residual_load = _worst_loaded(
        demands, rates, finite, tolerance
    )
    if residual_resource is None:
        return rates
    raise SolverError(residual_resource, residual_load, max_iterations)
