"""Shared-resource throughput solver for concurrent workers.

When a CPU and a GPU process the same join cooperatively (Section 6),
they compete for shared resources — most importantly the CPU memory
channels feeding both the CPU cores and the GPU's interconnect reads.
Given each worker's per-work-unit occupancy vector (seconds of busy time
deposited on each resource per tuple), the solver finds sustainable
per-worker rates under max-min fairness with proportional scaling:

* every worker starts at its solo rate (bounded by its own bottleneck),
* any resource whose total demand exceeds 1 busy-second per second
  scales its users down proportionally,
* repeat until feasible.

This waterfilling converges quickly (monotone decrease, fixed point at
feasibility) and reproduces the paper's observation that co-processing
must "avoid resource contention ... to prevent slowing down the overall
execution" (Section 6, requirement (c)).
"""

from __future__ import annotations

from typing import Dict, Mapping

ResourceVector = Mapping[str, float]


def solo_rate(occupancy_per_unit: ResourceVector) -> float:
    """Units/s a worker sustains alone: 1 / max resource occupancy."""
    if not occupancy_per_unit:
        return float("inf")
    worst = max(occupancy_per_unit.values())
    if worst <= 0:
        return float("inf")
    return 1.0 / worst


def solve_concurrent_rates(
    demands: Mapping[str, ResourceVector],
    tolerance: float = 1e-9,
    max_iterations: int = 1000,
) -> Dict[str, float]:
    """Sustainable units/s per worker under shared-resource contention.

    Args:
        demands: worker name -> {resource name: occupancy seconds/unit}.

    Returns:
        worker name -> rate (units/s).  Workers with no demands get inf.
    """
    rates = {worker: solo_rate(vector) for worker, vector in demands.items()}
    finite = {w for w, r in rates.items() if r != float("inf")}
    for _ in range(max_iterations):
        # Find the most oversubscribed resource.
        loads: Dict[str, float] = {}
        for worker in finite:
            for resource, occupancy in demands[worker].items():
                loads[resource] = loads.get(resource, 0.0) + occupancy * rates[worker]
        worst_resource = None
        worst_load = 1.0 + tolerance
        for resource, load in loads.items():
            if load > worst_load:
                worst_load = load
                worst_resource = resource
        if worst_resource is None:
            return rates
        # Scale down every user of the oversubscribed resource.
        scale = 1.0 / worst_load
        for worker in finite:
            if demands[worker].get(worst_resource, 0.0) > 0:
                rates[worker] *= scale
    raise RuntimeError("concurrent rate solver failed to converge")
