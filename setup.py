"""Shim for legacy editable installs (`pip install -e .`).

The sandbox has no network access and no `wheel` package, so PEP 517
editable builds fail; this shim lets pip fall back to
``setup.py develop``.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
