"""Hybrid (Figure 8) and interleaved (Section 6.3) allocation."""

import pytest

from repro.hardware.memory import MemoryKind
from repro.memory.allocator import Allocator, OutOfMemoryError
from repro.memory.hybrid import allocate_hybrid, allocate_interleaved
from repro.utils.units import GIB, MIB


@pytest.fixture
def allocator(ibm):
    return Allocator(ibm)


class TestHybrid:
    def test_small_table_stays_on_gpu(self, allocator):
        allocation = allocate_hybrid(allocator, "gpu0", 4 * GIB, gpu_reserve=0)
        assert allocation.gpu_fraction == 1.0
        assert allocation.bytes_per_region() == {"gpu0-mem": 4 * GIB}

    def test_oversized_table_spills_to_nearest_cpu(self, allocator):
        allocation = allocate_hybrid(allocator, "gpu0", 24 * GIB, gpu_reserve=0)
        regions = allocation.bytes_per_region()
        assert regions["gpu0-mem"] == 16 * GIB
        assert regions["cpu0-mem"] == 8 * GIB
        assert allocation.gpu_fraction == pytest.approx(16 / 24)

    def test_gpu_segment_comes_first(self, allocator):
        allocation = allocate_hybrid(allocator, "gpu0", 20 * GIB, gpu_reserve=0)
        segments = allocation.address_space.segments
        assert segments[0].region_name == "gpu0-mem"
        assert segments[1].region_name == "cpu0-mem"

    def test_gpu_reserve_respected(self, allocator):
        allocation = allocate_hybrid(
            allocator, "gpu0", 17 * GIB, gpu_reserve=2 * GIB
        )
        assert allocation.bytes_per_region()["gpu0-mem"] == 14 * GIB

    def test_numa_recursive_spill(self, allocator, ibm):
        # Fill cpu0's memory almost completely; the spill must continue
        # into cpu1's memory (the next-nearest NUMA node).
        cpu0 = ibm.memory("cpu0-mem")
        filler = allocator.alloc("cpu0-mem", cpu0.free_bytes - GIB)
        allocation = allocate_hybrid(allocator, "gpu0", 20 * GIB, gpu_reserve=0)
        regions = allocation.bytes_per_region()
        assert regions["gpu0-mem"] == 16 * GIB
        assert regions["cpu0-mem"] == GIB
        assert regions["cpu1-mem"] == 3 * GIB
        allocator.free(filler)

    def test_impossible_allocation_raises_and_rolls_back(self, allocator, ibm):
        total = sum(m.capacity for m in ibm.memories.values())
        with pytest.raises(OutOfMemoryError):
            allocate_hybrid(allocator, "gpu0", total + GIB, gpu_reserve=0)
        # Roll-back: nothing may stay allocated.
        for memory in ibm.memories.values():
            assert memory.allocated == 0

    def test_spill_kind_configurable(self, allocator):
        allocation = allocate_hybrid(
            allocator, "gpu0", 20 * GIB, gpu_reserve=0,
            spill_kind=MemoryKind.PINNED,
        )
        kinds = {p.region_name: p.kind for p in allocation.pieces}
        assert kinds["cpu0-mem"] is MemoryKind.PINNED
        assert kinds["gpu0-mem"] is MemoryKind.DEVICE

    def test_free_releases_everything(self, allocator, ibm):
        allocation = allocate_hybrid(allocator, "gpu0", 20 * GIB, gpu_reserve=0)
        allocation.free(allocator)
        for memory in ibm.memories.values():
            assert memory.allocated == 0

    def test_zero_bytes(self, allocator):
        allocation = allocate_hybrid(allocator, "gpu0", 0)
        assert allocation.nbytes == 0
        assert allocation.gpu_fraction == 0.0

    def test_free_invalidates_address_space(self, allocator):
        # Regression: free() used to clear pieces but leave the address
        # space mapped, so a freed allocation still reported resident
        # bytes per region.
        allocation = allocate_hybrid(allocator, "gpu0", 20 * GIB, gpu_reserve=0)
        assert allocation.bytes_per_region()  # valid before the free
        allocation.free(allocator)
        assert allocation.freed
        assert allocation.gpu_fraction == 0.0
        with pytest.raises(RuntimeError, match="has been freed"):
            allocation.bytes_per_region()

    def test_double_free_rejected(self, allocator):
        allocation = allocate_hybrid(allocator, "gpu0", 4 * GIB, gpu_reserve=0)
        allocation.free(allocator)
        with pytest.raises(RuntimeError, match="already freed"):
            allocation.free(allocator)


class TestInterleaved:
    def test_round_robin_over_gpus(self, allocator):
        allocation = allocate_interleaved(
            allocator, ["gpu0", "gpu1"], 8 * MIB, page_bytes=2 * MIB
        )
        regions = allocation.bytes_per_region()
        assert regions == {"gpu0-mem": 4 * MIB, "gpu1-mem": 4 * MIB}

    def test_segments_alternate(self, allocator):
        allocation = allocate_interleaved(
            allocator, ["gpu0", "gpu1"], 6 * MIB, page_bytes=2 * MIB
        )
        names = [s.region_name for s in allocation.address_space.segments]
        assert names == ["gpu0-mem", "gpu1-mem", "gpu0-mem"]

    def test_needs_at_least_one_gpu(self, allocator):
        with pytest.raises(ValueError):
            allocate_interleaved(allocator, [], GIB)

    def test_overflow_raises_and_rolls_back(self, allocator, ibm):
        with pytest.raises(OutOfMemoryError):
            allocate_interleaved(allocator, ["gpu0", "gpu1"], 40 * GIB)
        for memory in ibm.memories.values():
            assert memory.allocated == 0
