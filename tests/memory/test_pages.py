"""The Unified Memory page-migration simulator."""

import numpy as np
import pytest

from repro.memory.pages import (
    MigrationStats,
    UnifiedSpace,
    expected_fault_rate_uniform,
    sequential_trace,
    uniform_random_trace,
)


class TestBasicMechanics:
    def test_first_touch_faults(self):
        space = UnifiedSpace(total_pages=4, resident_pages=4)
        assert space.access(0) is True
        assert space.access(0) is False

    def test_fits_entirely_no_steady_state_faults(self):
        space = UnifiedSpace(total_pages=8, resident_pages=8)
        first = space.access_trace(sequential_trace(8))
        second = space.access_trace(sequential_trace(8))
        assert first.faults == 8  # cold
        assert second.faults == 0  # warm
        assert second.hits == 8

    def test_eviction_when_full(self):
        space = UnifiedSpace(total_pages=4, resident_pages=2)
        space.access(0)
        space.access(1)
        space.access(2)  # must evict
        assert space.resident_count == 2
        assert space.evictions == 1

    def test_out_of_range_access(self):
        space = UnifiedSpace(4, 4)
        with pytest.raises(IndexError):
            space.access(4)

    def test_validation(self):
        with pytest.raises(ValueError):
            UnifiedSpace(0, 1)
        with pytest.raises(ValueError):
            UnifiedSpace(4, 0)

    def test_resident_never_exceeds_frames(self):
        space = UnifiedSpace(total_pages=100, resident_pages=10)
        space.access_trace(uniform_random_trace(100, 5000, seed=1))
        assert space.resident_count <= 10


class TestScanThrashing:
    def test_repeated_oversized_scan_thrashes_completely(self):
        # A sequential scan over 2x the resident set with clock
        # replacement faults on every access (the classic LRU worst
        # case) — why UM migration is a poor fit for repeated scans.
        space = UnifiedSpace(total_pages=20, resident_pages=10)
        space.access_trace(sequential_trace(20))  # cold pass
        warm = space.access_trace(sequential_trace(20))
        assert warm.fault_rate == 1.0

    def test_sequential_trace_shape(self):
        trace = sequential_trace(5, passes=3)
        assert len(trace) == 15
        assert trace[:5].tolist() == [0, 1, 2, 3, 4]

    def test_sequential_trace_validation(self):
        with pytest.raises(ValueError):
            sequential_trace(5, passes=0)


class TestUniformRandom:
    def test_fault_rate_matches_analytic_model(self):
        # The cost model's UM thrashing term assumes miss probability =
        # non-resident fraction; the mechanism simulation agrees.
        total, resident = 200, 120
        space = UnifiedSpace(total, resident)
        space.access_trace(uniform_random_trace(total, 2000, seed=2))  # warm
        stats = space.access_trace(uniform_random_trace(total, 20000, seed=3))
        expected = expected_fault_rate_uniform(total, resident)
        assert stats.fault_rate == pytest.approx(expected, abs=0.05)

    def test_fault_rate_zero_when_everything_fits(self):
        assert expected_fault_rate_uniform(10, 20) == 0.0

    def test_migrated_bytes_counts_both_directions(self):
        stats = MigrationStats(accesses=10, faults=4, evictions=3)
        assert stats.migrated_bytes(page_bytes=4096) == 7 * 4096

    def test_stats_properties(self):
        stats = MigrationStats(accesses=10, faults=4, evictions=0)
        assert stats.hits == 6
        assert stats.fault_rate == pytest.approx(0.4)
        assert MigrationStats(0, 0, 0).fault_rate == 0.0


class TestCrossCheckWithCostModel:
    def test_figure17_pcie_cliff_mechanism(self):
        """The PCI-e out-of-core cliff, from first principles.

        A 2x-oversized hash table accessed uniformly over UM: about half
        the accesses fault and each fault moves a page both ways. The
        implied effective bandwidth per useful access collapses by ~3
        orders of magnitude vs. resident accesses — the mechanism behind
        the 0.77 -> 0.02 G Tuples/s cliff.
        """
        total, resident = 400, 200
        space = UnifiedSpace(total, resident)
        space.access_trace(uniform_random_trace(total, 4000, seed=4))
        stats = space.access_trace(uniform_random_trace(total, 40000, seed=5))
        assert stats.fault_rate == pytest.approx(0.5, abs=0.05)
        page = 4096
        useful_bytes = stats.accesses * 16  # one 16-byte entry per access
        moved = stats.migrated_bytes(page)
        amplification = moved / useful_bytes
        assert amplification > 100
