"""Capacity-tracking allocator."""

import threading

import pytest

from repro.hardware.memory import MemoryKind
from repro.memory.allocator import Allocator, OutOfMemoryError
from repro.utils.units import GIB, MIB


@pytest.fixture
def allocator(ibm):
    return Allocator(ibm)


class TestAlloc:
    def test_alloc_tracks_capacity(self, allocator):
        allocator.alloc("cpu0-mem", GIB)
        assert allocator.used_bytes("cpu0-mem") == GIB

    def test_alloc_beyond_capacity_raises(self, allocator):
        with pytest.raises(OutOfMemoryError):
            allocator.alloc("gpu0-mem", 17 * GIB, kind=MemoryKind.DEVICE)

    def test_gpu_memory_requires_device_kind(self, allocator):
        with pytest.raises(ValueError):
            allocator.alloc("gpu0-mem", GIB, kind=MemoryKind.PAGEABLE)

    def test_cpu_memory_rejects_device_kind(self, allocator):
        with pytest.raises(ValueError):
            allocator.alloc("cpu0-mem", GIB, kind=MemoryKind.DEVICE)

    def test_negative_size_rejected(self, allocator):
        with pytest.raises(ValueError):
            allocator.alloc("cpu0-mem", -1)

    def test_unique_ids(self, allocator):
        a = allocator.alloc("cpu0-mem", 10)
        b = allocator.alloc("cpu0-mem", 10)
        assert a.id != b.id

    def test_pinned_allocations_allowed(self, allocator):
        a = allocator.alloc("cpu0-mem", GIB, kind=MemoryKind.PINNED)
        assert a.kind is MemoryKind.PINNED
        assert not a.is_gpu_memory

    def test_device_flag(self, allocator):
        a = allocator.alloc("gpu0-mem", GIB, kind=MemoryKind.DEVICE)
        assert a.is_gpu_memory


class TestFree:
    def test_free_returns_capacity(self, allocator):
        a = allocator.alloc("cpu0-mem", GIB)
        allocator.free(a)
        assert allocator.used_bytes("cpu0-mem") == 0

    def test_double_free_raises(self, allocator):
        a = allocator.alloc("cpu0-mem", GIB)
        allocator.free(a)
        with pytest.raises(ValueError):
            allocator.free(a)

    def test_foreign_allocation_rejected(self, allocator, intel):
        other = Allocator(intel)
        a = other.alloc("cpu0-mem", GIB)
        with pytest.raises(ValueError):
            allocator.free(a)

    def test_live_allocations_listing(self, allocator):
        a = allocator.alloc("cpu0-mem", 10, label="x")
        b = allocator.alloc("cpu1-mem", 20, label="y")
        assert len(allocator.live_allocations()) == 2
        assert allocator.live_allocations("cpu1-mem") == [b]
        allocator.free(a)
        assert allocator.live_allocations() == [b]


class TestThreadSafety:
    def test_concurrent_alloc_free_keeps_books_consistent(self, allocator):
        """Stress test: N threads churning alloc/free on one region.

        If id generation, the live table, or the reserve/release pairs
        raced, this would surface as duplicate ids, lost allocations, or
        a non-zero final balance.
        """
        rounds, workers = 200, 8
        ids = [[] for _ in range(workers)]
        errors = []

        def churn(slot):
            try:
                for _ in range(rounds):
                    a = allocator.alloc("cpu0-mem", MIB, label=f"t{slot}")
                    ids[slot].append(a.id)
                    allocator.free(a)
            except BaseException as exc:  # noqa: B036 - collected for assert
                errors.append(exc)

        threads = [
            threading.Thread(target=churn, args=(i,)) for i in range(workers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        all_ids = [i for slot in ids for i in slot]
        assert len(all_ids) == rounds * workers
        assert len(set(all_ids)) == len(all_ids), "duplicate allocation ids"
        assert allocator.used_bytes("cpu0-mem") == 0
        assert allocator.live_allocations() == []

    def test_concurrent_overcommit_never_oversubscribes(self, ibm):
        """Threads racing for the last bytes must not overshoot capacity."""
        allocator = Allocator(ibm)
        capacity = ibm.memory("gpu0-mem").capacity
        chunk = capacity // 10
        granted = []
        lock = threading.Lock()

        def grab():
            try:
                while True:
                    a = allocator.alloc("gpu0-mem", chunk, kind=MemoryKind.DEVICE)
                    with lock:
                        granted.append(a)
            except OutOfMemoryError:
                return

        threads = [threading.Thread(target=grab) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = sum(a.nbytes for a in granted)
        assert total <= capacity
        assert total == allocator.used_bytes("gpu0-mem")
        assert len(granted) == 10  # exactly capacity // chunk grants
