"""Virtual address space with region-backed segments."""

import pytest

from repro.memory.address_space import AddressSpace, PageMapping


class TestSegments:
    def test_append_grows_contiguously(self):
        space = AddressSpace()
        first = space.append(100, "gpu0-mem")
        second = space.append(50, "cpu0-mem")
        assert first.start == 0 and first.end == 100
        assert second.start == 100 and second.end == 150
        assert space.size == 150

    def test_empty_segment_rejected(self):
        with pytest.raises(ValueError):
            AddressSpace().append(0, "gpu0-mem")

    def test_mapping_validation(self):
        with pytest.raises(ValueError):
            PageMapping(start=10, end=10, region_name="x")


class TestLookup:
    @pytest.fixture
    def space(self):
        space = AddressSpace()
        space.append(100, "gpu0-mem")
        space.append(300, "cpu0-mem")
        return space

    def test_region_of_first_segment(self, space):
        assert space.region_of(0) == "gpu0-mem"
        assert space.region_of(99) == "gpu0-mem"

    def test_region_of_second_segment(self, space):
        assert space.region_of(100) == "cpu0-mem"
        assert space.region_of(399) == "cpu0-mem"

    def test_out_of_range_raises(self, space):
        with pytest.raises(IndexError):
            space.region_of(400)
        with pytest.raises(IndexError):
            space.region_of(-1)

    def test_bytes_per_region(self, space):
        assert space.bytes_per_region() == {"gpu0-mem": 100, "cpu0-mem": 300}

    def test_region_fraction_is_uniform_access_fraction(self, space):
        # A_GPU of Section 5.3: uniform keys hit regions by byte share.
        assert space.region_fraction("gpu0-mem") == pytest.approx(0.25)
        assert space.region_fraction("cpu0-mem") == pytest.approx(0.75)
        assert space.region_fraction("elsewhere") == 0.0

    def test_empty_space_fraction(self):
        assert AddressSpace().region_fraction("x") == 0.0

    def test_multiple_segments_same_region_merge_in_totals(self):
        space = AddressSpace()
        space.append(10, "a")
        space.append(20, "b")
        space.append(30, "a")
        assert space.bytes_per_region() == {"a": 40, "b": 20}
