"""The command-line interface (python -m repro)."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_join_defaults(self):
        args = build_parser().parse_args(["join"])
        assert args.machine == "ibm"
        assert args.workload == "a"
        assert args.placement == "gpu"


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "ibm-ac922" in out
        assert "intel-xeon-v100" in out
        assert "nvlink2" in out and "pcie3" in out

    def test_figure_by_number(self, capsys):
        assert main(["figure", "18"]) == 0
        out = capsys.readouterr().out
        assert "Figure 18" in out

    def test_figure_unknown(self, capsys):
        assert main(["figure", "99"]) == 2
        assert "unknown figure" in capsys.readouterr().err

    def test_join_command(self, capsys):
        code = main([
            "join", "--workload", "a", "--placement", "gpu",
            "--scale", str(2.0**-14),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "throughput" in out
        assert "G Tuples/s" in out

    def test_join_on_intel(self, capsys):
        code = main([
            "join", "--machine", "intel", "--method", "zero_copy",
            "--scale", str(2.0**-14),
        ])
        assert code == 0
        assert "intel-xeon-v100" in capsys.readouterr().out
