"""Tripwire: every paper anchor stays within its documented tolerance.

EXPERIMENTS.md documents which published values the simulation matches
and which deviate (and why).  This test walks every PAPER anchor of
every figure module and asserts the current simulation stays within the
tolerance class assigned to it — so a calibration change that silently
breaks a reproduced figure fails CI.
"""

import pytest

from repro.bench import (
    fig12_transfer_methods,
    fig14_hashtable_locality,
    fig17_build_scaling,
    fig18_build_probe_ratio,
    fig21_coprocessing,
)

SCALE = 2.0**-13

#: (figure, row, series) -> allowed relative deviation. Anything not
#: listed defaults to TIGHT. LOOSE entries are the documented
#: deviations in EXPERIMENTS.md.
TIGHT = 0.15
MEDIUM = 0.30
LOOSE = None  # excluded: catalogued deviation

OVERRIDES = {
    ("Figure 12", "staged_copy", "nvlink2"): MEDIUM,
    ("Figure 14", "A", "rcpu"): MEDIUM,
    ("Figure 14", "A", "rgpu"): MEDIUM,
    ("Figure 14", "B", "cpu"): MEDIUM,
    ("Figure 14", "B", "rcpu"): MEDIUM,
    ("Figure 14", "B", "rgpu"): MEDIUM,
    ("Figure 14", "C", "gpu"): MEDIUM,
    ("Figure 14", "C", "cpu"): LOOSE,
    ("Figure 14", "C", "rcpu"): LOOSE,
    ("Figure 14", "C", "rgpu"): LOOSE,
    ("Figure 17", "512M", "nvlink2"): LOOSE,
    ("Figure 17", "512M", "nvlink2-hybrid"): LOOSE,
    ("Figure 17", "2048M", "nvlink2"): LOOSE,
    ("Figure 17", "2048M", "nvlink2-hybrid"): LOOSE,
    ("Figure 21a", "A", "het"): MEDIUM,
    ("Figure 21a", "A", "gpu+het"): MEDIUM,
    ("Figure 21a", "B", "cpu"): MEDIUM,
    ("Figure 21a", "B", "het"): MEDIUM,
    ("Figure 21a", "C", "gpu+het"): LOOSE,
}


def _check(result):
    failures = []
    for row in result.rows:
        for series, value in row.values.items():
            paper = result.paper_value(row.label, series)
            if not paper:
                continue
            tolerance = OVERRIDES.get(
                (result.figure, row.label, series), TIGHT
            )
            if tolerance is None:
                continue
            error = abs(value - paper) / abs(paper)
            if error > tolerance:
                failures.append(
                    f"{result.figure} [{row.label}, {series}]: "
                    f"sim {value:.3g} vs paper {paper:.3g} "
                    f"({error:.0%} > {tolerance:.0%})"
                )
    assert not failures, "\n".join(failures)


def test_fig12_anchors():
    _check(fig12_transfer_methods.run(scale=SCALE))


def test_fig14_anchors():
    _check(fig14_hashtable_locality.run(scale=SCALE))


def test_fig17_anchors():
    _check(
        fig17_build_scaling.run(scale=SCALE, tuple_millions=(512, 2048))
    )


def test_fig18_anchors():
    _check(fig18_build_probe_ratio.run(scale=SCALE))


def test_fig21_anchors():
    _check(fig21_coprocessing.run(scale=SCALE))
