"""End-to-end database scenario: catalog -> engine -> joins.

A miniature warehouse: a fact table and two dimensions live in the
catalog (with real capacity accounting), queries run both through the
generic engine and the specialized star join, and the two agree.
"""

import numpy as np
import pytest

import repro
from repro.core.join.multiway import Dimension, StarJoin
from repro.engine import Filter, HashAggregate, HashJoinOp, TableScan, collect


@pytest.fixture
def warehouse(ibm):
    rng = np.random.default_rng(21)
    catalog = repro.Catalog(ibm)
    n_products, n_stores, n_sales = 400, 50, 30_000
    catalog.create_table(
        "products",
        {
            "id": np.arange(n_products, dtype=np.int64),
            "price": rng.integers(1, 100, n_products).astype(np.int64),
        },
    )
    catalog.create_table(
        "stores",
        {
            "id": np.arange(n_stores, dtype=np.int64),
            "region": rng.integers(0, 4, n_stores).astype(np.int64),
        },
    )
    catalog.create_table(
        "sales",
        {
            "product_id": rng.integers(0, n_products, n_sales).astype(np.int64),
            "store_id": rng.integers(0, n_stores, n_sales).astype(np.int64),
            "quantity": rng.integers(1, 10, n_sales).astype(np.int64),
        },
    )
    return catalog


class TestWarehouse:
    def test_capacity_accounted(self, warehouse):
        assert warehouse.used_bytes("cpu0-mem") == warehouse.total_modeled_bytes()

    def test_engine_two_dim_query(self, warehouse):
        """revenue per region via the generic operator pipeline."""
        sales = warehouse.table("sales")
        products = warehouse.table("products")
        stores = warehouse.table("stores")

        with_price = HashJoinOp(
            TableScan(products.columns), TableScan(sales.columns, 4096),
            build_key="id", probe_key="product_id",
        )
        with_region = HashJoinOp(
            TableScan(stores.columns), with_price,
            build_key="id", probe_key="store_id",
        )
        result = collect(
            HashAggregate(
                Filter(with_region, lambda b: b["quantity"] >= 2),
                group_by=("build_region",),
                aggregates={"units": ("quantity", "sum")},
            )
        )

        # Reference with plain numpy.
        s, p, st = sales.columns, products.columns, stores.columns
        keep = s["quantity"] >= 2
        regions = st["region"][s["store_id"][keep]]
        for region, units in zip(result["build_region"], result["units"]):
            mask = regions == region
            assert units == s["quantity"][keep][mask].sum()

    def test_star_join_agrees_with_engine(self, warehouse, ibm):
        sales = warehouse.table("sales")
        fact = {
            "product_id": sales.column("product_id"),
            "store_id": sales.column("store_id"),
        }
        dims = [
            Dimension(
                relation=warehouse.table("products").as_relation("id", "price"),
                fact_key="product_id",
            ),
            Dimension(
                relation=warehouse.table("stores").as_relation("id", "region"),
                fact_key="store_id",
            ),
        ]
        star = StarJoin(ibm).run(
            fact, dims, measure=sales.column("quantity")
        )
        # Every fact row matches both dimensions (dense FK domains).
        assert star.survivors == sales.executed_rows
        assert star.aggregate == int(sales.column("quantity").sum())

    def test_migrate_then_query(self, warehouse, ibm):
        seconds = warehouse.migrate("sales", "cpu1-mem")
        assert seconds > 0
        sales = warehouse.table("sales")
        relation = sales.as_relation("product_id", "quantity")
        assert relation.location == "cpu1-mem"
        products = warehouse.table("products").as_relation("id", "price")
        res = repro.NoPartitioningJoin(ibm, hash_table_placement="gpu").run(
            products, relation
        )
        assert res.matches == sales.executed_rows
        # The probe now streams over two hops (NVLink + X-Bus).
        assert "xbus" in str(res.probe_cost.occupancy) or any(
            "xbus" in key for key in res.probe_cost.occupancy
        )

    def test_drop_everything(self, warehouse):
        for name in list(warehouse.tables()):
            warehouse.drop_table(name)
        assert warehouse.used_bytes("cpu0-mem") == 0
        assert warehouse.tables() == []
