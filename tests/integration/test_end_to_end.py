"""End-to-end integration: the public API, whole-library flows."""

import numpy as np
import pytest

import repro


class TestPublicApi:
    def test_lazy_exports(self):
        # The package-level lazy loader exposes the high-level API.
        assert repro.NoPartitioningJoin is not None
        assert repro.workload_a is not None
        with pytest.raises(AttributeError):
            repro.does_not_exist

    def test_version(self):
        assert repro.__version__


class TestQuickstartFlow:
    def test_decision_tree_to_execution(self, ibm):
        wl = repro.workload_a(scale=2**-14)
        decision = repro.decide_placement(ibm, wl.r.modeled_tuples * 16)
        join = repro.NoPartitioningJoin(
            ibm,
            hash_table_placement=decision.hash_table_placement,
            transfer_method="coherence",
        )
        res = join.run(wl.r, wl.s)
        assert res.matches == wl.s.executed_tuples
        assert res.throughput_gtuples > 3

    def test_auto_strategy_for_large_table(self, ibm):
        wl = repro.workload_ratio(1, scale=2**-13, modeled_r=2048 * 10**6)
        decision = repro.decide_placement(ibm, wl.r.modeled_tuples * 16)
        assert decision.strategy == "het"
        coop = repro.CoopJoin(ibm, strategy=decision.strategy)
        res = coop.run(wl.r, wl.s, workers=("cpu0", "gpu0"))
        assert res.matches == wl.s.executed_tuples


class TestCrossOperatorConsistency:
    def test_three_join_operators_agree(self, ibm):
        wl = repro.workload_selectivity(0.6, scale=2**-14)
        nopa = repro.NoPartitioningJoin(ibm, hash_table_placement="cpu").run(
            wl.r, wl.s
        )
        radix = repro.RadixJoin(ibm).run(wl.r, wl.s)
        coop = repro.CoopJoin(ibm, strategy="het").run(
            wl.r, wl.s, workers=("cpu0", "gpu0")
        )
        assert nopa.matches == radix.matches == coop.matches
        assert nopa.aggregate == radix.aggregate == coop.aggregate

    def test_numpy_reference_join(self, ibm):
        wl = repro.workload_selectivity(0.5, scale=2**-14, seed=123)
        # Reference: sort-merge with numpy.
        order = np.argsort(wl.r.key)
        sorted_keys = wl.r.key[order]
        pos = np.searchsorted(sorted_keys, wl.s.key)
        pos = np.minimum(pos, len(sorted_keys) - 1)
        hits = sorted_keys[pos] == wl.s.key
        res = repro.NoPartitioningJoin(ibm, hash_table_placement="gpu").run(
            wl.r, wl.s
        )
        assert res.matches == int(hits.sum())


class TestMachineIsolation:
    def test_placements_do_not_leak_between_runs(self, ibm):
        wl = repro.workload_ratio(1, scale=2**-13, modeled_r=1536 * 10**6)
        join = repro.NoPartitioningJoin(ibm, hash_table_placement="hybrid")
        first = join.run(wl.r, wl.s)
        second = join.run(wl.r, wl.s)
        assert first.placement.fractions == pytest.approx(
            second.placement.fractions
        )
        # The machine's capacity bookkeeping must be clean afterwards.
        for memory in ibm.memories.values():
            assert memory.allocated == 0

    def test_intel_and_ibm_independent(self, ibm, intel):
        wl = repro.workload_a(scale=2**-14)
        a = repro.NoPartitioningJoin(ibm, hash_table_placement="gpu").run(
            wl.r, wl.s
        )
        pinned = wl.placed_for("zero_copy")
        b = repro.NoPartitioningJoin(
            intel, hash_table_placement="gpu", transfer_method="zero_copy"
        ).run(pinned.r, pinned.s)
        assert a.throughput_gtuples > 4 * b.throughput_gtuples


class TestHeadlineClaims:
    """The abstract's numbers: 18x over PCI-e, 7.3x over the CPU."""

    def test_up_to_18x_over_pcie(self, ibm, intel):
        wl = repro.workload_ratio(1, scale=2**-13, modeled_r=1536 * 10**6)
        nvlink = repro.NoPartitioningJoin(ibm, hash_table_placement="cpu").run(
            wl.r, wl.s
        )
        pinned = wl.placed_for("zero_copy")
        pcie = repro.NoPartitioningJoin(
            intel, hash_table_placement="cpu", transfer_method="zero_copy"
        ).run(pinned.r, pinned.s)
        ratio = nvlink.throughput_gtuples / pcie.throughput_gtuples
        assert ratio > 8  # paper: 8-18x for out-of-core tables

    def test_multiples_over_optimized_cpu(self, ibm):
        wl = repro.workload_ratio(8, scale=2**-12)
        gpu = repro.NoPartitioningJoin(ibm, hash_table_placement="gpu").run(
            wl.r, wl.s
        )
        cpu = repro.RadixJoin(ibm).run(wl.r, wl.s)
        ratio = gpu.throughput_gtuples / cpu.throughput_gtuples
        assert ratio > 3  # paper: 3.2-7.3x
