"""Failure injection: corrupted state and misuse must fail loudly.

"Errors should never pass silently" — these tests verify that broken
invariants (corrupted hash tables, impossible schedules, exhausted
memory mid-operation) surface as exceptions rather than wrong answers.
"""

import numpy as np
import pytest

from repro.core.hashtable.open_addressing import OpenAddressingHashTable
from repro.core.hashtable.perfect import PerfectHashTable
from repro.memory.allocator import Allocator, OutOfMemoryError
from repro.sim.engine import SimulationError, Simulator
from repro.utils.units import GIB


class TestCorruptedHashTables:
    def test_open_addressing_full_table_lookup_of_absent_key_terminates(self):
        # A completely full table has no EMPTY slot to stop a miss probe;
        # the guard must terminate the scan (the key is provably absent
        # after capacity probes) rather than loop forever.
        table = OpenAddressingHashTable(4, load_factor=0.9)
        keys = np.arange(table.capacity, dtype=np.int64)
        with pytest.raises(ValueError):
            # Cannot even fill it beyond capacity through the API ...
            table.insert_batch(
                np.arange(table.capacity + 1, dtype=np.int64),
                np.zeros(table.capacity + 1, dtype=np.int64),
            )
        # ... so corrupt it directly and probe.  After `capacity` rounds
        # every slot has been inspected, so the probe terminates with a
        # definitive not-found instead of spinning (or crashing) on the
        # missing EMPTY sentinel.
        table.keys[:] = 7  # all slots claim key 7
        table.size = table.capacity
        found, _ = table.lookup_batch(np.array([3], dtype=np.int64))
        assert not found.any()
        assert table.stats.lookup_probes == table.capacity

    def test_perfect_table_rejects_foreign_writes(self):
        table = PerfectHashTable(8)
        table.insert_batch(
            np.arange(8, dtype=np.int64), np.arange(8, dtype=np.int64)
        )
        # Tampering with a slot makes the duplicate check fire on the
        # next legitimate insert of that key range.
        with pytest.raises(ValueError):
            table.insert_batch(
                np.array([3], dtype=np.int64), np.array([0], dtype=np.int64)
            )


class TestSchedulerMisuse:
    def test_simulator_rejects_past_events(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-0.5, lambda s: None)

    def test_simulator_rejects_reentrant_run(self):
        sim = Simulator()

        def recurse(s):
            s.run()

        sim.schedule(0.0, recurse)
        with pytest.raises(SimulationError):
            sim.run()


class TestMemoryExhaustion:
    def test_allocator_failure_leaves_consistent_state(self, ibm):
        allocator = Allocator(ibm)
        kept = allocator.alloc("cpu0-mem", 100 * GIB)
        before = ibm.memory("cpu0-mem").allocated
        with pytest.raises(OutOfMemoryError):
            allocator.alloc("cpu0-mem", 100 * GIB)
        assert ibm.memory("cpu0-mem").allocated == before
        allocator.free(kept)

    def test_join_oom_leaves_machine_clean(self, ibm):
        from repro.core.join.nopa import NoPartitioningJoin
        from repro.workloads.builders import workload_ratio

        wl = workload_ratio(1, scale=2.0**-13, modeled_r=2048 * 10**6)
        join = NoPartitioningJoin(ibm, hash_table_placement="gpu")
        with pytest.raises(OutOfMemoryError):
            join.run(wl.r, wl.s)
        for memory in ibm.memories.values():
            assert memory.allocated == 0
        # The machine is still usable afterwards.
        ok = NoPartitioningJoin(ibm, hash_table_placement="cpu").run(wl.r, wl.s)
        assert ok.matches == wl.s.executed_tuples


class TestDegenerateInputs:
    def test_empty_relations_join_cleanly(self, ibm):
        from repro.core.join.nopa import NoPartitioningJoin
        from repro.data.relation import Relation

        r = Relation(
            name="R",
            key=np.arange(64, dtype=np.int64),
            payload=np.arange(64, dtype=np.int64),
        )
        s = Relation(
            name="S",
            key=np.array([], dtype=np.int64),
            payload=np.array([], dtype=np.int64),
            modeled_tuples=1,
        )
        res = NoPartitioningJoin(ibm, hash_table_placement="gpu").run(r, s)
        assert res.matches == 0
        assert res.runtime > 0  # build still costs time

    def test_single_tuple_workload(self, ibm):
        from repro.core.join.nopa import NoPartitioningJoin
        from repro.data.relation import Relation

        r = Relation(
            name="R",
            key=np.array([0], dtype=np.int64),
            payload=np.array([10], dtype=np.int64),
        )
        s = Relation(
            name="S",
            key=np.array([0, 0, 0], dtype=np.int64),
            payload=np.array([1, 2, 3], dtype=np.int64),
        )
        res = NoPartitioningJoin(ibm, hash_table_placement="gpu").run(r, s)
        assert res.matches == 3
        assert res.aggregate == 30
