"""Failure injection: chaos runs recover; corruption fails loudly.

Two families:

* **Misuse & corruption** — broken invariants (corrupted hash tables,
  impossible schedules, exhausted memory mid-operation) surface as
  exceptions rather than wrong answers ("errors should never pass
  silently").
* **Chaos suite** — seeded :class:`~repro.faults.FaultPlan`\\ s inject
  crashes, transients, OOM, and degraded links into full join runs; the
  run must recover to *bit-identical* results (and, for pricing-neutral
  faults, bit-identical manifests minus the ``resilience`` section),
  with the resilience section accounting for every injected fault.
  ``CHAOS_SEEDS`` is the fixed set CI's chaos job sweeps.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hashtable.open_addressing import OpenAddressingHashTable
from repro.core.hashtable.perfect import PerfectHashTable
from repro.core.join.nopa import NoPartitioningJoin
from repro.exec import MorselExecutor, MorselFailedError
from repro.faults import (
    CHAOS_SEEDS,
    CrashWorker,
    DegradeLink,
    FaultPlan,
    ResilienceLog,
    RetryPolicy,
    TransientError,
    chaos_plan,
)
from repro.memory.allocator import Allocator, OutOfMemoryError
from repro.obs.manifest import build_manifest
from repro.sim.engine import SimulationError, Simulator
from repro.utils.units import GIB


class TestCorruptedHashTables:
    def test_open_addressing_full_table_lookup_of_absent_key_terminates(self):
        # A completely full table has no EMPTY slot to stop a miss probe;
        # the guard must terminate the scan (the key is provably absent
        # after capacity probes) rather than loop forever.
        table = OpenAddressingHashTable(4, load_factor=0.9)
        keys = np.arange(table.capacity, dtype=np.int64)
        with pytest.raises(ValueError):
            # Cannot even fill it beyond capacity through the API ...
            table.insert_batch(
                np.arange(table.capacity + 1, dtype=np.int64),
                np.zeros(table.capacity + 1, dtype=np.int64),
            )
        # ... so corrupt it directly and probe.  After `capacity` rounds
        # every slot has been inspected, so the probe terminates with a
        # definitive not-found instead of spinning (or crashing) on the
        # missing EMPTY sentinel.
        table.keys[:] = 7  # all slots claim key 7
        table.size = table.capacity
        found, _ = table.lookup_batch(np.array([3], dtype=np.int64))
        assert not found.any()
        assert table.stats.lookup_probes == table.capacity

    def test_perfect_table_rejects_foreign_writes(self):
        table = PerfectHashTable(8)
        table.insert_batch(
            np.arange(8, dtype=np.int64), np.arange(8, dtype=np.int64)
        )
        # Tampering with a slot makes the duplicate check fire on the
        # next legitimate insert of that key range.
        with pytest.raises(ValueError):
            table.insert_batch(
                np.array([3], dtype=np.int64), np.array([0], dtype=np.int64)
            )


class TestSchedulerMisuse:
    def test_simulator_rejects_past_events(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-0.5, lambda s: None)

    def test_simulator_rejects_reentrant_run(self):
        sim = Simulator()

        def recurse(s):
            s.run()

        sim.schedule(0.0, recurse)
        with pytest.raises(SimulationError):
            sim.run()


class TestMemoryExhaustion:
    def test_allocator_failure_leaves_consistent_state(self, ibm):
        allocator = Allocator(ibm)
        kept = allocator.alloc("cpu0-mem", 100 * GIB)
        before = ibm.memory("cpu0-mem").allocated
        with pytest.raises(OutOfMemoryError):
            allocator.alloc("cpu0-mem", 100 * GIB)
        assert ibm.memory("cpu0-mem").allocated == before
        allocator.free(kept)

    def test_join_oom_leaves_machine_clean(self, ibm):
        from repro.core.join.nopa import NoPartitioningJoin
        from repro.workloads.builders import workload_ratio

        wl = workload_ratio(1, scale=2.0**-13, modeled_r=2048 * 10**6)
        join = NoPartitioningJoin(ibm, hash_table_placement="gpu")
        with pytest.raises(OutOfMemoryError):
            join.run(wl.r, wl.s)
        for memory in ibm.memories.values():
            assert memory.allocated == 0
        # The machine is still usable afterwards.
        ok = NoPartitioningJoin(ibm, hash_table_placement="cpu").run(wl.r, wl.s)
        assert ok.matches == wl.s.executed_tuples


class TestDegenerateInputs:
    def test_empty_relations_join_cleanly(self, ibm):
        from repro.core.join.nopa import NoPartitioningJoin
        from repro.data.relation import Relation

        r = Relation(
            name="R",
            key=np.arange(64, dtype=np.int64),
            payload=np.arange(64, dtype=np.int64),
        )
        s = Relation(
            name="S",
            key=np.array([], dtype=np.int64),
            payload=np.array([], dtype=np.int64),
            modeled_tuples=1,
        )
        res = NoPartitioningJoin(ibm, hash_table_placement="gpu").run(r, s)
        assert res.matches == 0
        assert res.runtime > 0  # build still costs time

    def test_single_tuple_workload(self, ibm):
        from repro.core.join.nopa import NoPartitioningJoin
        from repro.data.relation import Relation

        r = Relation(
            name="R",
            key=np.array([0], dtype=np.int64),
            payload=np.array([10], dtype=np.int64),
        )
        s = Relation(
            name="S",
            key=np.array([0, 0, 0], dtype=np.int64),
            payload=np.array([1, 2, 3], dtype=np.int64),
        )
        res = NoPartitioningJoin(ibm, hash_table_placement="gpu").run(r, s)
        assert res.matches == 3
        assert res.aggregate == 30


# ---------------------------------------------------------------------------
# Chaos suite: seeded fault plans against full join runs
# ---------------------------------------------------------------------------

#: morsel size small enough that the reduced-scale workloads decompose
#: into dozens of morsels per phase — plenty of injection sites.
#: ``CHAOS_SEEDS`` / ``chaos_plan`` come from ``repro.faults.scenarios``
#: so the suite and the chaos bench sweep the exact same plans.
CHAOS_MORSEL_TUPLES = 4096


def chaos_join(machine, **overrides):
    config = dict(
        hash_table_placement="gpu",
        transfer_method="coherence",
        backend="threads",
        workers=4,
        exec_morsel_tuples=CHAOS_MORSEL_TUPLES,
        oom_policy="spill",
        retry_policy=RetryPolicy(max_attempts=4, base_delay=0.0),
    )
    config.update(overrides)
    return NoPartitioningJoin(machine, **config)


def manifest_dict(join, result, kind):
    manifest = build_manifest(
        kind,
        join.machine,
        [result.build_cost, result.probe_cost],
        results={"matches": result.matches, "aggregate": result.aggregate},
        obs=join.obs,
        resilience=None,  # compared separately
    )
    return manifest.to_dict()


class TestChaosEquivalence:
    """Seeded chaos runs recover to bit-identical join output."""

    @pytest.mark.parametrize("backend", ("threads", "processes"))
    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_chaos_run_matches_fault_free_serial(self, ibm, wl_a, seed, backend):
        baseline = chaos_join(ibm, backend="serial").run(wl_a.r, wl_a.s)
        join = chaos_join(ibm, backend=backend)
        plan = chaos_plan(seed)
        with plan.install():
            result = join.run(wl_a.r, wl_a.s)
        assert result.matches == baseline.matches
        assert result.aggregate == baseline.aggregate
        assert result.payload_lines_loaded == baseline.payload_lines_loaded
        # TableStats-derived pricing inputs are identical too.
        assert (
            result.table_stats_probe_factor == baseline.table_stats_probe_factor
        )

    @pytest.mark.parametrize("backend", ("threads", "processes"))
    @pytest.mark.parametrize("seed", [101, 202])
    def test_pricing_neutral_chaos_manifest_identical_minus_resilience(
        self, ibm, wl_a, seed, backend
    ):
        # Crashes and transients change *wall-clock* recovery work only;
        # the priced manifest (phases, metrics, spans, results) must be
        # bit-identical to a fault-free serial run.
        base_join = chaos_join(ibm, backend="serial")
        base = base_join.run(wl_a.r, wl_a.s)
        join = chaos_join(ibm, backend=backend)
        plan = chaos_plan(seed)
        with plan.install():
            result = join.run(wl_a.r, wl_a.s)
        assert manifest_dict(join, result, "nopa[chaos]") == manifest_dict(
            base_join, base, "nopa[chaos]"
        )

    def test_oom_seed_degrades_to_hybrid_with_identical_results(self, ibm, wl_a):
        baseline = chaos_join(ibm, backend="serial").run(wl_a.r, wl_a.s)
        join = chaos_join(ibm)
        plan = chaos_plan(303)
        with plan.install():
            result = join.run(wl_a.r, wl_a.s)
        # Degradation changes the placement (performance), never results.
        assert result.placement.label == "hybrid"
        assert result.matches == baseline.matches
        assert result.aggregate == baseline.aggregate
        (event,) = [e for e in join.last_resilience.events if e.action == "spill"]
        assert event.detail["from_strategy"] == "gpu"
        assert event.detail["to_strategy"] == "hybrid"
        assert plan.injected_counts() == {"oom": 1}

    def test_ci_seed_set_collectively_exercises_all_recoveries(self, ibm, wl_a):
        totals = {"retry": 0, "redispatch": 0, "spill": 0}
        for seed in CHAOS_SEEDS:
            join = chaos_join(ibm)
            plan = chaos_plan(seed)
            with plan.install():
                join.run(wl_a.r, wl_a.s)
            counts = join.last_resilience.counts()
            for key in totals:
                totals[key] += counts[key]
        assert totals["retry"] >= 1, totals
        assert totals["redispatch"] >= 1, totals
        assert totals["spill"] >= 1, totals

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_resilience_section_accounts_for_every_injected_fault(
        self, ibm, wl_a, seed
    ):
        join = chaos_join(ibm)
        plan = chaos_plan(seed)
        with plan.install():
            join.run(wl_a.r, wl_a.s)
        section = join.last_resilience.section(plan)
        counts = section["injected_counts"]
        counters = section["counters"]
        assert len(section["injected"]) == sum(counts.values())
        assert sum(counts.values()) >= 1, "seed injected nothing"
        # Every morsel-level fault produced exactly one recovery action
        # (retry or re-dispatch); every OOM produced one spill.
        morsel_faults = counts.get("transient", 0) + counts.get("crash", 0)
        assert counters["retry"] + counters["redispatch"] == morsel_faults
        assert counters["spill"] == counts.get("oom", 0)


class TestChaosProperty:
    """Hypothesis: any recoverable seeded plan is output-invisible."""

    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        crash_probability=st.floats(min_value=0.0, max_value=0.25),
        transient_probability=st.floats(min_value=0.0, max_value=0.5),
        workers=st.integers(min_value=2, max_value=4),
    )
    @settings(max_examples=20, deadline=None)
    def test_recoverable_plan_is_bit_identical_to_serial(
        self, seed, crash_probability, transient_probability, workers
    ):
        total = 64 * 23
        data = np.arange(total, dtype=np.int64)
        expected = data * 2
        log = ResilienceLog()
        executor = MorselExecutor(
            workers=workers,
            morsel_tuples=64,
            name="exec",
            resilience=log,
            retry=RetryPolicy(max_attempts=8, base_delay=0.0),
        )
        plan = FaultPlan(
            seed=seed,
            rules=[
                # attempts=(0,) (the default) makes transients
                # recoverable by construction; times=3 bounds crashes
                # under the attempt budget.
                TransientError(probability=transient_probability, times=None),
                CrashWorker(probability=crash_probability, times=3),
            ],
        )
        with plan.install():
            parts = executor.map_values(
                total, lambda work, worker: data[work.start : work.end] * 2
            )
        assert np.array_equal(np.concatenate(parts), expected)
        # Accounting: every injected morsel fault is answered by exactly
        # one recovery action.
        counts = plan.injected_counts()
        injected = counts.get("transient", 0) + counts.get("crash", 0)
        assert log.count("retry") + log.count("redispatch") == injected


class TestChaosUnrecoverable:
    def test_unrecoverable_plan_raises_typed_error_naming_the_range(self, ibm, wl_a):
        import threading

        join = chaos_join(ibm, retry_policy=RetryPolicy(max_attempts=2))
        plan = FaultPlan(
            seed=9,
            name="chaos-unrecoverable",
            rules=[TransientError(probability=1.0, attempts=None, times=None)],
        )
        with plan.install():
            with pytest.raises(MorselFailedError) as info:
                join.run(wl_a.r, wl_a.s)
        err = info.value
        assert err.work.end > err.work.start
        assert f"[{err.work.start}, {err.work.end})" in str(err)
        assert "attempt" in str(err)
        # No stranded pool threads after the failure.
        assert not [
            t for t in threading.enumerate() if t.name.startswith("nopa-w")
        ]


class TestGracefulDegradation:
    def test_real_oom_spills_to_hybrid_fig8(self, ibm):
        # The genuine Figure 8 situation: a modeled build side larger
        # than GPU memory.  With oom_policy="spill" the join degrades to
        # the hybrid (GPU-first, CPU-spill) placement instead of dying.
        from repro.workloads.builders import workload_ratio

        wl = workload_ratio(1, scale=2.0**-13, modeled_r=2048 * 10**6)
        join = NoPartitioningJoin(
            ibm, hash_table_placement="gpu", oom_policy="spill"
        )
        result = join.run(wl.r, wl.s)
        assert result.placement.label == "hybrid"
        assert 0.0 < result.placement.gpu_fraction(ibm) < 1.0
        assert join.last_resilience.count("spill") == 1
        assert result.matches == wl.s.executed_tuples
        # The machine is left clean (the placement probe frees its
        # capacity), so a second run still succeeds.
        assert ibm.memory("gpu0-mem").allocated == 0

    def test_default_oom_policy_still_raises(self, ibm):
        from repro.workloads.builders import workload_ratio

        wl = workload_ratio(1, scale=2.0**-13, modeled_r=2048 * 10**6)
        join = NoPartitioningJoin(ibm, hash_table_placement="gpu")
        with pytest.raises(OutOfMemoryError):
            join.run(wl.r, wl.s)

    def test_degraded_link_prices_slower_but_identical_results(self, ibm, wl_a):
        fast = chaos_join(ibm, backend="serial", hash_table_placement="cpu")
        base = fast.run(wl_a.r, wl_a.s)
        slow_join = chaos_join(ibm, backend="serial", hash_table_placement="cpu")
        plan = FaultPlan(
            seed=7,
            name="chaos-slow-link",
            rules=[DegradeLink(factor=0.25, method="coherence")],
        )
        with plan.install():
            slow = slow_join.run(wl_a.r, wl_a.s)
        assert slow.matches == base.matches
        assert slow.aggregate == base.aggregate
        assert slow.runtime > base.runtime
        assert plan.injected_counts().get("degraded_link", 0) >= 1
