"""Chaos-serving suite: seeded determinism and fault-free identity.

Two invariants gate this suite in CI:

1. **Chaos determinism** — serving under any committed chaos seed
   (`repro.faults.SERVING_CHAOS_SEEDS`) twice produces bit-identical
   reports and per-query manifests: every retry delay, breaker
   transition, and degraded rate re-solve happens in virtual time from
   seeded draws.
2. **Fault-free identity** — with no fault plan installed and the
   default (inert) policy, the resilience-aware serving path prices
   and schedules exactly as PR 9 did: the solo-priced phases of a
   served query match the committed ``BENCH_pr9.json`` baseline bit
   for bit, and the new schema-1.4 serving fields sit at their inert
   defaults.
"""

import json
from pathlib import Path

import pytest

from repro.faults import SERVING_CHAOS_SEEDS, serving_chaos_plan
from repro.serve import QueryService, ServicePolicy

BENCH_PR9 = Path(__file__).resolve().parents[2] / "BENCH_pr9.json"

#: per-seed serving scenario: the 404 transients and 505 degrade runs
#: use the plain service; 606 drives join-b into the breaker.
SCENARIO_POLICIES = {
    404: None,
    505: None,
    606: ServicePolicy(breaker_threshold=2, breaker_cooldown=50.0),
}


def _submit_mix(service, n=8):
    names = ("q6", "join-b")
    for i in range(n):
        service.submit("chaos", names[i % len(names)], 0.4 * i)
    return n


def _serve_under_seed(seed):
    service = QueryService(policy=SCENARIO_POLICIES[seed])
    submitted = _submit_mix(service)
    with serving_chaos_plan(seed).install():
        report = service.serve()
    return report, submitted


def _fingerprint(report):
    return json.dumps(
        {
            "manifests": [q.manifest for q in report.served],
            "deadline": [q.manifest for q in report.deadline_exceeded],
            "failed": [q.manifest for q in report.failed],
            "shed": [s.describe() for s in report.shed],
            "rejections": [
                (r.request.request_id, str(r.error))
                for r in report.rejections
            ],
            "outcomes": report.outcome_counts(),
            "makespan": report.makespan,
            "breaker": report.breaker,
            "resilience": report.resilience,
        },
        sort_keys=True,
    )


class TestChaosDeterminism:
    @pytest.mark.parametrize("seed", SERVING_CHAOS_SEEDS)
    def test_same_seed_serves_bit_identically(self, seed):
        first, submitted = _serve_under_seed(seed)
        second, _ = _serve_under_seed(seed)
        assert _fingerprint(first) == _fingerprint(second)
        assert first.conservation(submitted)

    def test_chaos_seeds_produce_distinct_outcomes(self):
        reports = {
            seed: _serve_under_seed(seed)[0]
            for seed in SERVING_CHAOS_SEEDS
        }
        # 404: transient first-attempt failures, all recovered.
        assert reports[404].total_retries() > 0
        assert not reports[404].failed
        # 606: join-b fails every attempt; the breaker opens.
        assert reports[606].outcome_counts()["failed"] >= 1
        assert reports[606].breaker["join-b"]["opens_total"] >= 1
        # every scenario keeps the resilience audit trail.
        for report in reports.values():
            assert report.resilience is not None
            assert report.resilience["plan"] is not None


class TestDegradeScenario:
    def test_degraded_link_stretches_linked_queries_only(self):
        # warm the plan cache fault-free so the 505 DegradeLink rule
        # exercises the scheduler's capacity path, not solo pricing.
        service = QueryService()
        service.submit("warm", "join-a", 0.0)
        service.submit("warm", "q6", 0.0)
        service.serve()

        solo = {}
        service.submit("probe", "join-a", 0.0)
        report = service.serve()
        solo["join-a"] = report.served[0].latency
        service.submit("probe", "q6", 0.0)
        solo["q6"] = service.serve().served[0].latency

        service.submit("chaos", "join-a", 0.0)
        service.submit("chaos", "q6", 100.0)  # disjoint in time
        with serving_chaos_plan(505).install():
            degraded = service.serve()
        by_workload = {
            q.request.workload: q for q in degraded.served
        }
        # join-a's probe phase saturates the NVLink; halving the link
        # capacity must stretch it materially.
        assert (
            by_workload["join-a"].latency > 1.5 * solo["join-a"] - 1e-9
        )
        # q6 runs CPU-side with no link occupancy: unaffected.
        assert by_workload["q6"].latency == pytest.approx(solo["q6"])


class TestFaultFreeIdentity:
    def test_served_phases_match_pr9_baseline_bit_for_bit(self):
        baseline = json.loads(BENCH_PR9.read_text())
        reference = {
            run["kind"]: run
            for run in baseline["runs"]
            if run["kind"].startswith("serve[")
        }
        service = QueryService()
        for workload in ("join-b", "join-a", "q6"):
            service.submit("tenant-a", workload, 0.0)
            report = service.serve()
            manifest = report.served[0].manifest
            kind = f"serve[{workload}@ibm-ac922]"
            assert kind in reference
            # exact float equality: the resilience-aware path must not
            # perturb fault-free pricing by a single ULP.
            expected = reference[kind]["phases"]
            actual = manifest["phases"]
            assert [p["seconds"] for p in actual] == [
                p["seconds"] for p in expected
            ]
            assert [p["label"] for p in actual] == [
                p["label"] for p in expected
            ]

    def test_fault_free_serving_fields_are_inert(self):
        service = QueryService()
        service.submit("tenant-a", "q6", 0.0)
        report = service.serve()
        serving = report.served[0].manifest["serving"]
        assert serving["outcome"] == "finished"
        assert serving["deadline"] is None
        assert serving["cancelled_at"] is None
        assert serving["retries"] == 0
        assert serving["shed_reason"] is None
        assert serving["breaker_state"] is None
        assert report.served[0].manifest["resilience"] is None
        assert report.resilience is None
        assert report.breaker == {}

    def test_fault_free_rerun_is_bit_identical(self):
        def run():
            service = QueryService()
            _submit_mix(service)
            return service.serve()

        assert _fingerprint(run()) == _fingerprint(run())
