"""Shape assertions over the figure-reproduction benches.

These are the "does the reproduction hold" tests: who wins, by roughly
what factor, where crossovers fall.  They run the bench modules at a
small execution scale.
"""

import pytest

from repro.bench import (
    fig01_bandwidth,
    fig12_transfer_methods,
    fig13_data_locality,
    fig14_hashtable_locality,
    fig16_probe_scaling,
    fig17_build_scaling,
    fig18_build_probe_ratio,
    fig20_selectivity,
)

SCALE = 2.0**-14


@pytest.fixture(scope="module")
def fig12():
    return fig12_transfer_methods.run(scale=SCALE)


@pytest.fixture(scope="module")
def fig17():
    return fig17_build_scaling.run(scale=SCALE, tuple_millions=(512, 2048))


class TestFigure1:
    def test_nvlink_erases_memory_disadvantage(self):
        result = fig01_bandwidth.run()
        nvlink = result.value("nvlink2", "measured")
        memory = result.value("memory", "measured")
        pcie = result.value("pcie3", "measured")
        assert nvlink / memory > 0.8
        assert pcie / memory < 0.2


class TestFigure12:
    def test_coherence_and_zero_copy_fastest_on_nvlink(self, fig12):
        best = max(fig12.series("nvlink2"))
        assert fig12.value("coherence", "nvlink2") == pytest.approx(best, rel=0.01)
        assert fig12.value("zero_copy", "nvlink2") == pytest.approx(best, rel=0.02)

    def test_coherence_unsupported_on_pcie(self, fig12):
        with pytest.raises(KeyError):
            fig12.value("coherence", "pcie3")

    def test_um_underperforms_on_power9(self, fig12):
        # The paper's footnote: NVLink loses to PCI-e only for UM.
        for method in ("um_prefetch", "um_migration"):
            assert fig12.value(method, "nvlink2") < fig12.value(method, "pcie3")

    def test_every_other_method_faster_on_nvlink(self, fig12):
        for method in ("pageable_copy", "staged_copy", "dynamic_pinning",
                       "pinned_copy", "zero_copy"):
            assert fig12.value(method, "nvlink2") > fig12.value(method, "pcie3")

    def test_pinning_needed_for_peak_pcie(self, fig12):
        assert fig12.value("zero_copy", "pcie3") > 2 * fig12.value(
            "pageable_copy", "pcie3"
        )

    def test_within_25pct_of_paper(self, fig12):
        for row in fig12.rows:
            for series, value in row.values.items():
                paper = fig12.paper_value(row.label, series)
                if paper:
                    assert value == pytest.approx(paper, rel=0.25), (
                        row.label, series
                    )


class TestFigure13:
    def test_throughput_decreases_with_hops_for_a(self):
        result = fig13_data_locality.run(scale=SCALE)
        series = [result.value("A", loc) for loc in ("gpu", "cpu", "rcpu")]
        assert series[0] >= series[1] > series[2]

    def test_b_gpu_local_is_multiples_of_one_hop(self):
        result = fig13_data_locality.run(scale=SCALE)
        assert result.value("B", "gpu") / result.value("B", "cpu") > 3

    def test_c_is_flat(self):
        result = fig13_data_locality.run(scale=SCALE)
        values = [result.value("C", loc) for loc in ("gpu", "cpu", "rcpu", "rgpu")]
        assert max(values) / min(values) < 1.2


class TestFigure14:
    def test_one_hop_to_table_costs_most_of_throughput(self):
        result = fig14_hashtable_locality.run(scale=SCALE)
        for workload in ("A", "B"):
            drop = 1 - result.value(workload, "cpu") / result.value(workload, "gpu")
            assert drop > 0.7  # paper: 75-85%

    def test_b_gets_no_l2_relief_remotely(self):
        result = fig14_hashtable_locality.run(scale=SCALE)
        # B's table is cache-sized yet remote throughput matches A's.
        assert result.value("B", "cpu") == pytest.approx(
            result.value("A", "cpu"), rel=0.25
        )


class TestFigure16:
    def test_nvlink_beats_cpu_and_pcie_everywhere(self):
        result = fig16_probe_scaling.run(
            scale=2.0**-14, probe_millions=(1024, 8192)
        )
        for row in result.rows:
            assert row.values["nvlink2"] > row.values["pcie3"]
            assert row.values["nvlink2"] > row.values["cpu-pra"]

    def test_nvlink_throughput_grows_with_probe_side(self):
        result = fig16_probe_scaling.run(
            scale=2.0**-14, probe_millions=(1024, 8192)
        )
        assert result.rows[-1].values["nvlink2"] > result.rows[0].values["nvlink2"]

    def test_pcie_flat_and_cannot_beat_cpu_by_much(self):
        result = fig16_probe_scaling.run(
            scale=2.0**-14, probe_millions=(1024, 8192)
        )
        pcie = result.series("pcie3")
        assert max(pcie) / min(pcie) < 1.05


class TestFigure17:
    def test_pcie_rides_over_a_cliff(self, fig17):
        before = fig17.value("512M", "pcie3")
        after = fig17.value("2048M", "pcie3")
        assert after / before < 0.05  # paper: -97%

    def test_nvlink_degrades_gracefully(self, fig17):
        before = fig17.value("512M", "nvlink2")
        after = fig17.value("2048M", "nvlink2")
        assert 0.1 < after / before < 0.45  # paper: -85%

    def test_nvlink_stays_8_to_18x_above_pcie_out_of_core(self, fig17):
        ratio = fig17.value("2048M", "nvlink2") / fig17.value("2048M", "pcie3")
        assert 8 < ratio < 30

    def test_nvlink_within_reach_of_cpu_out_of_core(self, fig17):
        nv = fig17.value("2048M", "nvlink2")
        cpu = fig17.value("2048M", "cpu-pra")
        assert nv == pytest.approx(cpu, rel=0.25)  # paper: within 13%

    def test_hybrid_adds_1_to_2x(self, fig17):
        hybrid = fig17.value("2048M", "nvlink2-hybrid")
        plain = fig17.value("2048M", "nvlink2")
        assert 1.0 < hybrid / plain < 2.5


class TestFigure18:
    def test_build_share_shrinks_with_ratio(self):
        result = fig18_build_probe_ratio.run(scale=2.0**-13, ratios=(1, 4, 16))
        shares = result.series("build_pct")
        assert shares[0] > shares[1] > shares[2]
        assert shares[0] == pytest.approx(71, abs=6)
        assert shares[2] == pytest.approx(13, abs=5)

    def test_throughput_rises_with_ratio(self):
        result = fig18_build_probe_ratio.run(scale=2.0**-13, ratios=(1, 4, 16))
        values = result.series("throughput")
        assert values == sorted(values)


class TestFigure20:
    def test_throughput_decreases_with_selectivity(self):
        result = fig20_selectivity.run(
            scale=2.0**-14, selectivities=(0.0, 0.5, 1.0)
        )
        for series in ("nvlink2-gpu-ht", "cpu"):
            values = result.series(series)
            assert values[0] >= values[1] >= values[2]

    def test_value_line_load_matches_81_5(self):
        result = fig20_selectivity.run(scale=2.0**-14, selectivities=(0.1,))
        assert result.value("sel=0.1", "value_lines_loaded_pct") == pytest.approx(
            81.5, abs=1.0
        )
