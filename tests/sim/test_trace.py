"""Execution timelines."""

import pytest

from repro.obs.trace import Span, Timeline


class TestSpan:
    def test_duration(self):
        span = Span(worker="gpu0", label="probe", start=1.0, end=3.0)
        assert span.duration == 2.0

    def test_inverted_span_rejected(self):
        with pytest.raises(ValueError):
            Span(worker="x", label="y", start=2.0, end=1.0)


class TestTimeline:
    @pytest.fixture
    def timeline(self):
        t = Timeline()
        t.record("cpu0", "probe", 0.0, 2.0, units=100)
        t.record("gpu0", "probe", 0.0, 1.0, units=400)
        t.record("gpu0", "probe", 1.0, 1.5, units=200)
        return t

    def test_by_worker(self, timeline):
        by = timeline.by_worker()
        assert len(by["cpu0"]) == 1
        assert len(by["gpu0"]) == 2

    def test_busy_time(self, timeline):
        assert timeline.busy_time("gpu0") == pytest.approx(1.5)
        assert timeline.busy_time("cpu0") == pytest.approx(2.0)

    def test_units_processed(self, timeline):
        assert timeline.units_processed("gpu0") == 600
        assert timeline.units_processed("nobody") == 0

    def test_makespan(self, timeline):
        assert timeline.makespan() == pytest.approx(2.0)

    def test_idle_tail_measures_skew(self, timeline):
        # gpu0 finished at 1.5, the join finished at 2.0.
        assert timeline.idle_tail("gpu0") == pytest.approx(0.5)
        assert timeline.idle_tail("cpu0") == pytest.approx(0.0)

    def test_empty_timeline(self):
        t = Timeline()
        assert t.makespan() == 0.0
        assert t.idle_tail("anyone") == 0.0
