"""Shared-resource throughput solver (max-min fair waterfilling)."""

import pytest

from repro.sim.resources import solo_rate, solve_concurrent_rates


class TestSoloRate:
    def test_bottleneck_resource_determines_rate(self):
        assert solo_rate({"a": 0.5, "b": 0.25}) == pytest.approx(2.0)

    def test_no_demands_is_infinite(self):
        assert solo_rate({}) == float("inf")

    def test_zero_occupancy_is_infinite(self):
        assert solo_rate({"a": 0.0}) == float("inf")


class TestSolver:
    def test_disjoint_workers_keep_solo_rates(self):
        rates = solve_concurrent_rates(
            {"w1": {"a": 0.5}, "w2": {"b": 0.25}}
        )
        assert rates["w1"] == pytest.approx(2.0)
        assert rates["w2"] == pytest.approx(4.0)

    def test_shared_resource_splits_capacity(self):
        # Two identical workers on one resource: each gets half.
        rates = solve_concurrent_rates(
            {"w1": {"shared": 1.0}, "w2": {"shared": 1.0}}
        )
        assert rates["w1"] == pytest.approx(0.5)
        assert rates["w2"] == pytest.approx(0.5)

    def test_total_capacity_is_respected(self):
        demands = {
            "w1": {"shared": 0.4, "own1": 0.2},
            "w2": {"shared": 0.1, "own2": 0.5},
        }
        rates = solve_concurrent_rates(demands)
        load = sum(
            rates[w] * demands[w].get("shared", 0.0) for w in demands
        )
        assert load <= 1.0 + 1e-6

    def test_asymmetric_demands_scale_proportionally(self):
        # w1 consumes twice the shared capacity per unit.
        rates = solve_concurrent_rates(
            {"w1": {"shared": 2.0}, "w2": {"shared": 1.0}}
        )
        # Proportional scaling preserves the solo-rate ratio (1:2).
        assert rates["w2"] / rates["w1"] == pytest.approx(2.0)
        assert 2 * rates["w1"] + rates["w2"] == pytest.approx(1.0)

    def test_uncontended_worker_unaffected(self):
        rates = solve_concurrent_rates(
            {
                "fast": {"own": 0.001},
                "a": {"shared": 1.0},
                "b": {"shared": 1.0},
            }
        )
        assert rates["fast"] == pytest.approx(1000.0)

    def test_infinite_workers_pass_through(self):
        rates = solve_concurrent_rates({"free": {}})
        assert rates["free"] == float("inf")

    def test_three_way_contention(self):
        rates = solve_concurrent_rates(
            {f"w{i}": {"shared": 1.0} for i in range(3)}
        )
        for rate in rates.values():
            assert rate == pytest.approx(1.0 / 3.0)

    def test_feasible_input_unchanged(self):
        demands = {"w1": {"a": 0.5}, "w2": {"a": 0.2}}
        rates = solve_concurrent_rates(demands)
        # w1 solo 2.0, w2 solo 5.0 -> load = 2.0*0.5 + 5.0*0.2 = 2.0 > 1
        # so this IS contended; check the solved rates are feasible.
        load = rates["w1"] * 0.5 + rates["w2"] * 0.2
        assert load <= 1.0 + 1e-6
