"""Shared-resource throughput solver (max-min fair waterfilling)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.resources import solo_rate, solve_concurrent_rates


class TestSoloRate:
    def test_bottleneck_resource_determines_rate(self):
        assert solo_rate({"a": 0.5, "b": 0.25}) == pytest.approx(2.0)

    def test_no_demands_is_infinite(self):
        assert solo_rate({}) == float("inf")

    def test_zero_occupancy_is_infinite(self):
        assert solo_rate({"a": 0.0}) == float("inf")


class TestSolver:
    def test_disjoint_workers_keep_solo_rates(self):
        rates = solve_concurrent_rates(
            {"w1": {"a": 0.5}, "w2": {"b": 0.25}}
        )
        assert rates["w1"] == pytest.approx(2.0)
        assert rates["w2"] == pytest.approx(4.0)

    def test_shared_resource_splits_capacity(self):
        # Two identical workers on one resource: each gets half.
        rates = solve_concurrent_rates(
            {"w1": {"shared": 1.0}, "w2": {"shared": 1.0}}
        )
        assert rates["w1"] == pytest.approx(0.5)
        assert rates["w2"] == pytest.approx(0.5)

    def test_total_capacity_is_respected(self):
        demands = {
            "w1": {"shared": 0.4, "own1": 0.2},
            "w2": {"shared": 0.1, "own2": 0.5},
        }
        rates = solve_concurrent_rates(demands)
        load = sum(
            rates[w] * demands[w].get("shared", 0.0) for w in demands
        )
        assert load <= 1.0 + 1e-6

    def test_asymmetric_demands_scale_proportionally(self):
        # w1 consumes twice the shared capacity per unit.
        rates = solve_concurrent_rates(
            {"w1": {"shared": 2.0}, "w2": {"shared": 1.0}}
        )
        # Proportional scaling preserves the solo-rate ratio (1:2).
        assert rates["w2"] / rates["w1"] == pytest.approx(2.0)
        assert 2 * rates["w1"] + rates["w2"] == pytest.approx(1.0)

    def test_uncontended_worker_unaffected(self):
        rates = solve_concurrent_rates(
            {
                "fast": {"own": 0.001},
                "a": {"shared": 1.0},
                "b": {"shared": 1.0},
            }
        )
        assert rates["fast"] == pytest.approx(1000.0)

    def test_infinite_workers_pass_through(self):
        rates = solve_concurrent_rates({"free": {}})
        assert rates["free"] == float("inf")

    def test_three_way_contention(self):
        rates = solve_concurrent_rates(
            {f"w{i}": {"shared": 1.0} for i in range(3)}
        )
        for rate in rates.values():
            assert rate == pytest.approx(1.0 / 3.0)

    def test_feasible_input_unchanged(self):
        demands = {"w1": {"a": 0.5}, "w2": {"a": 0.2}}
        rates = solve_concurrent_rates(demands)
        # w1 solo 2.0, w2 solo 5.0 -> load = 2.0*0.5 + 5.0*0.2 = 2.0 > 1
        # so this IS contended; check the solved rates are feasible.
        load = rates["w1"] * 0.5 + rates["w2"] * 0.2
        assert load <= 1.0 + 1e-6


class _StickyOccupancy(float):
    """An occupancy whose products stay pinned just above feasibility.

    Simulates the float-rounding pathology the oscillation guard exists
    for: no matter how far the solver scales rates down, the recomputed
    load lands at the same value a few ULPs above 1.0.
    """

    def __mul__(self, other):
        return 1.0 + 2e-16

    __rmul__ = __mul__


class TestSolverDiagnostics:
    """Regression: non-convergence raises a typed, diagnostic error."""

    def test_solver_error_names_worst_resource_and_residual(self):
        from repro.sim.resources import SolverError

        # Two disjoint contended resources but only one iteration: 'a'
        # is resolved first, leaving 'b' at 2x oversubscription.
        demands = {
            "w1": {"a": 1.0},
            "w2": {"a": 1.0},
            "w3": {"b": 1.0},
            "w4": {"b": 1.0},
        }
        with pytest.raises(SolverError) as excinfo:
            solve_concurrent_rates(demands, max_iterations=1)
        error = excinfo.value
        assert error.worst_resource == "b"
        assert error.residual_load == pytest.approx(2.0)
        assert error.iterations == 1
        assert "b" in str(error)
        assert "2" in str(error)

    def test_solver_error_is_a_runtime_error(self):
        from repro.sim.resources import SolverError

        assert issubclass(SolverError, RuntimeError)

    def test_enough_iterations_converge_without_error(self):
        demands = {
            "w1": {"a": 1.0},
            "w2": {"a": 1.0},
            "w3": {"b": 1.0},
            "w4": {"b": 1.0},
        }
        rates = solve_concurrent_rates(demands)
        for worker in demands:
            assert rates[worker] == pytest.approx(0.5)


class TestOscillationGuard:
    """Regression: a load pinned above 1+tolerance by rounding returns
    instead of spinning to the iteration cap (pre-fix: RuntimeError)."""

    def test_pinned_load_returns_instead_of_raising(self):
        demands = {"w1": {"a": _StickyOccupancy(1.0)}}
        rates = solve_concurrent_rates(demands, tolerance=0.0)
        assert rates["w1"] > 0

    def test_pinned_load_feasible_within_float_noise(self):
        demands = {"w1": {"a": _StickyOccupancy(1.0)}}
        rates = solve_concurrent_rates(demands, tolerance=0.0)
        load = demands["w1"]["a"] * rates["w1"]
        assert load <= 1.0 + 1e-12


class TestFeasibilityProperty:
    """Hypothesis: any returned rate vector is feasible — every
    resource's total load stays within 1 + tolerance."""

    @given(
        demands=st.dictionaries(
            keys=st.sampled_from(["w1", "w2", "w3", "w4", "w5"]),
            values=st.dictionaries(
                keys=st.sampled_from(["a", "b", "c", "d"]),
                values=st.floats(
                    1e-6, 1e6, allow_nan=False, allow_infinity=False
                ),
                min_size=1,
                max_size=4,
            ),
            min_size=1,
            max_size=5,
        ),
        tolerance=st.sampled_from([1e-9, 1e-6, 0.0]),
    )
    @settings(max_examples=120, deadline=None)
    def test_returned_rates_are_feasible(self, demands, tolerance):
        rates = solve_concurrent_rates(demands, tolerance=tolerance)
        loads = {}
        for worker, vector in demands.items():
            for resource, occupancy in vector.items():
                loads[resource] = loads.get(resource, 0.0) + (
                    occupancy * rates[worker]
                )
        for resource, load in loads.items():
            assert load <= 1.0 + tolerance + 1e-12, (
                f"{resource} oversubscribed: {load}"
            )

    @given(
        demands=st.dictionaries(
            keys=st.sampled_from(["w1", "w2", "w3"]),
            values=st.dictionaries(
                keys=st.sampled_from(["a", "b"]),
                values=st.floats(
                    1e-3, 1e3, allow_nan=False, allow_infinity=False
                ),
                min_size=1,
                max_size=2,
            ),
            min_size=1,
            max_size=3,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_rates_never_exceed_solo_rates(self, demands):
        rates = solve_concurrent_rates(demands)
        for worker, vector in demands.items():
            assert rates[worker] <= solo_rate(vector) * (1.0 + 1e-12)
