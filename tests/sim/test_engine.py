"""Discrete-event simulator."""

import pytest

from repro.sim.engine import Simulator, SimulationError


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, lambda s: fired.append("b"))
        sim.schedule(1.0, lambda s: fired.append("a"))
        sim.run()
        assert fired == ["a", "b"]

    def test_ties_resolve_in_scheduling_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda s: fired.append(1))
        sim.schedule(1.0, lambda s: fired.append(2))
        sim.run()
        assert fired == [1, 2]

    def test_clock_advances(self):
        sim = Simulator()
        times = []
        sim.schedule(0.5, lambda s: times.append(s.now))
        sim.schedule(1.5, lambda s: times.append(s.now))
        end = sim.run()
        assert times == [0.5, 1.5]
        assert end == 1.5

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda s: None)

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(3.0, lambda s: fired.append(s.now))
        sim.run()
        assert fired == [3.0]


class TestCascades:
    def test_callbacks_can_schedule_followups(self):
        sim = Simulator()
        hops = []

        def hop(s):
            hops.append(s.now)
            if len(hops) < 5:
                s.schedule(1.0, hop)

        sim.schedule(0.0, hop)
        sim.run()
        assert hops == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_run_until_stops_early(self):
        sim = Simulator()
        fired = []

        def tick(s):
            fired.append(s.now)
            s.schedule(1.0, tick)

        sim.schedule(0.0, tick)
        sim.run(until=2.5)
        assert fired == [0.0, 1.0, 2.0]
        assert sim.now == 2.5
        assert sim.pending == 1

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False

    def test_run_returns_final_time_when_empty(self):
        sim = Simulator()
        assert sim.run() == 0.0
