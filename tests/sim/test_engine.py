"""Discrete-event simulator."""

import pytest

from repro.sim.engine import Simulator, SimulationError


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, lambda s: fired.append("b"))
        sim.schedule(1.0, lambda s: fired.append("a"))
        sim.run()
        assert fired == ["a", "b"]

    def test_ties_resolve_in_scheduling_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda s: fired.append(1))
        sim.schedule(1.0, lambda s: fired.append(2))
        sim.run()
        assert fired == [1, 2]

    def test_clock_advances(self):
        sim = Simulator()
        times = []
        sim.schedule(0.5, lambda s: times.append(s.now))
        sim.schedule(1.5, lambda s: times.append(s.now))
        end = sim.run()
        assert times == [0.5, 1.5]
        assert end == 1.5

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda s: None)

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(3.0, lambda s: fired.append(s.now))
        sim.run()
        assert fired == [3.0]


class TestCascades:
    def test_callbacks_can_schedule_followups(self):
        sim = Simulator()
        hops = []

        def hop(s):
            hops.append(s.now)
            if len(hops) < 5:
                s.schedule(1.0, hop)

        sim.schedule(0.0, hop)
        sim.run()
        assert hops == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_run_until_stops_early(self):
        sim = Simulator()
        fired = []

        def tick(s):
            fired.append(s.now)
            s.schedule(1.0, tick)

        sim.schedule(0.0, tick)
        sim.run(until=2.5)
        assert fired == [0.0, 1.0, 2.0]
        assert sim.now == 2.5
        assert sim.pending == 1

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False

    def test_run_returns_final_time_when_empty(self):
        sim = Simulator()
        assert sim.run() == 0.0


class TestScheduleAtClockSlop:
    """Regression: absolute-time scheduling vs float accumulation.

    The serving scheduler computes arrival timestamps outside the event
    loop (cumulative sums of inter-arrival gaps); float accumulation can
    leave a target a few ULPs behind the clock even though it is
    logically "now or later".
    """

    def test_epsilon_negative_delta_clamps_to_now(self):
        sim = Simulator()
        fired = []

        def at_one(s):
            # sum of ten 0.1 gaps accumulates to 0.9999999999999999,
            # a hair behind the clock's exact 1.0.
            target = sum([0.1] * 10)
            assert target < 1.0
            s.schedule_at(target, lambda s2: fired.append(s2.now))

        sim.schedule(1.0, at_one)
        sim.run()
        assert fired == [1.0]

    def test_epsilon_scales_with_clock_magnitude(self):
        sim = Simulator()
        fired = []

        def late(s):
            # At now=1e6 a few-ULP error is ~1e-10 absolute; still slop.
            s.schedule_at(1e6 * (1.0 - 2e-16), lambda s2: fired.append(s2.now))

        sim.schedule(1e6, late)
        sim.run()
        assert fired == [1e6]

    def test_genuinely_past_time_still_fatal(self):
        sim = Simulator()
        sim.schedule(1.0, lambda s: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda s: None)

    def test_past_beyond_epsilon_fatal_inside_callback(self):
        sim = Simulator()
        errors = []

        def at_one(s):
            try:
                s.schedule_at(1.0 - 1e-6, lambda s2: None)
            except SimulationError as exc:
                errors.append(exc)

        sim.schedule(1.0, at_one)
        sim.run()
        assert len(errors) == 1


class TestRunUntilClockSemantics:
    """Regression: run(until=T) leaves the clock at T on both paths."""

    def test_queue_drains_early_clock_still_reaches_until(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda s: fired.append(s.now))
        end = sim.run(until=5.0)
        assert fired == [1.0]
        assert end == 5.0
        assert sim.now == 5.0

    def test_pending_event_beyond_until_clock_stops_at_until(self):
        sim = Simulator()
        sim.schedule(10.0, lambda s: None)
        end = sim.run(until=2.5)
        assert end == 2.5
        assert sim.now == 2.5
        assert sim.pending == 1

    def test_empty_queue_run_until_advances_clock(self):
        sim = Simulator()
        assert sim.run(until=3.0) == 3.0
        assert sim.now == 3.0

    def test_until_in_the_past_never_rewinds_clock(self):
        sim = Simulator()
        sim.schedule(2.0, lambda s: None)
        sim.run()
        assert sim.now == 2.0
        assert sim.run(until=1.0) == 2.0
        assert sim.now == 2.0

    def test_event_exactly_at_until_fires(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.5, lambda s: fired.append(s.now))
        assert sim.run(until=2.5) == 2.5
        assert fired == [2.5]


class TestCancellableEvents:
    """Events can be revoked before they fire (serving deadlines)."""

    def test_cancelled_event_never_fires(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, lambda s: fired.append("dead"))
        sim.schedule(2.0, lambda s: fired.append("live"))
        assert sim.cancel_event(event) is True
        sim.run()
        assert fired == ["live"]

    def test_cancelled_event_does_not_advance_the_clock(self):
        sim = Simulator()
        event = sim.schedule(10.0, lambda s: None)
        sim.schedule(1.0, lambda s: None)
        sim.cancel_event(event)
        assert sim.run() == 1.0

    def test_cancel_after_fire_returns_false(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda s: None)
        sim.run()
        assert sim.cancel_event(event) is False

    def test_double_cancel_returns_false(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda s: None)
        assert sim.cancel_event(event) is True
        assert sim.cancel_event(event) is False

    def test_pending_excludes_cancelled_events(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda s: None)
        sim.schedule(2.0, lambda s: None)
        assert sim.pending == 2
        sim.cancel_event(event)
        assert sim.pending == 1

    def test_cancel_from_within_a_callback(self):
        sim = Simulator()
        fired = []
        doomed = sim.schedule(5.0, lambda s: fired.append("doomed"))
        sim.schedule(1.0, lambda s: s.cancel_event(doomed))
        sim.run()
        assert fired == []
        assert sim.now == 1.0

    def test_cancelled_head_does_not_mask_later_event_under_until(self):
        # A cancelled event before `until` must not let run(until=T)
        # fire a live event scheduled beyond T.
        sim = Simulator()
        fired = []
        dead = sim.schedule(1.0, lambda s: fired.append("dead"))
        sim.schedule(10.0, lambda s: fired.append("late"))
        sim.cancel_event(dead)
        assert sim.run(until=2.0) == 2.0
        assert fired == []
        assert sim.pending == 1

    def test_step_skips_cancelled_events(self):
        sim = Simulator()
        fired = []
        dead = sim.schedule(1.0, lambda s: fired.append("dead"))
        sim.schedule(2.0, lambda s: fired.append("live"))
        sim.cancel_event(dead)
        assert sim.step() is True
        assert fired == ["live"]
        assert sim.step() is False
