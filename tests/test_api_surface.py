"""The public API surface: exports resolve, docstrings exist."""

import importlib
import inspect
import pkgutil

import pytest

import repro
from repro import api


class TestExports:
    def test_every_api_export_resolves(self):
        for name in api.__all__:
            assert getattr(api, name) is not None, name

    def test_lazy_loader_serves_all_api_names(self):
        for name in api.__all__:
            assert getattr(repro, name) is getattr(api, name), name

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError, match="warp_core"):
            repro.warp_core

    def test_key_classes_exported(self):
        for name in (
            "NoPartitioningJoin",
            "RadixJoin",
            "CoopJoin",
            "MultiGpuJoin",
            "StarJoin",
            "TpchQ6",
            "Catalog",
            "MorselDispatcher",
            "ibm_ac922",
            "intel_xeon_v100",
            "workload_a",
            "lineitem_q6",
        ):
            assert name in api.__all__, name


def _iter_modules():
    package = importlib.import_module("repro")
    for module_info in pkgutil.walk_packages(
        package.__path__, prefix="repro."
    ):
        yield module_info.name


class TestDocumentation:
    def test_every_module_has_a_docstring(self):
        undocumented = []
        for name in _iter_modules():
            module = importlib.import_module(name)
            if not (module.__doc__ or "").strip():
                undocumented.append(name)
        assert not undocumented, undocumented

    def test_public_classes_documented(self):
        undocumented = []
        for name in api.__all__:
            obj = getattr(api, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not (obj.__doc__ or "").strip():
                    undocumented.append(name)
        assert not undocumented, undocumented

    def test_public_methods_documented(self):
        """Every public method of the exported classes has a docstring."""
        undocumented = []
        for name in api.__all__:
            obj = getattr(api, name)
            if not inspect.isclass(obj):
                continue
            for attr_name, attr in vars(obj).items():
                if attr_name.startswith("_"):
                    continue
                if not inspect.isfunction(attr):
                    continue
                # getdoc follows the MRO: overriding an already-
                # documented base method (e.g. Operator.schema) is fine.
                if not (inspect.getdoc(getattr(obj, attr_name)) or "").strip():
                    undocumented.append(f"{name}.{attr_name}")
        assert not undocumented, undocumented
