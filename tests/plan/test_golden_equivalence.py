"""Golden equivalence: plan-compiled operators == pre-refactor seed.

``golden_reference.json`` was recorded by running the case builders in
:mod:`tests.plan.golden_cases` against the seed code, *before* the
operators were refactored onto the phase-plan IR.  Re-running the same
builders now must reproduce every functional integer exactly and every
cost float to numerical equality — the refactor moved pricing into the
executor without changing a single number.
"""

import json
import math
import os

import pytest

from tests.plan.golden_cases import CASES, flatten

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden_reference.json")

with open(GOLDEN_PATH) as fh:
    GOLDEN = json.load(fh)


def test_every_case_has_a_golden():
    assert sorted(GOLDEN) == sorted(CASES)


@pytest.mark.parametrize("name", sorted(CASES))
def test_case_matches_golden(name):
    got = dict(flatten(CASES[name]()))
    want = dict(flatten(GOLDEN[name]))
    assert got.keys() == want.keys(), sorted(
        got.keys() ^ want.keys()
    )
    mismatches = []
    for key, expected in want.items():
        actual = got[key]
        if isinstance(expected, float):
            if not math.isclose(
                actual, expected, rel_tol=1e-9, abs_tol=1e-15
            ):
                mismatches.append((key, expected, actual))
        elif actual != expected:
            mismatches.append((key, expected, actual))
    assert mismatches == []
