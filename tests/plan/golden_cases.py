"""Deterministic operator cases shared by the golden recorder and tests.

Each case builds its operator from scratch (fresh Observability, fresh
machine), runs it on a seeded workload, and reduces the result to a
JSON-ready summary: functional integers exactly, phase seconds and
occupancy vectors as floats.  The recorder ran these against the
pre-refactor seed code and committed ``golden_reference.json``; the
equivalence test re-runs them against the plan-compiled operators and
asserts the summaries match.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List

import numpy as np

from repro.core.join.coop import CoopJoin
from repro.core.join.multigpu import MultiGpuJoin
from repro.core.join.multiway import Dimension, StarJoin
from repro.core.join.nopa import NoPartitioningJoin
from repro.core.join.radix import RadixJoin
from repro.core.ops.q6 import TpchQ6
from repro.core.ops.scan import Predicate, SelectionScan
from repro.data.relation import Relation
from repro.hardware.topology import ibm_ac922, intel_xeon_v100
from repro.workloads.builders import workload_a, workload_b
from repro.workloads.tpch import lineitem_q6

#: executed fraction of the modeled cardinalities (matches tests).
SCALE = 2.0**-14


def _cost(cost) -> Dict[str, Any]:
    return {
        "seconds": cost.seconds,
        "bottleneck": cost.bottleneck,
        "occupancy": {k: v for k, v in sorted(cost.occupancy.items())},
    }


def _nopa(
    machine,
    workload,
    processor: str,
    placement: str = "gpu",
    transfer_method: str = "coherence",
) -> Dict[str, Any]:
    join = NoPartitioningJoin(
        machine,
        hash_table_placement=placement,
        transfer_method=transfer_method,
    )
    result = join.run(workload.r, workload.s, processor=processor)
    return {
        "matches": result.matches,
        "aggregate": result.aggregate,
        "modeled_tuples": result.modeled_tuples,
        "build": _cost(result.build_cost),
        "probe": _cost(result.probe_cost),
        "runtime": result.runtime,
    }


def nopa_gpu_coherence() -> Dict[str, Any]:
    return _nopa(ibm_ac922(), workload_a(scale=SCALE), "gpu0")


def nopa_cpu() -> Dict[str, Any]:
    return _nopa(ibm_ac922(), workload_a(scale=SCALE), "cpu0")


def nopa_hybrid() -> Dict[str, Any]:
    return _nopa(
        ibm_ac922(), workload_b(scale=SCALE), "gpu0", placement="hybrid"
    )


def nopa_push_pinned() -> Dict[str, Any]:
    """Push method: exercises the chunked pipeline-overlap arithmetic."""
    wl = workload_a(scale=SCALE).placed_for("pinned_copy")
    return _nopa(
        ibm_ac922(), wl, "gpu0", placement="gpu", transfer_method="pinned_copy"
    )


def nopa_intel_zero_copy() -> Dict[str, Any]:
    wl = workload_a(scale=SCALE).placed_for("zero_copy")
    return _nopa(
        intel_xeon_v100(), wl, "gpu0", placement="gpu",
        transfer_method="zero_copy",
    )


def _coop(strategy: str) -> Dict[str, Any]:
    join = CoopJoin(ibm_ac922(), strategy=strategy)
    wl = workload_a(scale=SCALE)
    result = join.run(wl.r, wl.s, workers=("cpu0", "gpu0"))
    return {
        "matches": result.matches,
        "aggregate": result.aggregate,
        "build_seconds": result.build_seconds,
        "probe_seconds": result.probe_seconds,
        "build": _cost(result.build_cost),
        "probe": _cost(result.probe_cost),
        "worker_rates": {k: v for k, v in sorted(result.worker_rates.items())},
        "worker_shares": {
            k: v for k, v in sorted(result.worker_shares.items())
        },
    }


def coop_het() -> Dict[str, Any]:
    return _coop("het")


def coop_gpu_het() -> Dict[str, Any]:
    return _coop("gpu+het")


def radix_cpu() -> Dict[str, Any]:
    join = RadixJoin(ibm_ac922())
    wl = workload_a(scale=SCALE)
    result = join.run(wl.r, wl.s, processor="cpu0")
    return {
        "matches": result.matches,
        "aggregate": result.aggregate,
        "partition": _cost(result.partition_cost),
        "join": _cost(result.join_cost),
        "runtime": result.runtime,
    }


def _star_inputs():
    rng = np.random.default_rng(1234)
    dims = []
    fact: Dict[str, np.ndarray] = {}
    fact_rows = 4096
    for i, dim_rows in enumerate((512, 256)):
        keys = rng.permutation(dim_rows).astype(np.int64)
        payload = (keys * 3 + 1).astype(np.int64)
        rel = Relation(
            name=f"D{i}",
            key=keys,
            payload=payload,
            modeled_tuples=dim_rows * 64,
        )
        fact_key = f"d{i}_key"
        # ~90% of fact keys hit the dimension; misses draw from a
        # disjoint domain so survival fractions are non-trivial.
        hit = rng.random(fact_rows) < 0.9
        col = rng.integers(0, dim_rows, size=fact_rows)
        col[~hit] += dim_rows
        fact[fact_key] = col.astype(np.int64)
        dims.append(Dimension(relation=rel, fact_key=fact_key))
    measure = rng.integers(0, 1000, size=fact_rows).astype(np.int64)
    return fact, dims, measure, fact_rows * 64


def star_join() -> Dict[str, Any]:
    fact, dims, measure, modeled_fact = _star_inputs()
    join = StarJoin(ibm_ac922())
    result = join.run(
        fact,
        dims,
        measure=measure,
        workers=("cpu0", "gpu0"),
        modeled_fact=modeled_fact,
    )
    return {
        "survivors": result.survivors,
        "aggregate": result.aggregate,
        "build_seconds": result.build_seconds,
        "broadcast_seconds": result.broadcast_seconds,
        "probe_seconds": result.probe_seconds,
        "builder_of": dict(sorted(result.builder_of.items())),
        "modeled_tuples": result.modeled_tuples,
    }


def _multigpu(placement: str) -> Dict[str, Any]:
    join = MultiGpuJoin(ibm_ac922(), placement=placement)
    wl = workload_a(scale=SCALE)
    result = join.run(wl.r, wl.s)
    return {
        "matches": result.matches,
        "aggregate": result.aggregate,
        "build_seconds": result.build_seconds,
        "probe_seconds": result.probe_seconds,
        "gpu_rates": {k: v for k, v in sorted(result.gpu_rates.items())},
        "table_bytes_per_gpu": dict(
            sorted(result.table_bytes_per_gpu.items())
        ),
    }


def multigpu_replicated() -> Dict[str, Any]:
    return _multigpu("replicated")


def multigpu_interleaved() -> Dict[str, Any]:
    return _multigpu("interleaved")


def _q6(variant: str, processor: str) -> Dict[str, Any]:
    wl = lineitem_q6(scale_factor=1.0, scale=2.0**-9)
    op = TpchQ6(ibm_ac922(), variant=variant)
    result = op.run(wl, processor=processor)
    return {
        "revenue": result.revenue,
        "qualifying_rows": result.qualifying_rows,
        "cost": _cost(result.cost),
        "column_line_fractions": list(result.column_line_fractions),
    }


def q6_branching_gpu() -> Dict[str, Any]:
    return _q6("branching", "gpu0")


def q6_predicated_gpu() -> Dict[str, Any]:
    return _q6("predicated", "gpu0")


def q6_predicated_cpu() -> Dict[str, Any]:
    return _q6("predicated", "cpu0")


def scan_branching_gpu() -> Dict[str, Any]:
    rng = np.random.default_rng(99)
    n = 8192
    columns = {
        "a": np.sort(rng.integers(0, 1000, size=n)).astype(np.int32),
        "b": rng.integers(0, 100, size=n).astype(np.int32),
        "v": rng.random(n).astype(np.float32),
    }
    scan = SelectionScan(
        ibm_ac922(),
        predicates=[
            Predicate("a", lambda col: (col >= 100) & (col < 300), "a-range"),
            Predicate("b", lambda col: col < 10, "b-lt"),
        ],
        aggregate_columns=["v"],
        aggregate=lambda cols: float(cols["v"].sum()),
        variant="branching",
    )
    result = scan.run(columns, processor="gpu0", modeled_rows=n * 128)
    return {
        "aggregate": result.aggregate,
        "qualifying_rows": result.qualifying_rows,
        "cost": _cost(result.cost),
        "column_line_fractions": list(result.column_line_fractions),
    }


#: name -> builder; iteration order is the recording order.
CASES: Dict[str, Callable[[], Dict[str, Any]]] = {
    "nopa_gpu_coherence": nopa_gpu_coherence,
    "nopa_cpu": nopa_cpu,
    "nopa_hybrid": nopa_hybrid,
    "nopa_push_pinned": nopa_push_pinned,
    "nopa_intel_zero_copy": nopa_intel_zero_copy,
    "coop_het": coop_het,
    "coop_gpu_het": coop_gpu_het,
    "radix_cpu": radix_cpu,
    "star_join": star_join,
    "multigpu_replicated": multigpu_replicated,
    "multigpu_interleaved": multigpu_interleaved,
    "q6_branching_gpu": q6_branching_gpu,
    "q6_predicated_gpu": q6_predicated_gpu,
    "q6_predicated_cpu": q6_predicated_cpu,
    "scan_branching_gpu": scan_branching_gpu,
}


def build_all() -> Dict[str, Dict[str, Any]]:
    """Run every case and return {case name: summary}."""
    return {name: case() for name, case in CASES.items()}


def flatten(summary: Any, prefix: str = "") -> List:
    """(path, value) pairs for leaf-by-leaf comparison with tolerances."""
    if isinstance(summary, dict):
        out: List = []
        for key, value in summary.items():
            out.extend(flatten(value, f"{prefix}.{key}" if prefix else key))
        return out
    if isinstance(summary, list):
        out = []
        for i, value in enumerate(summary):
            out.extend(flatten(value, f"{prefix}[{i}]"))
        return out
    return [(prefix, summary)]
