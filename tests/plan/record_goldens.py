"""Record golden reference summaries into ``golden_reference.json``.

Run from the repo root against the code revision whose behavior should
become the reference (the recording for this file was made from the
pre-refactor seed, *before* operators were compiled to plans)::

    PYTHONPATH=src:. python tests/plan/record_goldens.py
"""

from __future__ import annotations

import json
from pathlib import Path

from tests.plan.golden_cases import build_all

OUT = Path(__file__).parent / "golden_reference.json"


def main() -> int:
    summaries = build_all()
    OUT.write_text(json.dumps(summaries, indent=2, sort_keys=False) + "\n")
    print(f"recorded {len(summaries)} cases -> {OUT}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
