"""Property tests for the plan executor and the Plan DAG validator.

Invariants:

* the dependency-aware makespan of any plan is bounded below by its
  longest single phase and above by the serial sum of all phases;
* adding chunks to a chunked phase never makes it slower (with zero
  per-chunk overhead), and the chunked phase is never faster than the
  un-overlapped base stage;
* the DAG validator rejects cycles, dangling dependencies, duplicate
  names, and self-dependencies.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.costmodel.access import AccessProfile, seq_stream
from repro.costmodel.model import CostModel, PhaseCost
from repro.hardware.topology import ibm_ac922
from repro.plan import (
    Chunked,
    Plan,
    PlanError,
    PlanExecutor,
    fixed_phase,
    pipeline_makespan,
    priced_phase,
)

import pytest


def _executor() -> PlanExecutor:
    return PlanExecutor(CostModel(ibm_ac922()))


def _fixed(name, seconds, deps=(), claims=()):
    return fixed_phase(
        name, PhaseCost(seconds, "(none)", {}), deps=deps, claims=claims
    )


class TestMakespanBounds:
    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_bounded_by_max_and_sum(self, data):
        n = data.draw(st.integers(1, 6), label="phases")
        seconds = [
            data.draw(
                st.floats(0.0, 10.0, allow_nan=False, allow_infinity=False),
                label=f"seconds[{i}]",
            )
            for i in range(n)
        ]
        phases = []
        for i in range(n):
            dep_idx = (
                data.draw(
                    st.sets(st.integers(0, i - 1)), label=f"deps[{i}]"
                )
                if i
                else set()
            )
            claims = tuple(
                data.draw(
                    st.sets(st.sampled_from(["a", "b"])), label=f"claims[{i}]"
                )
            )
            phases.append(
                _fixed(
                    f"p{i}",
                    seconds[i],
                    deps=tuple(f"p{d}" for d in sorted(dep_idx)),
                    claims=claims,
                )
            )
        result = _executor().execute(Plan(phases))
        lo, hi = max(seconds), sum(seconds)
        assert result.makespan >= lo - 1e-12 * max(1.0, lo)
        assert result.makespan <= hi + 1e-12 * max(1.0, hi)

    def test_independent_phases_overlap(self):
        """Two claim-disjoint phases run concurrently in the makespan."""
        plan = Plan([
            _fixed("a", 3.0, claims=("cpu0",)),
            _fixed("b", 2.0, claims=("gpu0",)),
        ])
        result = _executor().execute(plan)
        assert math.isclose(result.makespan, 3.0)
        assert math.isclose(result.total_seconds, 5.0)

    def test_exclusive_claims_serialize(self):
        """Phases claiming the same resource cannot overlap."""
        plan = Plan([
            _fixed("a", 3.0, claims=("gpu0",)),
            _fixed("b", 2.0, claims=("gpu0",)),
        ])
        result = _executor().execute(plan)
        assert math.isclose(result.makespan, 5.0)

    def test_linear_chain_equals_sum(self):
        plan = Plan([
            _fixed("a", 1.5),
            _fixed("b", 2.5, deps=("a",)),
            _fixed("c", 0.5, deps=("b",)),
        ])
        result = _executor().execute(plan)
        assert math.isclose(result.makespan, result.total_seconds)


class TestChunkedMonotonicity:
    def _chunked_seconds(self, chunks: int) -> float:
        model = CostModel(ibm_ac922())
        profile = AccessProfile(
            streams=[seq_stream("gpu0", "cpu0-mem", 1 << 30, "read")],
            compute_tuples=1e6,
            label="probe",
            processor="gpu0",
        )
        plan = Plan([
            priced_phase("probe", profile, chunked=Chunked(chunks=chunks))
        ])
        return PlanExecutor(model).execute(plan).seconds("probe")

    @given(
        chunks=st.integers(1, 256),
        more=st.integers(1, 256),
    )
    @settings(max_examples=40, deadline=None)
    def test_more_chunks_never_slower(self, chunks, more):
        a = self._chunked_seconds(chunks)
        b = self._chunked_seconds(chunks + more)
        assert b <= a + 1e-12 * a

    @given(chunks=st.integers(1, 256))
    @settings(max_examples=30, deadline=None)
    def test_never_beats_unoverlapped_base(self, chunks):
        """Overlap hides the secondary stage, not the dominant one."""
        unchunked = self._chunked_seconds(10**9)  # 1/n -> 0
        assert self._chunked_seconds(chunks) >= unchunked - 1e-12 * unchunked

    @given(
        stages=st.lists(
            st.floats(0.0, 100.0, allow_nan=False, allow_infinity=False),
            min_size=1,
            max_size=4,
        ),
        chunks=st.integers(1, 512),
        more=st.integers(1, 512),
    )
    @settings(max_examples=60, deadline=None)
    def test_pipeline_makespan_monotone_in_chunks(self, stages, chunks, more):
        a = pipeline_makespan(stages, chunks)
        b = pipeline_makespan(stages, chunks + more)
        assert b <= a + 1e-12 * max(1.0, a)
        assert a >= max(stages)


class TestDagValidation:
    def test_rejects_cycle(self):
        with pytest.raises(PlanError, match="cycle"):
            Plan([
                _fixed("a", 1.0, deps=("b",)),
                _fixed("b", 1.0, deps=("a",)),
            ])

    def test_rejects_self_dependency(self):
        with pytest.raises(PlanError):
            Plan([_fixed("a", 1.0, deps=("a",))])

    def test_rejects_dangling_dependency(self):
        with pytest.raises(PlanError, match="unknown"):
            Plan([_fixed("a", 1.0, deps=("ghost",))])

    def test_rejects_duplicate_names(self):
        with pytest.raises(PlanError, match="[Dd]uplicate"):
            Plan([_fixed("a", 1.0), _fixed("a", 2.0)])

    def test_rejects_empty_plan(self):
        with pytest.raises(PlanError):
            Plan([])

    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_topological_order_respects_deps(self, data):
        n = data.draw(st.integers(1, 7))
        phases = []
        for i in range(n):
            dep_idx = (
                data.draw(st.sets(st.integers(0, i - 1))) if i else set()
            )
            phases.append(
                _fixed(f"p{i}", 1.0, deps=tuple(f"p{d}" for d in sorted(dep_idx)))
            )
        order = [p.name for p in Plan(phases).topological_order()]
        position = {name: i for i, name in enumerate(order)}
        for phase in phases:
            for dep in phase.deps:
                assert position[dep] < position[phase.name]
