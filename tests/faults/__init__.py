"""Tests of the fault-injection and resilience subsystem."""
