"""ResilienceLog: action taxonomy, counters, and the manifest section."""

import json
import threading

import pytest

from repro.faults import (
    RESILIENCE_SCHEMA_VERSION,
    FaultPlan,
    ResilienceLog,
    TransientError,
    TransientKernelFault,
)


class TestRecording:
    def test_events_are_sequenced_with_detail(self):
        log = ResilienceLog()
        log.record("retry", worker="w0", start=0, end=64, attempt=1)
        log.record("redispatch", worker="w1", start=64, end=128)
        assert [e.action for e in log.events] == ["retry", "redispatch"]
        assert [e.seq for e in log.events] == [0, 1]
        assert log.events[0].detail["worker"] == "w0"
        assert len(log) == 2

    def test_unknown_actions_rejected(self):
        log = ResilienceLog()
        with pytest.raises(ValueError, match="unknown resilience action"):
            log.record("shrug")

    def test_counts_are_zero_filled(self):
        log = ResilienceLog()
        assert log.counts() == {
            "retry": 0,
            "redispatch": 0,
            "serial_fallback": 0,
            "spill": 0,
            "serving_retry": 0,
            "deadline_cancel": 0,
            "shed": 0,
            "breaker_fastfail": 0,
        }
        log.record("spill", from_strategy="gpu", to_strategy="hybrid")
        assert log.count("spill") == 1
        assert log.count("retry") == 0

    def test_concurrent_records_keep_gapless_sequence(self):
        log = ResilienceLog()

        def hammer():
            for _ in range(100):
                log.record("retry", worker="w")

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(log) == 400
        assert sorted(e.seq for e in log.events) == list(range(400))


class TestSection:
    def test_section_without_plan(self):
        log = ResilienceLog()
        log.record("serial_fallback", pending_ranges=3, ordered=True)
        section = log.section()
        assert section["schema_version"] == RESILIENCE_SCHEMA_VERSION
        assert section["plan"] is None
        assert section["injected"] == []
        assert section["counters"]["serial_fallback"] == 1
        json.dumps(section)  # JSON-ready

    def test_section_accounts_for_injected_faults(self):
        plan = FaultPlan(seed=11, rules=[TransientError(probability=1.0)])
        log = ResilienceLog()
        with pytest.raises(TransientKernelFault):
            plan.check_morsel("w0", 0, 64, attempt=0)
        log.record("retry", worker="w0", start=0, end=64, attempt=1)
        section = log.section(plan)
        assert section["plan"]["seed"] == 11
        assert section["injected_counts"] == {"transient": 1}
        assert len(section["injected"]) == 1
        assert section["injected"][0]["kind"] == "transient"
        assert section["counters"]["retry"] == 1
        json.dumps(section)
