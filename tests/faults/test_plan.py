"""FaultPlan: rule validation, determinism, installation, records."""

import threading

import pytest

from repro.faults import (
    CrashWorker,
    DegradeLink,
    FaultPlan,
    InjectedOutOfMemoryError,
    OomAt,
    TransientError,
    TransientKernelFault,
    WorkerCrashFault,
    active_plan,
)
from repro.memory.allocator import OutOfMemoryError


class TestRuleValidation:
    def test_crash_rejects_negative_ordinal(self):
        with pytest.raises(ValueError, match="ordinal"):
            CrashWorker(ordinal=-1)

    def test_crash_rejects_bad_probability(self):
        with pytest.raises(ValueError, match="probability"):
            CrashWorker(probability=1.5)

    def test_transient_rejects_bad_probability(self):
        with pytest.raises(ValueError, match="probability"):
            TransientError(probability=-0.1)

    def test_times_must_be_positive(self):
        with pytest.raises(ValueError, match="times"):
            TransientError(times=0)

    def test_oom_rejects_negative_ordinal(self):
        with pytest.raises(ValueError, match="ordinal"):
            OomAt(ordinal=-2)

    def test_degrade_factor_must_be_in_unit_interval(self):
        with pytest.raises(ValueError, match="factor"):
            DegradeLink(factor=0.0)
        with pytest.raises(ValueError, match="factor"):
            DegradeLink(factor=1.5)

    def test_plan_rejects_unknown_rule_objects(self):
        with pytest.raises(TypeError, match="unknown fault rule"):
            FaultPlan(seed=1, rules=["crash please"])


class TestDeterminism:
    def test_uniform_is_pure_in_the_site_key(self):
        plan = FaultPlan(seed=42, rules=[])
        a = plan.uniform(0, "transient", "w0", 128, 0)
        b = plan.uniform(0, "transient", "w0", 128, 0)
        assert a == b
        assert 0.0 <= a < 1.0
        # A different site draws independently.
        assert a != plan.uniform(0, "transient", "w1", 128, 0)

    def test_same_seed_same_fires_regardless_of_visit_order(self):
        def fires(order):
            plan = FaultPlan(
                seed=7, rules=[TransientError(probability=0.5, times=None)]
            )
            hit = []
            for worker, start in order:
                try:
                    plan.check_morsel(worker, start, start + 64, attempt=0)
                except TransientKernelFault:
                    hit.append((worker, start))
            return sorted(hit)

        sites = [("w0", 0), ("w1", 64), ("w0", 128), ("w1", 192)]
        assert fires(sites) == fires(list(reversed(sites)))

    def test_different_seeds_differ(self):
        def mask(seed):
            plan = FaultPlan(
                seed=seed, rules=[TransientError(probability=0.5, times=None)]
            )
            out = []
            for start in range(0, 64 * 64, 64):
                try:
                    plan.check_morsel("w0", start, start + 64, attempt=0)
                    out.append(0)
                except TransientKernelFault:
                    out.append(1)
            return out

        assert mask(1) != mask(2)

    def test_ordinal_counting_is_per_rule_per_worker(self):
        plan = FaultPlan(seed=0, rules=[CrashWorker(worker="w1", ordinal=2)])
        # w0's receipts never fire; w1 fires on its third receipt.
        for start in range(0, 5 * 64, 64):
            plan.check_morsel("w0", start, start + 64, attempt=0)
        plan.check_morsel("w1", 0, 64, attempt=0)
        plan.check_morsel("w1", 64, 128, attempt=0)
        with pytest.raises(WorkerCrashFault):
            plan.check_morsel("w1", 128, 192, attempt=0)


class TestFiringBudgets:
    def test_times_caps_total_fires(self):
        plan = FaultPlan(
            seed=3, rules=[TransientError(probability=1.0, times=2, attempts=None)]
        )
        for expected in (True, True, False, False):
            if expected:
                with pytest.raises(TransientKernelFault):
                    plan.check_morsel("w0", 0, 64, attempt=0)
            else:
                plan.check_morsel("w0", 0, 64, attempt=0)
        assert plan.injected_counts() == {"transient": 2}

    def test_default_transient_only_fires_on_first_attempt(self):
        plan = FaultPlan(seed=3, rules=[TransientError(probability=1.0)])
        with pytest.raises(TransientKernelFault):
            plan.check_morsel("w0", 0, 64, attempt=0)
        # The retry (attempt=1) succeeds by construction.
        plan.check_morsel("w0", 0, 64, attempt=1)


class TestAllocSite:
    def test_oom_fires_at_matching_ordinal(self):
        plan = FaultPlan(seed=1, rules=[OomAt(ordinal=1, label="ht")])
        plan.check_alloc(region="gpu0-mem", nbytes=10, label="ht build")  # 0
        with pytest.raises(InjectedOutOfMemoryError):
            plan.check_alloc(region="gpu0-mem", nbytes=10, label="ht build")  # 1
        # Non-matching labels are not counted.
        plan.check_alloc(region="gpu0-mem", nbytes=10, label="staging")

    def test_injected_oom_is_an_out_of_memory_error(self):
        plan = FaultPlan(seed=1, rules=[OomAt(ordinal=0)])
        with pytest.raises(OutOfMemoryError):
            plan.check_alloc(region="cpu0-mem", nbytes=10)

    def test_region_filter(self):
        plan = FaultPlan(seed=1, rules=[OomAt(ordinal=0, region="gpu0-mem")])
        plan.check_alloc(region="cpu0-mem", nbytes=10)
        with pytest.raises(InjectedOutOfMemoryError):
            plan.check_alloc(region="gpu0-mem", nbytes=10)


class TestLinkSite:
    def test_bandwidth_factor_composes_and_filters(self):
        plan = FaultPlan(
            seed=1,
            rules=[
                DegradeLink(factor=0.5),
                DegradeLink(factor=0.5, method="coherence"),
            ],
        )
        assert plan.bandwidth_factor("coherence", "gpu0", "cpu0-mem") == 0.25
        assert plan.bandwidth_factor("zero-copy", "gpu0", "cpu0-mem") == 0.5
        assert plan.injected_counts() == {"degraded_link": 3}


class TestInstallation:
    def test_install_and_uninstall(self):
        plan = FaultPlan(seed=1, rules=[])
        assert active_plan() is None
        with plan.install():
            assert active_plan() is plan
        assert active_plan() is None

    def test_nesting_rejected(self):
        a = FaultPlan(seed=1, rules=[])
        b = FaultPlan(seed=2, rules=[])
        with a.install():
            with pytest.raises(RuntimeError, match="already installed"):
                with b.install():
                    pass
        # The failed install did not clobber the state.
        assert active_plan() is None

    def test_uninstall_restores_after_exception(self):
        plan = FaultPlan(seed=1, rules=[])
        with pytest.raises(KeyError):
            with plan.install():
                raise KeyError("boom")
        assert active_plan() is None


class TestRecords:
    def test_every_injection_is_recorded_with_site(self):
        plan = FaultPlan(seed=1, rules=[CrashWorker(worker="w0", ordinal=0)])
        with pytest.raises(WorkerCrashFault):
            plan.check_morsel("w0", 256, 320, attempt=0)
        (record,) = plan.injected
        assert record.kind == "crash"
        assert record.site["worker"] == "w0"
        assert record.site["start"] == 256
        assert "CrashWorker" in record.rule
        assert record.to_dict()["seq"] == 0

    def test_describe_is_json_ready(self):
        import json

        plan = FaultPlan(
            seed=9, rules=[TransientError(probability=0.1)], name="chaos-a"
        )
        text = json.dumps(plan.describe())
        assert "chaos-a" in text and "TransientError" in text

    def test_concurrent_sites_keep_consistent_counts(self):
        plan = FaultPlan(
            seed=5, rules=[TransientError(probability=0.5, times=None)]
        )
        hits = []

        def hammer(worker):
            count = 0
            for start in range(0, 200 * 64, 64):
                try:
                    plan.check_morsel(worker, start, start + 64, attempt=0)
                except TransientKernelFault:
                    count += 1
            hits.append(count)

        threads = [
            threading.Thread(target=hammer, args=(f"w{i}",)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sum(hits) == len(plan.injected)
        assert plan.injected_counts()["transient"] == sum(hits)
        # seq numbers are a gapless 0..n-1 despite concurrent appends.
        assert sorted(r.seq for r in plan.injected) == list(
            range(len(plan.injected))
        )
