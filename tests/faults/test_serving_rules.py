"""Serving-level fault rules: FailQuery draws and link capacity factors.

The serving scheduler consumes two plan hooks the executor-level chaos
rules never touch: ``check_query`` (phase-boundary query failures) and
``resource_factor`` (DegradeLink applied to the contention model's
``link:*`` resources).  Both must be seeded-deterministic, filterable,
and inert when no matching rule exists.
"""

import pytest

from repro.faults import (
    DegradeLink,
    FailQuery,
    FaultPlan,
    QueryFault,
    SERVING_CHAOS_SEEDS,
    serving_chaos_plan,
)


def _plan(rules, seed=11):
    return FaultPlan(seed=seed, rules=rules, name="test")


class TestFailQueryValidation:
    def test_probability_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            FailQuery(probability=1.5)
        with pytest.raises(ValueError):
            FailQuery(probability=-0.1)

    def test_negative_times_rejected(self):
        with pytest.raises(ValueError):
            FailQuery(times=-1)

    def test_plan_accepts_fail_query_rules(self):
        plan = _plan([FailQuery()])
        assert "FailQuery" in plan.describe()["rules"][0]


class TestCheckQuery:
    def test_certain_rule_fires_and_records(self):
        plan = _plan([FailQuery(probability=1.0)])
        with pytest.raises(QueryFault):
            plan.check_query("q6", "alpha", 0, 0, 0)
        assert plan.injected_counts().get("query") == 1

    def test_no_query_rules_is_inert(self):
        plan = _plan([DegradeLink(factor=0.5)])
        plan.check_query("q6", "alpha", 0, 0, 0)
        assert not plan.injected

    def test_workload_filter(self):
        plan = _plan([FailQuery(workload="join-b", probability=1.0)])
        plan.check_query("q6", "alpha", 0, 0, 0)  # no raise
        with pytest.raises(QueryFault):
            plan.check_query("join-b", "alpha", 1, 0, 0)

    def test_tenant_filter(self):
        plan = _plan([FailQuery(tenant="beta", probability=1.0)])
        plan.check_query("q6", "alpha", 0, 0, 0)
        with pytest.raises(QueryFault):
            plan.check_query("q6", "beta", 1, 0, 0)

    def test_attempt_filter_default_first_attempt_only(self):
        plan = _plan([FailQuery(probability=1.0, times=None)])
        with pytest.raises(QueryFault):
            plan.check_query("q6", "alpha", 0, 0, 0)
        # attempt 1 (a resubmission) is exempt by construction.
        plan.check_query("q6", "alpha", 0, 0, 1)

    def test_attempts_none_fires_on_every_attempt(self):
        plan = _plan(
            [FailQuery(probability=1.0, attempts=None, times=None)]
        )
        for attempt in range(3):
            with pytest.raises(QueryFault):
                plan.check_query("q6", "alpha", 0, 0, attempt)

    def test_phase_filter(self):
        plan = _plan([FailQuery(phase=1, probability=1.0)])
        plan.check_query("q6", "alpha", 0, 0, 0)
        with pytest.raises(QueryFault):
            plan.check_query("q6", "alpha", 0, 1, 0)

    def test_times_budget_caps_fires(self):
        plan = _plan([FailQuery(probability=1.0, times=2)])
        for request_id in range(2):
            with pytest.raises(QueryFault):
                plan.check_query("q6", "alpha", request_id, 0, 0)
        plan.check_query("q6", "alpha", 2, 0, 0)  # budget spent

    def test_probabilistic_draws_are_seeded_deterministic(self):
        def fired(seed):
            plan = _plan(
                [FailQuery(probability=0.5, times=None)], seed=seed
            )
            hits = []
            for request_id in range(32):
                try:
                    plan.check_query("q6", "alpha", request_id, 0, 0)
                except QueryFault:
                    hits.append(request_id)
            return hits

        first = fired(123)
        assert fired(123) == first
        assert 0 < len(first) < 32
        assert fired(124) != first


class TestResourceFactor:
    def test_no_link_rules_returns_unity(self):
        plan = _plan([FailQuery()])
        assert plan.resource_factor("link:nvlink2[gpu0<->cpu0]") == 1.0

    def test_degrade_link_scales_link_resources_only(self):
        plan = _plan([DegradeLink(factor=0.5)])
        assert plan.resource_factor("link:nvlink2[gpu0<->cpu0]") == 0.5
        assert plan.resource_factor("mem:gpu0-mem") == 1.0
        assert plan.resource_factor("compute:cpu0") == 1.0

    def test_method_scoped_rules_do_not_degrade_the_solver(self):
        # a DegradeLink pinned to one transfer method models a pipeline
        # bandwidth loss, not a physical link capacity loss; the
        # scheduler's contention resources are untouched.
        plan = _plan([DegradeLink(factor=0.5, method="pipeline")])
        assert plan.resource_factor("link:nvlink2[gpu0<->cpu0]") == 1.0

    def test_src_memory_filter_matches_link_name(self):
        plan = _plan([DegradeLink(factor=0.25, src_memory="gpu0")])
        assert plan.resource_factor("link:nvlink2[gpu0<->cpu0]") == 0.25
        assert plan.resource_factor("link:xbus[cpu0<->cpu1]") == 1.0

    def test_factor_recorded_once_per_resource(self):
        plan = _plan([DegradeLink(factor=0.5)])
        for _ in range(5):
            plan.resource_factor("link:a")
        counts = plan.injected_counts()
        assert counts.get("degraded_link") == 1
        plan.resource_factor("link:b")
        assert plan.injected_counts()["degraded_link"] == 2


class TestServingChaosScenarios:
    def test_seed_catalogue_is_stable(self):
        assert SERVING_CHAOS_SEEDS == (404, 505, 606)

    def test_each_seed_builds_a_named_plan(self):
        for seed in SERVING_CHAOS_SEEDS:
            plan = serving_chaos_plan(seed)
            description = plan.describe()
            assert description["seed"] == seed
            assert description["name"].startswith("chaos-serving-")
            assert description["rules"]

    def test_unknown_seed_rejected(self):
        with pytest.raises(ValueError, match="999"):
            serving_chaos_plan(999)
