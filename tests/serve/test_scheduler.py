"""Contention scheduler: processor-sharing semantics on the DES.

Synthetic ServedQuery fixtures with hand-written phase costs pin the
scheduling arithmetic: a lone query finishes in exactly its solo time,
co-running queries on one saturated resource share it max-min fairly,
disjoint or under-utilized resources overlap for free, and arrivals at
accumulated float timestamps never trip the simulator clock.
"""

import pytest

from repro.costmodel.model import PhaseCost
from repro.serve.request import QueryRequest, ServedQuery
from repro.serve.scheduler import ContentionScheduler


def _phase(seconds, occupancy=None, label="work"):
    occupancy = (
        occupancy if occupancy is not None else {"mem:cpu0-mem": seconds}
    )
    bottleneck = (
        max(occupancy, key=occupancy.get) if occupancy else "(none)"
    )
    return PhaseCost(
        seconds=seconds,
        bottleneck=bottleneck,
        occupancy=occupancy,
        label=label,
    )


def _query(request_id, arrival, phases, tenant="alpha"):
    return ServedQuery(
        request=QueryRequest(
            request_id=request_id,
            tenant=tenant,
            workload="synthetic",
            machine="ibm-ac922",
            arrival=arrival,
        ),
        phases=phases,
        solo_seconds=sum(p.seconds for p in phases),
    )


class TestSoloSemantics:
    def test_lone_query_finishes_in_solo_time(self):
        query = _query(0, 0.0, [_phase(1.5)])
        outcome = ContentionScheduler().run([query])
        assert query.start == 0.0
        assert query.finish == pytest.approx(1.5)
        assert outcome.makespan == pytest.approx(1.5)

    def test_lone_query_with_fixed_overhead_not_sped_up(self):
        # Bottleneck busy time below the phase duration (fixed
        # overheads): the solved rate exceeds 1 but must be clamped.
        query = _query(0, 0.0, [_phase(2.0, {"mem:cpu0-mem": 0.5})])
        ContentionScheduler().run([query])
        assert query.finish == pytest.approx(2.0)

    def test_multi_phase_query_runs_phases_sequentially(self):
        query = _query(
            0,
            1.0,
            [
                _phase(1.0, {"a": 1.0}, label="build"),
                _phase(2.0, {"b": 2.0}, label="probe"),
            ],
        )
        ContentionScheduler().run([query])
        assert query.finish == pytest.approx(4.0)

    def test_zero_second_phases_are_skipped(self):
        query = _query(
            0,
            0.0,
            [_phase(0.0, {}), _phase(1.0), _phase(0.0, {})],
        )
        ContentionScheduler().run([query])
        assert query.finish == pytest.approx(1.0)

    def test_all_zero_query_finishes_at_arrival(self):
        query = _query(0, 3.0, [_phase(0.0, {})])
        outcome = ContentionScheduler().run([query])
        assert query.finish == pytest.approx(3.0)
        assert outcome.makespan == pytest.approx(3.0)


class TestContention:
    def test_two_identical_queries_share_the_bottleneck(self):
        # Each query saturates the same resource solo; together they
        # process at half rate: both finish at 2x solo.
        queries = [
            _query(0, 0.0, [_phase(1.0)]),
            _query(1, 0.0, [_phase(1.0)]),
        ]
        ContentionScheduler().run(queries)
        assert queries[0].finish == pytest.approx(2.0)
        assert queries[1].finish == pytest.approx(2.0)

    def test_disjoint_resources_do_not_contend(self):
        queries = [
            _query(0, 0.0, [_phase(1.0, {"a": 1.0})]),
            _query(1, 0.0, [_phase(1.0, {"b": 1.0})]),
        ]
        ContentionScheduler().run(queries)
        assert queries[0].finish == pytest.approx(1.0)
        assert queries[1].finish == pytest.approx(1.0)

    def test_underutilized_resource_overlaps_for_free(self):
        # Each query needs only 40% of the shared resource; combined
        # load is 0.8 < 1, so neither is slowed down.
        queries = [
            _query(0, 0.0, [_phase(1.0, {"r": 0.4})]),
            _query(1, 0.0, [_phase(1.0, {"r": 0.4})]),
        ]
        ContentionScheduler().run(queries)
        assert queries[0].finish == pytest.approx(1.0)
        assert queries[1].finish == pytest.approx(1.0)

    def test_staggered_arrival_processor_sharing(self):
        # q0 runs alone until t=0.5 (half done), then both share at
        # rate 1/2: q0's remaining 0.5 takes 1.0s -> finishes at 1.5;
        # q1 has 0.5 done by then and runs alone -> finishes at 2.0.
        queries = [
            _query(0, 0.0, [_phase(1.0)]),
            _query(1, 0.5, [_phase(1.0)]),
        ]
        ContentionScheduler().run(queries)
        assert queries[0].finish == pytest.approx(1.5)
        assert queries[1].finish == pytest.approx(2.0)

    def test_three_way_contention_is_max_min_fair(self):
        queries = [
            _query(i, 0.0, [_phase(1.0)]) for i in range(3)
        ]
        outcome = ContentionScheduler().run(queries)
        for query in queries:
            assert query.finish == pytest.approx(3.0)
        assert outcome.peak_concurrency == 3

    def test_makespan_and_ordering_are_deterministic(self):
        def build():
            return [
                _query(0, 0.0, [_phase(0.7)]),
                _query(1, 0.1, [_phase(0.3, {"a": 0.3})]),
                _query(2, 0.2, [_phase(0.5)]),
            ]

        first = ContentionScheduler().run(build())
        second = ContentionScheduler().run(build())
        assert first.makespan == second.makespan
        assert first.resolves == second.resolves


class TestSchedulerHooks:
    def test_admit_hook_drops_queries(self):
        queries = [
            _query(0, 0.0, [_phase(1.0)]),
            _query(1, 0.0, [_phase(1.0)]),
        ]
        outcome = ContentionScheduler().run(
            queries, admit=lambda q, now: q.request.request_id == 0
        )
        assert [q.request.request_id for q in outcome.finished] == [0]
        assert [q.request.request_id for q in outcome.dropped] == [1]
        assert queries[0].finish == pytest.approx(1.0)

    def test_on_finish_fires_once_per_query_at_finish_time(self):
        finished = []
        queries = [
            _query(0, 0.0, [_phase(1.0)]),
            _query(1, 0.0, [_phase(1.0)]),
        ]
        ContentionScheduler().run(
            queries,
            on_finish=lambda q, now: finished.append(
                (q.request.request_id, now)
            ),
        )
        assert sorted(finished) == [(0, pytest.approx(2.0)), (1, pytest.approx(2.0))]


class TestClockRobustness:
    def test_accumulated_float_arrivals_do_not_raise(self):
        # Absolute arrival timestamps built by cumulative float sums —
        # the exact pattern that used to trip Simulator.schedule_at
        # when a completion left the clock ULPs past an arrival.
        gap = 0.1
        arrival = 0.0
        queries = []
        for i in range(50):
            queries.append(_query(i, arrival, [_phase(0.1)]))
            arrival += gap
        outcome = ContentionScheduler().run(queries)
        assert len(outcome.finished) == 50
        assert outcome.makespan >= 49 * gap

    def test_heavy_churn_converges(self):
        # Many short queries over few resources: lots of re-solves and
        # epoch-invalidated completion events.
        queries = [
            _query(
                i,
                0.01 * i,
                [
                    _phase(0.05, {"a": 0.05 if i % 2 else 0.02}),
                    _phase(0.03, {"b": 0.03}),
                ],
            )
            for i in range(40)
        ]
        outcome = ContentionScheduler().run(queries)
        assert len(outcome.finished) == 40
        for query in outcome.finished:
            assert query.finish >= query.request.arrival
            # never faster than the contention-free latency
            assert (
                query.finish - query.start
                >= query.solo_seconds - 1e-9
            )
