"""QueryService end to end: submit -> price -> admit -> schedule."""

import json
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.obs.manifest import MANIFEST_SCHEMA_VERSION
from repro.serve import (
    AdmissionError,
    QueryService,
    TenantQuota,
    modeled_query_bytes,
    percentile,
)
from repro.logical.explain import WORKLOADS


class TestFrontDoor:
    def test_unknown_workload_rejected_at_submit(self):
        service = QueryService()
        with pytest.raises(KeyError, match="unknown workload"):
            service.submit("alpha", "nonsense", 0.0)

    def test_unknown_machine_rejected_at_construction(self):
        with pytest.raises(KeyError, match="unknown machine"):
            QueryService(machine="cray-1")

    def test_negative_arrival_rejected(self):
        service = QueryService()
        with pytest.raises(ValueError):
            service.submit("alpha", "join-b", -1.0)

    def test_request_ids_are_unique_and_ordered(self):
        service = QueryService()
        first = service.submit("alpha", "join-b", 0.0)
        second = service.submit("beta", "join-b", 1.0)
        assert (first.request_id, second.request_id) == (0, 1)
        assert service.pending == 2

    def test_thread_pool_submission_is_safe(self):
        service = QueryService()
        with ThreadPoolExecutor(max_workers=8) as pool:
            requests = list(
                pool.map(
                    lambda i: service.submit("alpha", "join-b", 0.01 * i),
                    range(64),
                )
            )
        assert service.pending == 64
        assert sorted(r.request_id for r in requests) == list(range(64))


class TestServing:
    def test_single_query_latency_equals_solo_makespan(self):
        service = QueryService()
        service.submit("alpha", "join-b", 0.0)
        report = service.serve()
        assert len(report.served) == 1
        query = report.served[0]
        assert query.latency == pytest.approx(query.solo_seconds)
        assert report.makespan == pytest.approx(query.solo_seconds)

    def test_concurrent_queries_stretch_but_never_shrink(self):
        service = QueryService()
        for _ in range(3):
            service.submit("alpha", "join-b", 0.0)
        report = service.serve()
        assert len(report.served) == 3
        solo = report.served[0].solo_seconds
        for query in report.served:
            assert query.latency >= solo - 1e-9
        # three identical queries over one machine: at least one must
        # be materially stretched.
        assert max(q.latency for q in report.served) > 1.5 * solo

    def test_quota_exceeding_tenant_rejected_with_typed_error(self):
        service = QueryService(
            quotas={"greedy": TenantQuota(max_in_flight=1)}
        )
        service.submit("greedy", "join-b", 0.0)
        service.submit("greedy", "join-b", 0.0)
        report = service.serve()
        assert len(report.served) == 1
        assert len(report.rejections) == 1
        error = report.rejections[0].error
        assert isinstance(error, AdmissionError)
        assert error.tenant == "greedy"
        assert error.quota == "in_flight"

    def test_bytes_quota_uses_modeled_not_executed_scale(self):
        _desc, build = WORKLOADS["join-a"]
        modeled = modeled_query_bytes(build())
        service = QueryService(
            quotas={"tiny": TenantQuota(max_modeled_bytes=modeled / 2)}
        )
        service.submit("tiny", "join-a", 0.0)
        report = service.serve()
        assert not report.served
        assert report.rejections[0].error.quota == "modeled_bytes"

    def test_plan_cache_hits_on_repeated_workloads(self):
        service = QueryService()
        for i in range(4):
            service.submit("alpha", "join-b", 0.1 * i)
        report = service.serve()
        assert report.cache["hits"] >= 3
        assert report.cache["hit_rate"] > 0
        hits = [q for q in report.served if q.cache_hit]
        assert len(hits) == 3

    def test_serve_drains_the_request_log(self):
        service = QueryService()
        service.submit("alpha", "join-b", 0.0)
        service.serve()
        assert service.pending == 0
        follow_up = service.serve()
        assert not follow_up.served

    def test_mixed_workloads_all_finish(self):
        service = QueryService()
        names = ["q6", "join-b", "star", "q6", "join-b"]
        for i, name in enumerate(names):
            service.submit("alpha", name, 0.05 * i)
        report = service.serve()
        assert len(report.served) == len(names)
        assert report.peak_concurrency >= 2
        assert report.cache["hits"] == 2


class TestManifests:
    def test_served_query_manifest_has_serving_section(self):
        service = QueryService()
        request = service.submit("tenant-x", "star", 1.25)
        report = service.serve()
        manifest = report.served[0].manifest
        assert manifest["schema_version"] == MANIFEST_SCHEMA_VERSION
        serving = manifest["serving"]
        assert serving["request_id"] == request.request_id
        assert serving["tenant"] == "tenant-x"
        assert serving["workload"] == "star"
        assert serving["arrival"] == 1.25
        assert serving["latency"] == pytest.approx(
            serving["finish"] - serving["arrival"]
        )
        assert serving["stretch"] == pytest.approx(1.0)
        assert serving["cache_hit"] is False

    def test_manifest_carries_optimizer_section_and_is_json(self):
        service = QueryService()
        service.submit("alpha", "join-b", 0.0)
        report = service.serve()
        manifest = report.served[0].manifest
        assert manifest["optimizer"] is not None
        assert manifest["optimizer"]["predicted_seconds"] > 0
        assert manifest["phases"], "solo phases must be recorded"
        json.dumps(manifest)  # fully JSON-serializable

    def test_report_percentiles(self):
        service = QueryService()
        for i in range(10):
            service.submit("alpha", "star", 0.001 * i)
        report = service.serve()
        latencies = report.latencies()
        assert len(latencies) == 10
        assert report.latency_percentile(0.5) == percentile(latencies, 0.5)
        assert report.latency_percentile(0.99) >= report.latency_percentile(
            0.5
        )


class TestPercentile:
    def test_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0.5) == 2.0
        assert percentile(values, 0.99) == 4.0
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 4.0

    def test_empty_is_zero(self):
        assert percentile([], 0.5) == 0.0

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)
