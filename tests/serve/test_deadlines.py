"""Deadline enforcement: cancellation mid-phase, drift repair, records.

Scheduler-level tests use synthetic ServedQuery fixtures (hand-written
phase costs) so the cancellation arithmetic is pinned exactly; the
service-level tests check the end-to-end surface — default deadlines,
typed outcomes, manifest fields, and the admission ledger returning to
zero after cancellations release their shares.
"""

import pytest

from repro.costmodel.model import PhaseCost
from repro.serve import QueryService, ServicePolicy
from repro.serve.policy import OUTCOME_DEADLINE, OUTCOME_FINISHED
from repro.serve.request import QueryRequest, ServedQuery
from repro.serve.scheduler import (
    ContentionScheduler,
    PhaseFault,
    SchedulerError,
)


def _phase(seconds, occupancy=None, label="work"):
    occupancy = (
        occupancy if occupancy is not None else {"mem:cpu0-mem": seconds}
    )
    bottleneck = (
        max(occupancy, key=occupancy.get) if occupancy else "(none)"
    )
    return PhaseCost(
        seconds=seconds,
        bottleneck=bottleneck,
        occupancy=occupancy,
        label=label,
    )


def _query(request_id, arrival, phases, deadline=None, tenant="alpha"):
    return ServedQuery(
        request=QueryRequest(
            request_id=request_id,
            tenant=tenant,
            workload="synthetic",
            machine="ibm-ac922",
            arrival=arrival,
            deadline=deadline,
        ),
        phases=phases,
        solo_seconds=sum(p.seconds for p in phases),
    )


class TestSchedulerDeadlines:
    def test_generous_deadline_is_met(self):
        query = _query(0, 0.0, [_phase(1.0)], deadline=5.0)
        outcome = ContentionScheduler().run([query])
        assert query.outcome == OUTCOME_FINISHED
        assert query.cancelled_at is None
        assert not outcome.deadline_exceeded
        assert query.finish == pytest.approx(1.0)

    def test_tight_deadline_cancels_mid_phase(self):
        query = _query(0, 0.0, [_phase(1.0)], deadline=0.5)
        outcome = ContentionScheduler().run([query])
        assert query.outcome == OUTCOME_DEADLINE
        assert query.cancelled_at == pytest.approx(0.5)
        assert query.finish == pytest.approx(0.5)
        assert [q.request.request_id for q in outcome.deadline_exceeded] == [0]
        assert not outcome.finished
        assert outcome.accounted() == 1

    def test_cancellation_frees_bandwidth_for_survivor(self):
        # Both saturate the same resource (rate 1/2 each).  q0's
        # deadline fires at 0.5 with 0.25 of its work done; q1 then
        # runs alone: 0.25 done at 0.5, remaining 0.75 at full rate ->
        # finishes at 1.25 instead of 2.0.
        doomed = _query(0, 0.0, [_phase(1.0)], deadline=0.5)
        survivor = _query(1, 0.0, [_phase(1.0)])
        ContentionScheduler().run([doomed, survivor])
        assert doomed.cancelled_at == pytest.approx(0.5)
        assert survivor.outcome == OUTCOME_FINISHED
        assert survivor.finish == pytest.approx(1.25)

    def test_deadline_relative_to_arrival(self):
        query = _query(0, 2.0, [_phase(1.0)], deadline=0.25)
        ContentionScheduler().run([query])
        assert query.cancelled_at == pytest.approx(2.25)

    def test_simultaneous_deadlines_cancel_both(self):
        queries = [
            _query(i, 0.0, [_phase(1.0)], deadline=1.5) for i in range(2)
        ]
        outcome = ContentionScheduler().run(queries)
        # sharing at rate 1/2 both would finish at 2.0 > 1.5.
        assert len(outcome.deadline_exceeded) == 2
        for query in queries:
            assert query.cancelled_at == pytest.approx(1.5)

    def test_waiting_query_cancelled_in_queue(self):
        policy = ServicePolicy(max_active=1, queue_depth=4)
        running = _query(0, 0.0, [_phase(1.0)])
        queued = _query(1, 0.0, [_phase(1.0)], deadline=0.5)
        outcome = ContentionScheduler().run(
            [running, queued], policy=policy
        )
        assert queued.outcome == OUTCOME_DEADLINE
        assert queued.cancelled_at == pytest.approx(0.5)
        # the running query was never slowed down: max_active=1 means
        # it owned the machine throughout.
        assert running.finish == pytest.approx(1.0)
        assert outcome.accounted() == 2

    def test_deadline_cancels_pending_retry(self):
        # the fault hook asks for a retry at t=2.0 but the deadline
        # fires at t=1.0 while the resubmission is still pending.
        query = _query(0, 0.0, [_phase(1.0)], deadline=1.0)

        def fault(q, phase_index, attempt, now):
            if attempt == 0:
                return PhaseFault(retry_delay=2.0)
            return None

        outcome = ContentionScheduler().run([query], fault=fault)
        assert query.outcome == OUTCOME_DEADLINE
        assert query.cancelled_at == pytest.approx(1.0)
        assert outcome.retries == 1
        assert not outcome.finished

    def test_multi_phase_cancellation_between_phases(self):
        query = _query(
            0,
            0.0,
            [
                _phase(1.0, {"a": 1.0}, label="build"),
                _phase(2.0, {"b": 2.0}, label="probe"),
            ],
            deadline=1.5,
        )
        ContentionScheduler().run([query])
        assert query.outcome == OUTCOME_DEADLINE
        assert query.cancelled_at == pytest.approx(1.5)


class TestSchedulerError:
    def test_undrained_queries_raise_typed_error(self, monkeypatch):
        # If the event loop stops before the workload drains (here: a
        # simulator whose run() halts at t=0.5 mid-flight), the
        # scheduler must name the stuck requests instead of silently
        # returning a partial outcome.
        import repro.serve.scheduler as scheduler_module
        from repro.sim.engine import Simulator

        class HaltingSimulator(Simulator):
            def run(self, until=0.5):
                return super().run(until=until)

        monkeypatch.setattr(
            scheduler_module, "Simulator", HaltingSimulator
        )
        queries = [
            _query(0, 0.0, [_phase(1.0)]),
            _query(1, 0.0, [_phase(1.0)]),
        ]
        with pytest.raises(SchedulerError) as excinfo:
            ContentionScheduler().run(queries)
        error = excinfo.value
        assert isinstance(error, RuntimeError)
        assert error.clock == pytest.approx(0.5)
        assert [entry[0] for entry in error.stuck] == [0, 1]
        for _request_id, phase_index, remaining in error.stuck:
            assert phase_index == 0
            assert 0.0 < remaining <= 1.0
        assert "unfinished" in str(error)
        assert "#0" in str(error)


class TestServiceDeadlines:
    def test_submit_rejects_non_positive_deadline(self):
        service = QueryService()
        with pytest.raises(ValueError):
            service.submit("alpha", "q6", 0.0, deadline=0.0)
        with pytest.raises(ValueError):
            service.submit("alpha", "q6", 0.0, deadline=-1.0)

    def test_default_deadline_comes_from_policy(self):
        service = QueryService(
            policy=ServicePolicy(default_deadline=4.0)
        )
        request = service.submit("alpha", "q6", 1.0)
        assert request.deadline == 4.0
        assert request.absolute_deadline == pytest.approx(5.0)
        explicit = service.submit("alpha", "q6", 1.0, deadline=9.0)
        assert explicit.deadline == 9.0

    def test_no_deadline_without_policy_default(self):
        service = QueryService()
        request = service.submit("alpha", "q6", 0.0)
        assert request.deadline is None
        assert request.absolute_deadline is None

    def test_deadline_exceeded_query_reported_with_manifest_fields(self):
        # a deadline far below the solo makespan guarantees the cancel.
        service = QueryService()
        solo_probe = QueryService()
        solo_probe.submit("alpha", "q6", 0.0)
        solo = solo_probe.serve().served[0].solo_seconds

        service.submit("alpha", "q6", 0.0, deadline=solo / 4)
        report = service.serve()
        assert not report.served
        assert len(report.deadline_exceeded) == 1
        query = report.deadline_exceeded[0]
        assert query.outcome == OUTCOME_DEADLINE
        serving = query.manifest["serving"]
        assert serving["outcome"] == "deadline_exceeded"
        assert serving["deadline"] == pytest.approx(solo / 4)
        assert serving["cancelled_at"] == pytest.approx(solo / 4)
        assert serving["retries"] == 0
        assert report.outcome_counts()["deadline_exceeded"] == 1
        assert report.conservation(1)

    def test_deadline_cancel_releases_admission_share(self):
        service = QueryService(
            policy=ServicePolicy(default_deadline=0.01)
        )
        for i in range(3):
            service.submit("alpha", "q6", 0.001 * i)
        report = service.serve()
        assert report.outcome_counts()["deadline_exceeded"] == 3
        # audit() raises AdmissionAuditError on any leaked share.
        service.admission.audit()

    def test_deadline_cancel_recorded_in_resilience_section(self):
        service = QueryService()
        service.submit("alpha", "q6", 0.0, deadline=0.01)
        report = service.serve()
        assert report.resilience is not None
        actions = [
            event["action"] for event in report.resilience["events"]
        ]
        assert "deadline_cancel" in actions
        assert report.resilience["counters"]["deadline_cancel"] == 1

    def test_met_deadlines_leave_fault_free_shape(self):
        service = QueryService()
        service.submit("alpha", "q6", 0.0, deadline=1e9)
        report = service.serve()
        assert len(report.served) == 1
        serving = report.served[0].manifest["serving"]
        assert serving["outcome"] == "finished"
        assert serving["deadline"] == 1e9
        assert serving["cancelled_at"] is None
