"""Overload control: bounded queue, queue-full and stretch shedding.

Scheduler-level tests pin exactly *which* request is shed and why;
service-level tests check the typed report surface (ShedQuery,
ShedError, outcome counts, conservation) and that shed requests never
touch the admission ledger.
"""

import pytest

from repro.costmodel.model import PhaseCost
from repro.serve import QueryService, ServicePolicy, ShedError, ShedQuery
from repro.serve.policy import SHED_QUEUE_FULL, SHED_STRETCH
from repro.serve.request import QueryRequest, ServedQuery
from repro.serve.scheduler import ContentionScheduler


def _phase(seconds, occupancy=None, label="work"):
    occupancy = (
        occupancy if occupancy is not None else {"mem:cpu0-mem": seconds}
    )
    bottleneck = (
        max(occupancy, key=occupancy.get) if occupancy else "(none)"
    )
    return PhaseCost(
        seconds=seconds,
        bottleneck=bottleneck,
        occupancy=occupancy,
        label=label,
    )


def _query(request_id, arrival, phases):
    return ServedQuery(
        request=QueryRequest(
            request_id=request_id,
            tenant="alpha",
            workload="synthetic",
            machine="ibm-ac922",
            arrival=arrival,
        ),
        phases=phases,
        solo_seconds=sum(p.seconds for p in phases),
    )


class TestQueueShedding:
    def test_zero_depth_queue_sheds_second_query(self):
        policy = ServicePolicy(max_active=1, queue_depth=0)
        queries = [
            _query(0, 0.0, [_phase(1.0)]),
            _query(1, 0.0, [_phase(1.0)]),
        ]
        outcome = ContentionScheduler().run(queries, policy=policy)
        assert [q.request.request_id for q in outcome.finished] == [0]
        assert len(outcome.shed) == 1
        shed = outcome.shed[0]
        assert shed.request.request_id == 1
        assert shed.reason == SHED_QUEUE_FULL
        assert shed.at == pytest.approx(0.0)
        assert outcome.accounted() == 2

    def test_bounded_queue_admits_up_to_depth(self):
        policy = ServicePolicy(max_active=1, queue_depth=1)
        queries = [_query(i, 0.0, [_phase(1.0)]) for i in range(3)]
        outcome = ContentionScheduler().run(queries, policy=policy)
        assert [q.request.request_id for q in outcome.finished] == [0, 1]
        assert [s.request.request_id for s in outcome.shed] == [2]
        # FIFO: the queued query runs after the first finishes.
        assert queries[0].finish == pytest.approx(1.0)
        assert queries[1].start == pytest.approx(1.0)
        assert queries[1].finish == pytest.approx(2.0)

    def test_queue_drains_so_later_arrivals_are_admitted(self):
        policy = ServicePolicy(max_active=1, queue_depth=1)
        queries = [
            _query(0, 0.0, [_phase(1.0)]),
            _query(1, 0.0, [_phase(1.0)]),
            _query(2, 1.5, [_phase(1.0)]),  # arrives after q0 finished
        ]
        outcome = ContentionScheduler().run(queries, policy=policy)
        assert len(outcome.finished) == 3
        assert not outcome.shed


class TestStretchShedding:
    def test_stretch_above_limit_sheds(self):
        # three identical saturating queries: the second would run at
        # stretch 2.0, the third at 3.0.  A limit of 2.5 admits the
        # second and sheds the third.
        policy = ServicePolicy(stretch_limit=2.5)
        queries = [_query(i, 0.0, [_phase(1.0)]) for i in range(3)]
        outcome = ContentionScheduler().run(queries, policy=policy)
        assert [q.request.request_id for q in outcome.finished] == [0, 1]
        shed = outcome.shed[0]
        assert shed.request.request_id == 2
        assert shed.reason == SHED_STRETCH
        # detail carries the predicted stretch: q2 against two actives.
        assert shed.detail == pytest.approx(3.0)

    def test_disjoint_queries_never_stretch_shed(self):
        policy = ServicePolicy(stretch_limit=1.5)
        queries = [
            _query(0, 0.0, [_phase(1.0, {"a": 1.0})]),
            _query(1, 0.0, [_phase(1.0, {"b": 1.0})]),
        ]
        outcome = ContentionScheduler().run(queries, policy=policy)
        assert len(outcome.finished) == 2
        assert not outcome.shed

    def test_first_query_on_idle_machine_never_shed(self):
        policy = ServicePolicy(stretch_limit=1.0)
        query = _query(0, 0.0, [_phase(1.0)])
        outcome = ContentionScheduler().run([query], policy=policy)
        assert len(outcome.finished) == 1


class TestShedSurface:
    def test_shed_query_describe_and_error(self):
        shed = ShedQuery(
            request=QueryRequest(
                request_id=3,
                tenant="alpha",
                workload="q6",
                machine="ibm-ac922",
                arrival=1.0,
            ),
            reason=SHED_QUEUE_FULL,
            detail=0.0,
            at=1.0,
        )
        assert "queue_full" in shed.describe()
        error = shed.as_error()
        assert isinstance(error, ShedError)
        assert "queue_full" in str(error)

    def test_service_queue_shed_reported_and_conserved(self):
        service = QueryService(
            policy=ServicePolicy(max_active=1, queue_depth=0)
        )
        for _ in range(4):
            service.submit("alpha", "q6", 0.0)
        report = service.serve()
        counts = report.outcome_counts()
        assert counts["finished"] == 1
        assert counts["shed"] == 3
        for shed in report.shed:
            assert shed.reason == SHED_QUEUE_FULL
        assert report.conservation(4)
        service.admission.audit()

    def test_service_stretch_shed_uses_solo_cost(self):
        service = QueryService(
            policy=ServicePolicy(stretch_limit=1.5)
        )
        for _ in range(3):
            service.submit("alpha", "q6", 0.0)
        report = service.serve()
        counts = report.outcome_counts()
        assert counts["finished"] == 1
        assert counts["shed"] == 2
        for shed in report.shed:
            assert shed.reason == SHED_STRETCH
        # the survivor ran contention-free.
        survivor = report.served[0]
        assert survivor.latency == pytest.approx(survivor.solo_seconds)

    def test_shed_recorded_in_resilience_section(self):
        service = QueryService(
            policy=ServicePolicy(max_active=1, queue_depth=0)
        )
        service.submit("alpha", "q6", 0.0)
        service.submit("alpha", "q6", 0.0)
        report = service.serve()
        assert report.resilience is not None
        events = [
            e for e in report.resilience["events"] if e["action"] == "shed"
        ]
        assert len(events) == 1
        assert report.resilience["counters"]["shed"] == 1

    def test_shed_requests_live_in_their_own_bucket(self):
        service = QueryService(
            policy=ServicePolicy(max_active=1, queue_depth=0)
        )
        service.submit("alpha", "q6", 0.0)
        doomed = service.submit("alpha", "q6", 0.0)
        report = service.serve()
        # shed requests never ran, so query() (terminated queries with
        # manifests) does not return them; they live in report.shed.
        assert report.query(doomed.request_id) is None
        shed_ids = [s.request.request_id for s in report.shed]
        assert shed_ids == [doomed.request_id]
        assert isinstance(report.shed[0], ShedQuery)
