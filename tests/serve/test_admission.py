"""Admission control: quotas, typed rejection, release accounting."""

import pytest

from repro.serve.admission import (
    AdmissionAuditError,
    AdmissionController,
    AdmissionError,
    TenantQuota,
)
from repro.serve.request import QueryRequest


def _request(request_id=0, tenant="alpha"):
    return QueryRequest(
        request_id=request_id,
        tenant=tenant,
        workload="join-b",
        machine="ibm-ac922",
        arrival=0.0,
    )


class TestInFlightQuota:
    def test_admits_up_to_the_limit(self):
        controller = AdmissionController(
            quotas={"alpha": TenantQuota(max_in_flight=2)}
        )
        controller.admit(_request(0), 100.0)
        controller.admit(_request(1), 100.0)
        assert controller.in_flight("alpha") == 2

    def test_rejects_beyond_the_limit_with_typed_error(self):
        controller = AdmissionController(
            quotas={"alpha": TenantQuota(max_in_flight=1)}
        )
        controller.admit(_request(0), 100.0)
        with pytest.raises(AdmissionError) as excinfo:
            controller.admit(_request(7), 100.0)
        error = excinfo.value
        assert error.tenant == "alpha"
        assert error.quota == "in_flight"
        assert error.limit == 1
        assert error.observed == 2
        assert error.request_id == 7
        assert "alpha" in str(error)
        assert "in_flight" in str(error)

    def test_release_frees_a_slot(self):
        controller = AdmissionController(
            quotas={"alpha": TenantQuota(max_in_flight=1)}
        )
        first = _request(0)
        controller.admit(first, 100.0)
        controller.release(first, 100.0)
        controller.admit(_request(1), 100.0)
        assert controller.in_flight("alpha") == 1

    def test_admission_error_is_a_runtime_error(self):
        assert issubclass(AdmissionError, RuntimeError)


class TestModeledBytesQuota:
    def test_rejects_oversized_request(self):
        controller = AdmissionController(
            quotas={"alpha": TenantQuota(max_modeled_bytes=1000.0)}
        )
        with pytest.raises(AdmissionError) as excinfo:
            controller.admit(_request(0), 2000.0)
        assert excinfo.value.quota == "modeled_bytes"
        assert excinfo.value.limit == 1000.0
        assert excinfo.value.observed == 2000.0

    def test_cumulative_bytes_enforced_across_in_flight(self):
        controller = AdmissionController(
            quotas={"alpha": TenantQuota(max_modeled_bytes=1000.0)}
        )
        controller.admit(_request(0), 600.0)
        with pytest.raises(AdmissionError):
            controller.admit(_request(1), 600.0)
        controller.release(_request(0), 600.0)
        controller.admit(_request(2), 600.0)


class TestDefaults:
    def test_unknown_tenant_gets_the_default_quota(self):
        controller = AdmissionController(
            default=TenantQuota(max_in_flight=1)
        )
        controller.admit(_request(0, tenant="anyone"), 1.0)
        with pytest.raises(AdmissionError):
            controller.admit(_request(1, tenant="anyone"), 1.0)

    def test_default_default_is_unlimited(self):
        controller = AdmissionController()
        for i in range(100):
            controller.admit(_request(i), 1e12)
        assert controller.in_flight("alpha") == 100

    def test_release_without_admit_is_an_error(self):
        controller = AdmissionController()
        with pytest.raises(RuntimeError):
            controller.release(_request(0), 1.0)

    def test_snapshot_reports_per_tenant_counters(self):
        controller = AdmissionController(
            quotas={"beta": TenantQuota(max_in_flight=0)}
        )
        controller.admit(_request(0, tenant="alpha"), 10.0)
        with pytest.raises(AdmissionError):
            controller.admit(_request(1, tenant="beta"), 10.0)
        snapshot = controller.snapshot()
        assert snapshot["alpha"]["in_flight"] == 1
        assert snapshot["alpha"]["admitted_total"] == 1
        assert snapshot["alpha"]["modeled_bytes"] == 10.0
        assert snapshot["beta"]["rejected_total"] == 1


class TestLedgerAudit:
    def test_clean_controller_audits_quietly(self):
        controller = AdmissionController()
        controller.audit()

    def test_drained_ledger_returns_to_exact_zero(self):
        controller = AdmissionController()
        # adversarial float sums: admitting in one order and releasing
        # in another must still cancel exactly, because the ledger
        # recomputes modeled_bytes from the surviving shares instead of
        # accumulating +=/-= drift.
        sizes = [0.1, 0.2, 0.3, 1e-9, 1e12, 7.7]
        for i, size in enumerate(sizes):
            controller.admit(_request(i), size)
        for i in (3, 0, 5, 1, 4, 2):
            controller.release(_request(i))
        assert controller.in_flight("alpha") == 0
        snapshot = controller.snapshot()
        assert snapshot["alpha"]["modeled_bytes"] == 0.0  # exact
        controller.audit()

    def test_leaked_share_fails_the_audit_with_details(self):
        controller = AdmissionController()
        controller.admit(_request(0), 10.0)
        controller.admit(_request(1), 5.0)
        controller.release(_request(1))
        with pytest.raises(AdmissionAuditError) as excinfo:
            controller.audit()
        leaks = excinfo.value.leaks
        assert "alpha" in leaks
        in_flight, modeled, request_ids = leaks["alpha"]
        assert in_flight == 1
        assert modeled == 10.0
        assert request_ids == (0,)
        assert "alpha" in str(excinfo.value)

    def test_ledger_is_authoritative_for_release(self):
        # release() no longer trusts a caller-supplied byte count: the
        # share recorded at admit() is what gets returned.
        controller = AdmissionController()
        controller.admit(_request(0), 10.0)
        controller.release(_request(0), 999.0)  # wrong hint, ignored
        assert controller.snapshot()["alpha"]["modeled_bytes"] == 0.0
        controller.audit()

    def test_double_release_is_an_error(self):
        controller = AdmissionController()
        controller.admit(_request(0), 10.0)
        controller.release(_request(0))
        with pytest.raises(RuntimeError):
            controller.release(_request(0))
