"""Admission control: quotas, typed rejection, release accounting."""

import pytest

from repro.serve.admission import (
    AdmissionController,
    AdmissionError,
    TenantQuota,
)
from repro.serve.request import QueryRequest


def _request(request_id=0, tenant="alpha"):
    return QueryRequest(
        request_id=request_id,
        tenant=tenant,
        workload="join-b",
        machine="ibm-ac922",
        arrival=0.0,
    )


class TestInFlightQuota:
    def test_admits_up_to_the_limit(self):
        controller = AdmissionController(
            quotas={"alpha": TenantQuota(max_in_flight=2)}
        )
        controller.admit(_request(0), 100.0)
        controller.admit(_request(1), 100.0)
        assert controller.in_flight("alpha") == 2

    def test_rejects_beyond_the_limit_with_typed_error(self):
        controller = AdmissionController(
            quotas={"alpha": TenantQuota(max_in_flight=1)}
        )
        controller.admit(_request(0), 100.0)
        with pytest.raises(AdmissionError) as excinfo:
            controller.admit(_request(7), 100.0)
        error = excinfo.value
        assert error.tenant == "alpha"
        assert error.quota == "in_flight"
        assert error.limit == 1
        assert error.observed == 2
        assert error.request_id == 7
        assert "alpha" in str(error)
        assert "in_flight" in str(error)

    def test_release_frees_a_slot(self):
        controller = AdmissionController(
            quotas={"alpha": TenantQuota(max_in_flight=1)}
        )
        first = _request(0)
        controller.admit(first, 100.0)
        controller.release(first, 100.0)
        controller.admit(_request(1), 100.0)
        assert controller.in_flight("alpha") == 1

    def test_admission_error_is_a_runtime_error(self):
        assert issubclass(AdmissionError, RuntimeError)


class TestModeledBytesQuota:
    def test_rejects_oversized_request(self):
        controller = AdmissionController(
            quotas={"alpha": TenantQuota(max_modeled_bytes=1000.0)}
        )
        with pytest.raises(AdmissionError) as excinfo:
            controller.admit(_request(0), 2000.0)
        assert excinfo.value.quota == "modeled_bytes"
        assert excinfo.value.limit == 1000.0
        assert excinfo.value.observed == 2000.0

    def test_cumulative_bytes_enforced_across_in_flight(self):
        controller = AdmissionController(
            quotas={"alpha": TenantQuota(max_modeled_bytes=1000.0)}
        )
        controller.admit(_request(0), 600.0)
        with pytest.raises(AdmissionError):
            controller.admit(_request(1), 600.0)
        controller.release(_request(0), 600.0)
        controller.admit(_request(2), 600.0)


class TestDefaults:
    def test_unknown_tenant_gets_the_default_quota(self):
        controller = AdmissionController(
            default=TenantQuota(max_in_flight=1)
        )
        controller.admit(_request(0, tenant="anyone"), 1.0)
        with pytest.raises(AdmissionError):
            controller.admit(_request(1, tenant="anyone"), 1.0)

    def test_default_default_is_unlimited(self):
        controller = AdmissionController()
        for i in range(100):
            controller.admit(_request(i), 1e12)
        assert controller.in_flight("alpha") == 100

    def test_release_without_admit_is_an_error(self):
        controller = AdmissionController()
        with pytest.raises(RuntimeError):
            controller.release(_request(0), 1.0)

    def test_snapshot_reports_per_tenant_counters(self):
        controller = AdmissionController(
            quotas={"beta": TenantQuota(max_in_flight=0)}
        )
        controller.admit(_request(0, tenant="alpha"), 10.0)
        with pytest.raises(AdmissionError):
            controller.admit(_request(1, tenant="beta"), 10.0)
        snapshot = controller.snapshot()
        assert snapshot["alpha"]["in_flight"] == 1
        assert snapshot["alpha"]["admitted_total"] == 1
        assert snapshot["alpha"]["modeled_bytes"] == 10.0
        assert snapshot["beta"]["rejected_total"] == 1
