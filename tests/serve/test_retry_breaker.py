"""Serving-level retry with backoff and the per-workload breaker.

Unit tests pin the :class:`CircuitBreaker` state machine in virtual
time and the :class:`ServicePolicy` validation; the service-level
tests drive seeded :class:`FailQuery` plans through the whole
submit -> fault -> resubmit -> (finish | fail | fastfail) path.
"""

import pytest

from repro.faults import FailQuery, FaultPlan
from repro.faults.recovery import RetryPolicy
from repro.serve import (
    CircuitBreaker,
    CircuitOpenError,
    QueryService,
    ServicePolicy,
)
from repro.serve.policy import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    DEFAULT_SERVING_RETRY,
    OUTCOME_FAILED,
)


class TestCircuitBreakerUnit:
    def test_disabled_breaker_always_allows(self):
        breaker = CircuitBreaker()
        assert not breaker.enabled
        for now in (0.0, 1.0, 2.0):
            breaker.record_failure("w", now)
            assert breaker.allow("w", now + 0.1)
        assert breaker.state("w") == BREAKER_CLOSED

    def test_opens_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(threshold=2, cooldown=10.0)
        assert breaker.record_failure("w", 1.0) == BREAKER_CLOSED
        assert breaker.record_failure("w", 2.0) == BREAKER_OPEN
        assert breaker.state("w", now=2.5) == BREAKER_OPEN
        assert not breaker.allow("w", 3.0)
        assert breaker.snapshot()["w"]["fastfails_total"] == 1
        assert breaker.snapshot()["w"]["opens_total"] == 1
        assert breaker.opened_at("w") == 2.0

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(threshold=2, cooldown=10.0)
        breaker.record_failure("w", 1.0)
        breaker.record_success("w", 2.0)
        assert breaker.record_failure("w", 3.0) == BREAKER_CLOSED
        assert breaker.state("w") == BREAKER_CLOSED

    def test_half_open_after_cooldown_then_close_on_success(self):
        breaker = CircuitBreaker(threshold=1, cooldown=5.0)
        breaker.record_failure("w", 0.0)
        assert breaker.state("w", now=4.9) == BREAKER_OPEN
        assert breaker.state("w", now=5.1) == BREAKER_HALF_OPEN
        assert breaker.allow("w", 5.1)
        assert breaker.record_success("w", 5.2) == BREAKER_CLOSED
        assert breaker.allow("w", 5.3)

    def test_half_open_failure_reopens(self):
        breaker = CircuitBreaker(threshold=1, cooldown=5.0)
        breaker.record_failure("w", 0.0)
        assert breaker.state("w", now=6.0) == BREAKER_HALF_OPEN
        assert breaker.record_failure("w", 6.0) == BREAKER_OPEN
        assert not breaker.allow("w", 6.1)
        assert breaker.snapshot()["w"]["opens_total"] == 2

    def test_workloads_are_isolated(self):
        breaker = CircuitBreaker(threshold=1, cooldown=10.0)
        breaker.record_failure("bad", 0.0)
        assert not breaker.allow("bad", 1.0)
        assert breaker.allow("good", 1.0)
        assert breaker.state("good") == BREAKER_CLOSED


class TestServicePolicyValidation:
    def test_queue_depth_requires_max_active(self):
        with pytest.raises(ValueError):
            ServicePolicy(queue_depth=2)

    def test_stretch_limit_below_one_rejected(self):
        with pytest.raises(ValueError):
            ServicePolicy(stretch_limit=0.5)

    def test_default_policy_is_inert(self):
        policy = ServicePolicy()
        assert policy.max_active is None
        assert policy.default_deadline is None
        assert not policy.build_breaker().enabled

    def test_breaker_threshold_enables_breaker(self):
        policy = ServicePolicy(breaker_threshold=3, breaker_cooldown=2.0)
        breaker = policy.build_breaker()
        assert breaker.enabled

    def test_default_serving_retry_backs_off_with_cap(self):
        delays = [DEFAULT_SERVING_RETRY.delay(i) for i in (1, 2, 3)]
        assert delays == [0.05, 0.1, 0.2]
        assert RetryPolicy(
            max_attempts=9, base_delay=0.05, factor=2.0, max_delay=0.3
        ).delay(8) == pytest.approx(0.3)


def _transient_plan(workload="q6"):
    """First attempts of ``workload`` fail; resubmissions succeed."""
    return FaultPlan(
        seed=7,
        rules=[
            FailQuery(
                workload=workload, probability=1.0, attempts=(0,), times=None
            )
        ],
        name="test-transients",
    )


def _always_fail_plan(times=None):
    return FaultPlan(
        seed=7,
        rules=[FailQuery(probability=1.0, attempts=None, times=times)],
        name="test-hard-faults",
    )


class TestServiceRetries:
    def test_transient_fault_recovers_via_retry(self):
        service = QueryService()
        service.submit("alpha", "q6", 0.0)
        with _transient_plan().install():
            report = service.serve()
        assert len(report.served) == 1
        query = report.served[0]
        assert query.retries == 1
        assert query.manifest["serving"]["retries"] == 1
        assert query.manifest["serving"]["outcome"] == "finished"
        # latency includes the backoff delay of the resubmission.
        assert (
            query.finish - query.request.arrival
            > query.solo_seconds + DEFAULT_SERVING_RETRY.delay(1) - 1e-9
        )
        assert report.total_retries() == 1
        assert report.conservation(1)

    def test_retry_recorded_in_resilience_section(self):
        service = QueryService()
        service.submit("alpha", "q6", 0.0)
        with _transient_plan().install():
            report = service.serve()
        assert report.resilience is not None
        actions = [e["action"] for e in report.resilience["events"]]
        assert actions.count("serving_retry") == 1
        assert report.resilience["counters"]["serving_retry"] == 1
        assert report.resilience["plan"] is not None

    def test_exhausted_retry_budget_fails_terminally(self):
        service = QueryService()
        service.submit("alpha", "q6", 0.0)
        with _always_fail_plan().install():
            report = service.serve()
        assert not report.served
        assert len(report.failed) == 1
        query = report.failed[0]
        assert query.outcome == OUTCOME_FAILED
        # max_attempts=3: attempts 0 and 1 were retried, attempt 2 is
        # terminal.
        assert query.retries == 2
        assert query.cancelled_at is not None
        serving = query.manifest["serving"]
        assert serving["outcome"] == "failed"
        assert serving["retries"] == 2
        assert report.outcome_counts()["failed"] == 1
        assert report.conservation(1)

    def test_failed_queries_release_admission(self):
        service = QueryService()
        for i in range(3):
            service.submit("alpha", "q6", 0.1 * i)
        with _always_fail_plan().install():
            report = service.serve()
        assert report.outcome_counts()["failed"] == 3
        service.admission.audit()


class TestServiceBreaker:
    def _arrivals(self, service, times, workload="q6"):
        for i, arrival in enumerate(times):
            service.submit("alpha", workload, arrival)

    def test_breaker_opens_and_fastfails(self):
        service = QueryService(
            policy=ServicePolicy(breaker_threshold=2, breaker_cooldown=100.0)
        )
        # spread arrivals so each failure completes before the next
        # arrival: two terminal failures open the breaker; the third
        # query is fastfailed without touching the machine.
        self._arrivals(service, [0.0, 10.0, 20.0])
        with _always_fail_plan().install():
            report = service.serve()
        assert report.outcome_counts()["failed"] == 2
        assert report.outcome_counts()["rejected"] == 1
        rejection = report.rejections[0]
        assert isinstance(rejection.error, CircuitOpenError)
        assert rejection.error.workload == "q6"
        assert report.breaker["q6"]["opens_total"] == 1
        assert report.breaker["q6"]["fastfails_total"] == 1
        assert report.breaker["q6"]["state"] == BREAKER_OPEN
        assert report.conservation(3)

    def test_fastfail_recorded_in_resilience_section(self):
        service = QueryService(
            policy=ServicePolicy(breaker_threshold=1, breaker_cooldown=100.0)
        )
        self._arrivals(service, [0.0, 10.0])
        with _always_fail_plan().install():
            report = service.serve()
        actions = [e["action"] for e in report.resilience["events"]]
        assert "breaker_fastfail" in actions

    def test_half_open_trial_closes_breaker_after_faults_drain(self):
        service = QueryService(
            policy=ServicePolicy(breaker_threshold=1, breaker_cooldown=5.0)
        )
        # query 0 burns its whole retry budget (3 attempts) and opens
        # the breaker; query 1 arrives inside the cooldown and is
        # fastfailed; query 2 arrives after the cooldown as the
        # half-open trial — the fault budget (times=3) is spent, so it
        # succeeds and closes the breaker.
        self._arrivals(service, [0.0, 2.0, 20.0])
        with _always_fail_plan(times=3).install():
            report = service.serve()
        assert report.outcome_counts() == {
            "finished": 1,
            "deadline_exceeded": 0,
            "failed": 1,
            "rejected": 1,
            "shed": 0,
        }
        assert report.breaker["q6"]["state"] == BREAKER_CLOSED
        assert report.breaker["q6"]["opens_total"] == 1
        served = report.served[0]
        assert served.manifest["serving"]["breaker_state"] == BREAKER_CLOSED

    def test_breaker_isolation_across_workloads(self):
        service = QueryService(
            policy=ServicePolicy(breaker_threshold=1, breaker_cooldown=100.0)
        )
        service.submit("alpha", "q6", 0.0)
        service.submit("alpha", "star", 10.0)
        plan = FaultPlan(
            seed=7,
            rules=[
                FailQuery(
                    workload="q6", probability=1.0, attempts=None, times=None
                )
            ],
            name="q6-only",
        )
        with plan.install():
            report = service.serve()
        assert report.outcome_counts()["failed"] == 1
        assert len(report.served) == 1
        assert report.served[0].request.workload == "star"
        assert report.breaker["q6"]["state"] == BREAKER_OPEN
