"""Plan cache: fingerprints, hit/miss metrics, copy isolation."""

from repro.costmodel.model import PhaseCost
from repro.serve.cache import (
    PlanCache,
    PlanCacheEntry,
    workload_fingerprint,
)


def _entry(fingerprint="join-b@ibm-ac922", seconds=1.0):
    return PlanCacheEntry(
        fingerprint=fingerprint,
        phases=[
            PhaseCost(
                seconds=seconds,
                bottleneck="mem:cpu0-mem",
                occupancy={"mem:cpu0-mem": seconds},
                label="probe",
            )
        ],
        solo_seconds=seconds,
        modeled_bytes=1024.0,
        manifest={"kind": f"serve[{fingerprint}]", "results": {"a": 1}},
    )


class TestCacheCounters:
    def test_miss_then_hit(self):
        cache = PlanCache()
        assert cache.get("join-b@ibm-ac922") is None
        cache.put(_entry())
        assert cache.get("join-b@ibm-ac922") is not None
        assert cache.misses == 1
        assert cache.hits == 1
        assert cache.hit_rate == 0.5

    def test_empty_cache_hit_rate_is_zero(self):
        assert PlanCache().hit_rate == 0.0

    def test_stats_shape(self):
        cache = PlanCache()
        cache.put(_entry())
        cache.get("join-b@ibm-ac922")
        stats = cache.stats()
        assert stats == {
            "entries": 1,
            "hits": 1,
            "misses": 0,
            "hit_rate": 1.0,
        }

    def test_contains_does_not_touch_counters(self):
        cache = PlanCache()
        cache.put(_entry())
        assert "join-b@ibm-ac922" in cache
        assert "other" not in cache
        assert cache.hits == 0
        assert cache.misses == 0


class TestCapacity:
    def test_eviction_at_capacity_drops_oldest(self):
        cache = PlanCache(capacity=2)
        cache.put(_entry("a@m"))
        cache.put(_entry("b@m"))
        cache.put(_entry("c@m"))
        assert len(cache) == 2
        assert "a@m" not in cache
        assert "b@m" in cache and "c@m" in cache

    def test_replacing_an_entry_does_not_evict(self):
        cache = PlanCache(capacity=2)
        cache.put(_entry("a@m"))
        cache.put(_entry("b@m"))
        cache.put(_entry("a@m", seconds=2.0))
        assert len(cache) == 2
        assert cache.get("a@m").solo_seconds == 2.0


class TestIsolation:
    def test_manifest_copy_is_independent(self):
        cache = PlanCache()
        cache.put(_entry())
        entry = cache.get("join-b@ibm-ac922")
        first = entry.manifest_copy()
        first["results"]["a"] = 999
        second = entry.manifest_copy()
        assert second["results"]["a"] == 1

    def test_fingerprint_format(self):
        assert workload_fingerprint("q6", "ibm-ac922") == "q6@ibm-ac922"
