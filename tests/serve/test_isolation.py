"""Per-query observability isolation under concurrency.

Two queries served *concurrently* must produce manifests bit-identical
to the same queries served *alone* — no cross-query bleed in
``MetricsRegistry`` counters, span timelines, or phase costs.  Only the
``serving`` section (arrival/finish/stretch on the shared machine) may
differ; everything the solo pricing produced is pinned byte for byte,
mirroring the PR-4 snapshot-equality style.
"""

import json

from repro.serve import QueryService


def _solo_manifest(workload: str) -> dict:
    service = QueryService()
    service.submit("solo", workload, 0.0)
    report = service.serve()
    assert len(report.served) == 1
    return report.served[0].manifest


def _without_serving(manifest: dict) -> str:
    stripped = {k: v for k, v in manifest.items() if k != "serving"}
    return json.dumps(stripped, sort_keys=True)


class TestObservabilityIsolation:
    def test_concurrent_manifests_identical_to_solo(self):
        workloads = ["join-b", "q6"]
        solo = {name: _solo_manifest(name) for name in workloads}

        service = QueryService()
        for name in workloads:
            service.submit("alpha", name, 0.0)
        report = service.serve()
        assert len(report.served) == 2

        for query in report.served:
            name = query.request.workload
            assert _without_serving(query.manifest) == _without_serving(
                solo[name]
            ), f"cross-query bleed in {name} manifest"

    def test_cache_hit_manifest_identical_to_cold_pricing(self):
        service = QueryService()
        service.submit("alpha", "star", 0.0)
        service.submit("alpha", "star", 5.0)  # far apart: no overlap
        report = service.serve()
        first = report.query(0)
        second = report.query(1)
        assert not first.cache_hit and second.cache_hit
        assert _without_serving(first.manifest) == _without_serving(
            second.manifest
        )

    def test_concurrent_metrics_sections_do_not_accumulate(self):
        # Serving the same workload twice concurrently must not double
        # any metric counter relative to the solo run.
        solo = _solo_manifest("join-b")

        service = QueryService()
        service.submit("a", "join-b", 0.0)
        service.submit("b", "join-b", 0.0)
        report = service.serve()
        for query in report.served:
            assert (
                json.dumps(query.manifest["metrics"], sort_keys=True)
                == json.dumps(solo["metrics"], sort_keys=True)
            )
            assert (
                json.dumps(query.manifest["spans"], sort_keys=True)
                == json.dumps(solo["spans"], sort_keys=True)
            )

    def test_serving_sections_do_differ_under_contention(self):
        service = QueryService()
        service.submit("a", "join-b", 0.0)
        service.submit("b", "join-b", 0.0)
        report = service.serve()
        stretches = [
            q.manifest["serving"]["stretch"] for q in report.served
        ]
        assert any(s > 1.5 for s in stretches)
