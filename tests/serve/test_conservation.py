"""Property suite: request conservation and same-seed determinism.

Every submitted request must land in exactly one terminal bucket —

    submitted == finished + rejected + shed + deadline_exceeded + failed

— for any arrival pattern, any overload-policy knob combination, and
any seeded fault plan; and re-serving the identical scenario must
reproduce the identical report bit for bit.  Hypothesis drives the
scenario space; the service's own ``conservation()`` plus the
admission ledger ``audit()`` are the oracles.
"""

import json

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.faults import FailQuery, FaultPlan
from repro.serve import QueryService, ServicePolicy

#: cheap-to-price workloads so each hypothesis example stays fast.
WORKLOAD_NAMES = ("q6", "star")

policies = st.one_of(
    st.none(),
    st.builds(
        ServicePolicy,
        max_active=st.integers(min_value=1, max_value=3),
        queue_depth=st.integers(min_value=0, max_value=2),
        default_deadline=st.one_of(
            st.none(), st.floats(min_value=0.01, max_value=2.0)
        ),
    ),
    st.builds(
        ServicePolicy,
        stretch_limit=st.floats(min_value=1.0, max_value=4.0),
        breaker_threshold=st.one_of(
            st.none(), st.integers(min_value=1, max_value=3)
        ),
        breaker_cooldown=st.floats(min_value=0.1, max_value=10.0),
    ),
)

scenarios = st.fixed_dictionaries(
    {
        "gaps": st.lists(
            st.floats(min_value=0.0, max_value=0.5),
            min_size=1,
            max_size=8,
        ),
        "picks": st.lists(
            st.integers(min_value=0, max_value=len(WORKLOAD_NAMES) - 1),
            min_size=8,
            max_size=8,
        ),
        "policy": policies,
        "fault_seed": st.one_of(
            st.none(), st.integers(min_value=0, max_value=2**20)
        ),
        "fault_probability": st.floats(min_value=0.1, max_value=1.0),
        "first_attempt_only": st.booleans(),
    }
)


def _run_scenario(params):
    service = QueryService(policy=params["policy"])
    arrival = 0.0
    for i, gap in enumerate(params["gaps"]):
        arrival += gap
        workload = WORKLOAD_NAMES[params["picks"][i]]
        service.submit("tenant-h", workload, arrival)
    submitted = len(params["gaps"])
    if params["fault_seed"] is None:
        report = service.serve()
    else:
        plan = FaultPlan(
            seed=params["fault_seed"],
            rules=[
                FailQuery(
                    probability=params["fault_probability"],
                    attempts=(0,) if params["first_attempt_only"] else None,
                    times=None,
                )
            ],
            name="hypothesis-chaos",
        )
        with plan.install():
            report = service.serve()
    return service, report, submitted


def _report_fingerprint(report):
    """A bit-exact JSON digest of everything a report exposes."""
    return json.dumps(
        {
            "manifests": [q.manifest for q in report.served],
            "deadline": [q.manifest for q in report.deadline_exceeded],
            "failed": [q.manifest for q in report.failed],
            "shed": [s.describe() for s in report.shed],
            "rejected": [
                (r.request.request_id, str(r.error))
                for r in report.rejections
            ],
            "outcomes": report.outcome_counts(),
            "latencies": report.latencies(),
            "makespan": report.makespan,
            "peak": report.peak_concurrency,
            "breaker": report.breaker,
        },
        sort_keys=True,
    )


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(params=scenarios)
def test_every_request_lands_in_exactly_one_bucket(params):
    _service, report, submitted = _run_scenario(params)
    counts = report.outcome_counts()
    assert report.conservation(submitted), (
        f"conservation violated: submitted {submitted} != {counts}"
    )
    # no request id appears in two buckets.
    ids = (
        [q.request.request_id for q in report.served]
        + [q.request.request_id for q in report.deadline_exceeded]
        + [q.request.request_id for q in report.failed]
        + [s.request.request_id for s in report.shed]
        + [r.request.request_id for r in report.rejections]
    )
    assert len(ids) == len(set(ids)) == submitted


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(params=scenarios)
def test_admission_ledger_returns_to_zero(params):
    service, _report, _submitted = _run_scenario(params)
    # raises AdmissionAuditError on any leaked share.
    service.admission.audit()


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(params=scenarios)
def test_same_seed_scenarios_are_bit_identical(params):
    _service1, first, _ = _run_scenario(params)
    _service2, second, _ = _run_scenario(params)
    assert _report_fingerprint(first) == _report_fingerprint(second)
