"""FigureResult, the report generator, and the explain utilities."""

import pytest

from repro.bench.common import FigureResult, SeriesRow
from repro.bench.report import deviation_stats, figure_section, markdown_table
from repro.obs.explain import explain, explain_join, utilization
from repro.costmodel.model import PhaseCost


@pytest.fixture
def figure():
    result = FigureResult(
        figure="Figure X",
        title="test figure",
        paper={"row1": {"s1": 2.0}},
        notes="a note",
    )
    result.add("row1", s1=1.8, s2=5.0)
    result.add("row2", s1=2.2)
    return result


class TestFigureResult:
    def test_series_names_preserve_order(self, figure):
        assert figure.series_names() == ["s1", "s2"]

    def test_series_skips_missing(self, figure):
        assert figure.series("s2") == [5.0]

    def test_value_lookup(self, figure):
        assert figure.value("row2", "s1") == 2.2
        with pytest.raises(KeyError):
            figure.value("row2", "s2")

    def test_paper_value(self, figure):
        assert figure.paper_value("row1", "s1") == 2.0
        assert figure.paper_value("row2", "s1") is None

    def test_table_renders_sim_and_paper(self, figure):
        text = figure.table().render()
        assert "s1 (sim)" in text and "s1 (paper)" in text
        assert "1.8" in text and "2" in text

    def test_render_appends_notes(self, figure):
        assert "a note" in figure.render()


class TestReport:
    def test_markdown_table_shape(self, figure):
        md = markdown_table(figure)
        lines = md.splitlines()
        assert lines[0].startswith("| Figure X |")
        assert lines[1].startswith("|---")
        assert len(lines) == 2 + len(figure.rows)
        assert "1.8 / 2" in md

    def test_deviation_stats(self, figure):
        count, mean_err, max_err = deviation_stats(figure)
        assert count == 1
        assert mean_err == pytest.approx(0.1)
        assert max_err == pytest.approx(0.1)

    def test_deviation_stats_without_anchors(self):
        empty = FigureResult(figure="F", title="t")
        empty.add("r", x=1.0)
        assert deviation_stats(empty) is None

    def test_figure_section(self, figure):
        section = figure_section(figure)
        assert section.startswith("## Figure X")
        assert "mean deviation" in section
        assert "> a note" in section


class TestExplain:
    @pytest.fixture
    def cost(self):
        return PhaseCost(
            seconds=1.0,
            bottleneck="link:x",
            occupancy={"link:x": 0.985, "mem:y": 0.25},
            label="probe",
        )

    def test_utilization_bottleneck_is_100pct(self, cost):
        util = utilization(cost)
        assert util["link:x"] == pytest.approx(1.0)
        assert util["mem:y"] == pytest.approx(0.25 / 0.985)

    def test_utilization_empty(self):
        empty = PhaseCost(seconds=0.0, bottleneck="(none)", occupancy={})
        assert utilization(empty) == {}

    def test_explain_marks_bottleneck(self, cost):
        text = explain(cost)
        assert "<- bottleneck" in text
        assert "link:x" in text
        assert "probe" in text

    def test_explain_join(self, ibm, wl_a):
        from repro.core.join.nopa import NoPartitioningJoin

        result = NoPartitioningJoin(ibm, hash_table_placement="gpu").run(
            wl_a.r, wl_a.s
        )
        text = explain_join(result)
        assert "build" in text and "probe" in text
        assert "G Tuples/s" in text
