"""Every bench module runs and exposes paper anchors.

The deep shape assertions live in ``benchmarks/``; these tests pin the
harness *plumbing*: each module's ``run`` returns a well-formed
FigureResult with the expected rows and at least one paper anchor.
"""

import pytest

from repro.bench import (
    ablations,
    fig01_bandwidth,
    fig11_placement,
    fig03_microbench,
    fig12_transfer_methods,
    fig13_data_locality,
    fig14_hashtable_locality,
    fig15_tpch_q6,
    fig16_probe_scaling,
    fig17_build_scaling,
    fig18_build_probe_ratio,
    fig19_skew,
    fig20_selectivity,
    fig21_coprocessing,
    multi_gpu,
)
from repro.bench.common import FigureResult

TINY = 2.0**-14


@pytest.mark.parametrize(
    "runner,kwargs,expected_rows",
    [
        (fig01_bandwidth.run, {}, {"memory", "nvlink2", "pcie3"}),
        (
            fig03_microbench.run,
            {},
            {"nvlink2", "pcie3", "upi", "xbus", "xeon-memory",
             "power9-memory", "gpu-memory"},
        ),
        (
            fig12_transfer_methods.run,
            {"scale": TINY},
            set(fig12_transfer_methods.METHOD_ORDER),
        ),
        (fig13_data_locality.run, {"scale": TINY}, {"A", "B", "C"}),
        (fig14_hashtable_locality.run, {"scale": TINY}, {"A", "B", "C"}),
        (
            fig15_tpch_q6.run,
            {"scale": 2.0**-10, "scale_factors": (100, 1000)},
            {"SF100", "SF1000"},
        ),
        (
            fig16_probe_scaling.run,
            {"scale": TINY, "probe_millions": (1024, 8192)},
            {"1024M", "8192M"},
        ),
        (
            fig17_build_scaling.run,
            {"scale": TINY, "tuple_millions": (512, 2048)},
            {"512M", "2048M"},
        ),
        (
            fig18_build_probe_ratio.run,
            {"scale": TINY, "ratios": (1, 16)},
            {"1:1", "1:16"},
        ),
        (
            fig19_skew.run,
            {"scale": TINY, "exponents": (0.0, 1.5)},
            {"zipf=0.0", "zipf=1.5"},
        ),
        (
            fig20_selectivity.run,
            {"scale": TINY, "selectivities": (0.0, 1.0)},
            {"sel=0.0", "sel=1.0"},
        ),
        (fig21_coprocessing.run, {"scale": TINY}, {"A", "B", "C"}),
        (
            multi_gpu.run,
            {"scale": TINY},
            {"A (2 GiB table)", "C 2048M (32 GiB table)", "C 2048M scaling"},
        ),
    ],
)
def test_module_returns_wellformed_result(runner, kwargs, expected_rows):
    result = runner(**kwargs)
    assert isinstance(result, FigureResult)
    assert {row.label for row in result.rows} == expected_rows
    assert result.figure
    assert result.series_names()
    # Every row has at least one finite positive value.
    for row in result.rows:
        assert row.values
        assert all(v >= 0 for v in row.values.values())
    # Rendering never crashes.
    assert result.render()


def test_paper_anchor_coverage():
    """Most figures carry paper reference values."""
    anchored = [
        fig01_bandwidth.PAPER,
        fig03_microbench.PAPER,
        fig12_transfer_methods.PAPER,
        fig13_data_locality.PAPER,
        fig14_hashtable_locality.PAPER,
        fig15_tpch_q6.PAPER,
        fig16_probe_scaling.PAPER,
        fig17_build_scaling.PAPER,
        fig18_build_probe_ratio.PAPER,
        fig19_skew.PAPER,
        fig20_selectivity.PAPER,
        fig21_coprocessing.PAPER,
    ]
    for paper in anchored:
        assert paper, "figure module lost its PAPER anchors"


def test_fig11_placement_module():
    result = fig11_placement.run(scale=TINY)
    assert isinstance(result, FigureResult)
    labels = {row.label for row in result.rows}
    assert "cache-sized (4 MiB)" in labels
    for row in result.rows:
        assert "chosen" in row.values and "best" in row.values
        assert row.values["chosen"] <= row.values["best"] * 1.001


def test_table01_rows():
    from repro.bench.table01_methods import PAPER, rows

    assert {row["method"] for row in rows()} == set(PAPER)


def test_ablation_runners_return_results():
    for runner in (
        lambda: ablations.run_batch_size(scale=TINY, batches=(1, 16)),
        lambda: ablations.run_layout(scale=TINY),
        lambda: ablations.run_hash_scheme(scale=TINY),
    ):
        result = runner()
        assert isinstance(result, FigureResult)
        assert result.rows


def test_fig19_split_sweep():
    splits = fig19_skew.run_splits(scale=TINY, splits=(0.0, 1.0))
    assert set(splits) == {0.0, 1.0}
    assert splits[1.0] > splits[0.0]


def test_fig21_phase_runner():
    phases = fig21_coprocessing.run_phases(scale=TINY)
    assert set(phases) == {"cpu", "het", "gpu+het", "gpu"}
    for times in phases.values():
        assert times["build"] > 0 and times["probe"] > 0
