"""JSON/CSV export of reproduced figures."""

import csv
import io
import json

import pytest

from repro.bench.common import FigureResult
from repro.bench.export import (
    export_csv_files,
    export_json,
    figure_to_csv,
    figure_to_dict,
)


@pytest.fixture
def figure():
    result = FigureResult(
        figure="Figure 12",
        title="transfer methods",
        paper={"coherence": {"nvlink2": 3.83}},
    )
    result.add("coherence", nvlink2=3.83)
    result.add("zero_copy", nvlink2=3.81, pcie3=0.79)
    return result


class TestJson:
    def test_dict_shape(self, figure):
        data = figure_to_dict(figure)
        assert data["figure"] == "Figure 12"
        assert data["rows"][0]["simulated"]["nvlink2"] == 3.83
        assert data["rows"][0]["paper"]["nvlink2"] == 3.83
        assert data["rows"][1]["paper"] == {}

    def test_export_json_roundtrips(self, figure):
        text = export_json([figure])
        parsed = json.loads(text)
        assert len(parsed) == 1
        assert parsed[0]["series"] == ["nvlink2", "pcie3"]


class TestCsv:
    def test_csv_rows(self, figure):
        reader = csv.reader(io.StringIO(figure_to_csv(figure)))
        rows = list(reader)
        assert rows[0] == ["label", "series", "simulated", "paper"]
        assert ["coherence", "nvlink2", "3.83", "3.83"] in rows
        # zero_copy has no paper anchor -> empty paper cell.
        assert any(r[0] == "zero_copy" and r[3] == "" for r in rows[1:])

    def test_export_csv_files(self, figure, tmp_path):
        paths = export_csv_files([figure], tmp_path)
        assert len(paths) == 1
        assert paths[0].name == "figure_12.csv"
        assert paths[0].read_text().startswith("label,series")
