"""ASCII figure charts."""

import pytest

from repro.bench.charts import render


def test_render_one_figure():
    text = render(["18"])
    assert "Figure 18" in text
    assert "█" in text


def test_unknown_figure_rejected():
    with pytest.raises(ValueError, match="available"):
        render(["99"])


def test_multiple_figures_concatenated():
    text = render(["18", "14"])
    assert "Figure 18" in text and "Figure 14" in text
