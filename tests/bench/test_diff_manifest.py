"""The manifest diff tool: identity passes, perturbations fail."""

import copy
import json
import os

from repro.bench.diff_manifest import diff_files, iter_differences, main

from tests.analysis.conftest import REPO_ROOT

BASELINE = os.path.join(REPO_ROOT, "BENCH_pr2.json")


def _runs():
    with open(BASELINE) as handle:
        return json.load(handle)["runs"]


def test_baseline_matches_itself():
    assert diff_files(BASELINE, BASELINE) == []


def test_cli_identity_exit_zero(capsys):
    assert main([BASELINE, BASELINE]) == 0
    assert "match" in capsys.readouterr().out


def test_seconds_drift_detected():
    runs = _runs()
    drifted = copy.deepcopy(runs)
    drifted[0]["phases"][0]["seconds"] *= 1.001
    diffs = list(iter_differences(drifted, runs))
    assert len(diffs) == 1
    assert "seconds" in diffs[0]


def test_small_drift_within_tolerance_passes():
    runs = _runs()
    drifted = copy.deepcopy(runs)
    drifted[0]["phases"][0]["seconds"] *= 1 + 1e-9
    assert list(iter_differences(drifted, runs)) == []


def test_bottleneck_flip_detected():
    runs = _runs()
    drifted = copy.deepcopy(runs)
    drifted[0]["phases"][0]["bottleneck"] = "compute:elsewhere"
    diffs = list(iter_differences(drifted, runs))
    assert len(diffs) == 1
    assert "bottleneck" in diffs[0]


def test_occupancy_resource_changes_detected():
    runs = _runs()
    drifted = copy.deepcopy(runs)
    occupancy = drifted[0]["phases"][0]["occupancy"]
    resource = sorted(occupancy)[0]
    occupancy[resource] *= 2.0
    occupancy["link:phantom"] = 1.0
    diffs = list(iter_differences(drifted, runs))
    assert any(resource in d for d in diffs)
    assert any("gained resource" in d for d in diffs)


def test_missing_phase_and_run_detected():
    runs = _runs()
    drifted = copy.deepcopy(runs)
    dropped_phase = drifted[0]["phases"].pop()
    dropped_run = drifted.pop()
    diffs = list(iter_differences(drifted, runs))
    assert any(
        f"phase {dropped_phase['label']!r}: missing" in d for d in diffs
    )
    assert any(
        f"run {dropped_run['kind']!r}: missing" in d for d in diffs
    )


def test_new_populated_section_flagged_in_strict_mode():
    runs = _runs()
    extended = copy.deepcopy(runs)
    extended[0]["optimizer"] = {"schema_version": "1.0", "strategy": "single"}
    diffs = list(iter_differences(extended, runs))
    assert len(diffs) == 1
    assert "'optimizer'" in diffs[0] and "new section" in diffs[0]


def test_new_populated_section_tolerated_with_allow_new_runs():
    runs = _runs()
    extended = copy.deepcopy(runs)
    extended[0]["optimizer"] = {"schema_version": "1.0", "strategy": "single"}
    assert list(iter_differences(extended, runs, allow_new_runs=True)) == []


def test_null_section_is_not_a_difference():
    # Optional sections serialize as null when unused; a schema bump
    # that adds the key with a null value must not perturb old diffs.
    runs = _runs()
    extended = copy.deepcopy(runs)
    extended[0]["optimizer"] = None
    assert list(iter_differences(extended, runs)) == []


def test_lost_section_always_detected():
    runs = _runs()
    baseline = copy.deepcopy(runs)
    baseline[0]["optimizer"] = {"schema_version": "1.0"}
    diffs = list(iter_differences(runs, baseline, allow_new_runs=True))
    assert len(diffs) == 1
    assert "'optimizer'" in diffs[0] and "lost" in diffs[0]


def test_cli_reports_failure(tmp_path, capsys):
    with open(BASELINE) as handle:
        document = json.load(handle)
    document["runs"][0]["phases"][0]["seconds"] *= 2.0
    drifted_path = tmp_path / "drifted.json"
    drifted_path.write_text(json.dumps(document))
    assert main([str(drifted_path), BASELINE]) == 1
    assert "difference" in capsys.readouterr().out
