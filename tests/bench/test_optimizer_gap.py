"""The predicted-vs-actual gap stays under the CI gate, and the
committed ``BENCH_pr8.json`` is consistent with the generator."""

import json
from pathlib import Path

import pytest

from repro.bench.optimizer_gap import (
    GAP_SCHEMA_VERSION,
    GAP_THRESHOLD,
    SCENARIOS,
    gap_document,
    run_scenario,
)

BENCH_PATH = Path(__file__).resolve().parents[2] / "BENCH_pr8.json"


def test_join_sel_gap_is_live_but_small():
    """join-sel is the scenario whose estimate is genuinely inexact
    (hinted 50% match rate vs the sampled one): the gap must be
    non-zero — proving the benchmark measures something — yet orders
    of magnitude under the gate."""
    row = run_scenario("join-sel", "ibm-ac922")
    assert row["predicted_seconds"] > 0.0
    assert row["actual_seconds"] > 0.0
    assert 0.0 < row["gap"] < GAP_THRESHOLD


def test_exactly_estimated_scenario_has_zero_gap():
    """Workload A's uniform all-match join is estimated exactly, so
    predicted and actual prices coincide bit-for-bit."""
    row = run_scenario("join-a", "ibm-ac922")
    assert row["gap"] == 0.0
    assert row["predicted_seconds"] == row["actual_seconds"]


def test_gap_document_layout():
    rows = [run_scenario("join-a", "ibm-ac922")]
    document = gap_document(rows)
    assert document["schema_version"] == GAP_SCHEMA_VERSION
    assert document["generator"] == "repro.bench.optimizer_gap"
    assert document["gap_threshold"] == GAP_THRESHOLD
    assert document["max_gap"] == rows[0]["gap"]
    assert set(rows[0]) == {
        "kind",
        "workload",
        "machine",
        "chosen",
        "considered",
        "rejected",
        "predicted_seconds",
        "actual_seconds",
        "gap",
    }


def test_committed_baseline_is_consistent():
    """BENCH_pr8.json must be a full run of the current scenario list
    with its max_gap under the gate it declares."""
    if not BENCH_PATH.exists():  # pragma: no cover
        pytest.skip("BENCH_pr8.json not committed in this checkout")
    with open(BENCH_PATH, encoding="utf-8") as handle:
        document = json.load(handle)
    assert document["schema_version"] == GAP_SCHEMA_VERSION
    assert document["gap_threshold"] == GAP_THRESHOLD
    assert document["max_gap"] <= GAP_THRESHOLD
    kinds = [row["kind"] for row in document["runs"]]
    assert kinds == [
        f"optgap[{name}@{machine}]" for name, machine in SCENARIOS
    ]
    assert document["max_gap"] == max(row["gap"] for row in document["runs"])
