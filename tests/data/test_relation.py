"""Column-oriented relations and morsels."""

import numpy as np
import pytest

from repro.data.relation import Relation
from repro.hardware.memory import MemoryKind


def make_relation(n=100, modeled=None):
    keys = np.arange(n, dtype=np.int64)
    payloads = keys * 2
    return Relation(
        name="R", key=keys, payload=payloads, modeled_tuples=modeled
    )


class TestBasics:
    def test_defaults(self):
        r = make_relation(10)
        assert r.executed_tuples == 10
        assert r.modeled_tuples == 10
        assert r.tuple_bytes == 16
        assert r.location == "cpu0-mem"
        assert r.kind is MemoryKind.PAGEABLE

    def test_modeled_bytes(self):
        r = make_relation(10, modeled=1000)
        assert r.modeled_bytes == 16000

    def test_scale_and_model_factor(self):
        r = make_relation(10, modeled=1000)
        assert r.scale == pytest.approx(0.01)
        assert r.model_factor == pytest.approx(100.0)

    def test_column_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Relation(
                name="bad",
                key=np.arange(3, dtype=np.int64),
                payload=np.arange(4, dtype=np.int64),
            )

    def test_modeled_below_executed_rejected(self):
        with pytest.raises(ValueError):
            make_relation(10, modeled=5)

    def test_two_dimensional_columns_rejected(self):
        data = np.zeros((2, 2), dtype=np.int64)
        with pytest.raises(ValueError):
            Relation(name="bad", key=data, payload=data)


class TestPlacement:
    def test_placed_changes_location_only(self):
        r = make_relation()
        moved = r.placed("gpu0-mem")
        assert moved.location == "gpu0-mem"
        assert moved.key is r.key  # zero copy
        assert r.location == "cpu0-mem"  # original untouched

    def test_placed_can_change_kind(self):
        r = make_relation()
        pinned = r.placed("cpu0-mem", kind=MemoryKind.PINNED)
        assert pinned.kind is MemoryKind.PINNED


class TestMorsels:
    def test_morsels_cover_relation(self):
        r = make_relation(100)
        morsels = list(r.morsels(30))
        assert [m.tuples for m in morsels] == [30, 30, 30, 10]
        assert morsels[0].keys[0] == 0
        assert morsels[-1].keys[-1] == 99

    def test_morsel_views_are_zero_copy(self):
        r = make_relation(10)
        morsel = next(iter(r.morsels(5)))
        assert morsel.keys.base is r.key

    def test_invalid_morsel_size(self):
        with pytest.raises(ValueError):
            list(make_relation().morsels(0))

    def test_slice_view(self):
        r = make_relation(10)
        part = r.slice(slice(2, 5))
        assert part.executed_tuples == 3
        assert list(part.key) == [2, 3, 4]

    def test_morsel_bounds_validated(self):
        from repro.data.relation import Morsel

        r = make_relation(10)
        with pytest.raises(ValueError):
            Morsel(relation=r, start=5, end=20)
