"""The eight transfer methods of Table 1."""

import pytest

from repro.costmodel.model import CostModel
from repro.hardware.memory import MemoryKind
from repro.transfer.methods import (
    TRANSFER_METHODS,
    UnsupportedTransferError,
    get_method,
)
from repro.utils.units import GIB


@pytest.fixture
def cm(ibm):
    return CostModel(ibm)


@pytest.fixture
def cm_intel(intel):
    return CostModel(intel)


class TestRegistry:
    def test_all_eight_methods_present(self):
        assert set(TRANSFER_METHODS) == {
            "pageable_copy",
            "staged_copy",
            "dynamic_pinning",
            "pinned_copy",
            "um_prefetch",
            "um_migration",
            "zero_copy",
            "coherence",
        }

    def test_get_method_unknown_raises_with_hint(self):
        with pytest.raises(UnsupportedTransferError, match="coherence"):
            get_method("warp_drive")

    def test_table1_semantics(self):
        push = {"pageable_copy", "staged_copy", "dynamic_pinning",
                "pinned_copy", "um_prefetch"}
        for name, method in TRANSFER_METHODS.items():
            expected = "push" if name in push else "pull"
            assert method.semantics == expected, name

    def test_table1_memory_kinds(self):
        assert get_method("zero_copy").required_kind is MemoryKind.PINNED
        assert get_method("pinned_copy").required_kind is MemoryKind.PINNED
        assert get_method("um_migration").required_kind is MemoryKind.UNIFIED
        assert get_method("um_prefetch").required_kind is MemoryKind.UNIFIED
        assert get_method("coherence").required_kind is MemoryKind.PAGEABLE
        assert get_method("pageable_copy").required_kind is MemoryKind.PAGEABLE

    def test_levels(self):
        assert get_method("coherence").level == "HW"
        assert get_method("zero_copy").level == "HW"
        assert get_method("um_migration").level == "OS"
        assert get_method("pinned_copy").level == "SW"


class TestSupport:
    def test_coherence_supported_on_nvlink(self, ibm):
        assert get_method("coherence").supported(ibm, "gpu0", "cpu0-mem")

    def test_coherence_unsupported_on_pcie(self, intel):
        method = get_method("coherence")
        assert not method.supported(intel, "gpu0", "cpu0-mem")
        with pytest.raises(UnsupportedTransferError):
            method.check_supported(intel, "gpu0", "cpu0-mem")

    def test_coherence_multi_hop_still_coherent(self, ibm):
        # gpu0 -> cpu1-mem crosses NVLink and X-Bus, both coherent.
        assert get_method("coherence").supported(ibm, "gpu0", "cpu1-mem")


class TestIngestBandwidth:
    def test_pull_methods_reach_link_bandwidth(self, cm):
        for name in ("coherence", "zero_copy"):
            bw = get_method(name).ingest_bandwidth(cm, "gpu0", "cpu0-mem")
            assert bw == 63 * GIB

    def test_pinned_copy_pays_dma_overhead(self, cm):
        bw = get_method("pinned_copy").ingest_bandwidth(cm, "gpu0", "cpu0-mem")
        assert 0.9 * 63 * GIB < bw < 63 * GIB

    def test_staged_copy_bound_by_staging(self, cm):
        bw = get_method("staged_copy").ingest_bandwidth(cm, "gpu0", "cpu0-mem")
        assert bw == cm.calibration.staging_bandwidth

    def test_staged_copy_on_pcie_bound_by_link(self, cm_intel):
        bw = get_method("staged_copy").ingest_bandwidth(cm_intel, "gpu0", "cpu0-mem")
        assert bw < cm_intel.calibration.staging_bandwidth

    def test_dynamic_pinning_page_size_matters(self, cm, cm_intel):
        # POWER9's 64 KiB pages amortize pinning 16x better than Intel's
        # 4 KiB pages (Figure 12: 2.36 vs 0.26 G Tuples/s).
        method = get_method("dynamic_pinning")
        ibm_bw = method.ingest_bandwidth(cm, "gpu0", "cpu0-mem")
        intel_bw = method.ingest_bandwidth(cm_intel, "gpu0", "cpu0-mem")
        assert ibm_bw > 5 * intel_bw

    def test_um_migration_fault_bound(self, cm):
        bw = get_method("um_migration").ingest_bandwidth(cm, "gpu0", "cpu0-mem")
        assert bw < 4 * GIB  # the POWER9 driver footnote

    def test_um_prefetch_platform_difference(self, cm, cm_intel):
        method = get_method("um_prefetch")
        ibm_bw = method.ingest_bandwidth(cm, "gpu0", "cpu0-mem")
        intel_bw = method.ingest_bandwidth(cm_intel, "gpu0", "cpu0-mem")
        assert intel_bw > ibm_bw  # despite the slower link!

    def test_pageable_copy_mmio_bound(self, cm):
        bw = get_method("pageable_copy").ingest_bandwidth(cm, "gpu0", "cpu0-mem")
        assert bw == cm.calibration.mmio_bandwidth["nvlink2"]

    def test_local_memory_rejected(self, cm):
        with pytest.raises(UnsupportedTransferError):
            get_method("coherence").ingest_bandwidth(cm, "gpu0", "gpu0-mem")


class TestSideEffects:
    def test_staged_copy_doubles_cpu_memory_traffic(self, ibm):
        streams = get_method("staged_copy").side_streams(
            ibm, "gpu0", "cpu0-mem", 100
        )
        assert len(streams) == 1
        assert streams[0].total_bytes == 200
        assert streams[0].processor == "cpu0"

    def test_pageable_copy_uses_cpu_thread(self, ibm):
        streams = get_method("pageable_copy").side_streams(
            ibm, "gpu0", "cpu0-mem", 100
        )
        assert streams and streams[0].processor == "cpu0"

    def test_pull_methods_have_no_side_traffic(self, ibm):
        for name in ("coherence", "zero_copy", "um_migration"):
            assert get_method(name).side_streams(ibm, "gpu0", "cpu0-mem", 1) == []

    def test_landing_semantics(self):
        assert get_method("pinned_copy").lands_in_gpu_memory()
        assert get_method("um_migration").lands_in_gpu_memory()  # pages move
        assert not get_method("zero_copy").lands_in_gpu_memory()
        assert not get_method("coherence").lands_in_gpu_memory()

    def test_pipeline_factor_push_vs_pull(self, cm):
        cal = cm.calibration
        assert get_method("coherence").pipeline_overlap_factor(cal) == 1.0
        assert get_method("pinned_copy").pipeline_overlap_factor(cal) > 1.0


class TestKindEnforcement:
    """Table 1 requires each method's source memory kind; regression:
    `required_kind` used to be advisory and never enforced."""

    def test_supported_kinds_mirror_required_kind(self):
        for method in TRANSFER_METHODS.values():
            assert method.supported_kinds() == frozenset(
                {method.required_kind}
            )

    def test_matching_kind_accepted(self, ibm):
        get_method("zero_copy").check_supported(
            ibm, "gpu0", "cpu0-mem", kind=MemoryKind.PINNED
        )
        get_method("coherence").check_supported(
            ibm, "gpu0", "cpu0-mem", kind=MemoryKind.PAGEABLE
        )

    def test_mismatched_kind_rejected(self, ibm):
        with pytest.raises(UnsupportedTransferError, match="pinned"):
            get_method("zero_copy").check_supported(
                ibm, "gpu0", "cpu0-mem", kind=MemoryKind.PAGEABLE
            )
        with pytest.raises(UnsupportedTransferError, match="unified"):
            get_method("um_migration").check_supported(
                ibm, "gpu0", "cpu0-mem", kind=MemoryKind.PAGEABLE
            )

    def test_error_names_method_and_fix(self, ibm):
        with pytest.raises(UnsupportedTransferError, match="reallocate"):
            get_method("pinned_copy").check_supported(
                ibm, "gpu0", "cpu0-mem", kind=MemoryKind.UNIFIED
            )

    def test_kind_none_skips_the_check(self, ibm):
        # Route-only validation (no allocation in hand) stays lenient.
        get_method("zero_copy").check_supported(ibm, "gpu0", "cpu0-mem")

    def test_join_rejects_wrong_allocation(self, ibm, wl_a):
        from repro.core.join.nopa import NoPartitioningJoin

        join = NoPartitioningJoin(ibm, transfer_method="zero_copy")
        with pytest.raises(UnsupportedTransferError, match="pageable"):
            join.run(wl_a.r, wl_a.s, processor="gpu0")  # default pageable

    def test_placed_for_reallocates_workload(self, ibm, wl_a):
        from repro.core.join.nopa import NoPartitioningJoin

        pinned = wl_a.placed_for("zero_copy")
        assert pinned.r.kind is MemoryKind.PINNED
        assert pinned.s.kind is MemoryKind.PINNED
        result = NoPartitioningJoin(ibm, transfer_method="zero_copy").run(
            pinned.r, pinned.s, processor="gpu0"
        )
        assert result.matches == wl_a.s.executed_tuples
