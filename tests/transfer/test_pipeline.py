"""Copy-pipeline arithmetic."""

import pytest

from repro.transfer.pipeline import chunk_sizes, iter_chunks, pipeline_makespan


class TestChunkSizes:
    def test_even_split(self):
        assert chunk_sizes(12, 3) == [4, 4, 4]

    def test_remainder_spread_over_leading_chunks(self):
        assert chunk_sizes(10, 3) == [4, 3, 3]

    def test_total_preserved(self):
        for total in (0, 1, 7, 1023):
            assert sum(chunk_sizes(total, 8)) == total

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            chunk_sizes(10, 0)
        with pytest.raises(ValueError):
            chunk_sizes(-1, 2)


class TestMakespan:
    def test_single_stage_is_its_time(self):
        assert pipeline_makespan([2.0], chunks=4) == pytest.approx(2.0)

    def test_two_stage_overlap(self):
        # Dominant stage 4s, secondary 2s, 4 chunks: 4 + 2/4 = 4.5.
        assert pipeline_makespan([2.0, 4.0], chunks=4) == pytest.approx(4.5)

    def test_more_chunks_reduce_fill_cost(self):
        few = pipeline_makespan([1.0, 4.0], chunks=2)
        many = pipeline_makespan([1.0, 4.0], chunks=32)
        assert many < few

    def test_per_chunk_overhead_grows_with_chunks(self):
        cheap = pipeline_makespan([4.0], chunks=2, per_chunk_overhead=0.1)
        costly = pipeline_makespan([4.0], chunks=16, per_chunk_overhead=0.1)
        assert costly > cheap

    def test_tied_stages_fill(self):
        # Two equal stages: one contributes fill time.
        assert pipeline_makespan([4.0, 4.0], chunks=4) == pytest.approx(5.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            pipeline_makespan([], chunks=2)
        with pytest.raises(ValueError):
            pipeline_makespan([1.0], chunks=0)
        with pytest.raises(ValueError):
            pipeline_makespan([-1.0], chunks=2)


class TestIterChunks:
    def test_covers_range_without_overlap(self):
        slices = list(iter_chunks(10, 3))
        covered = []
        for sl in slices:
            covered.extend(range(sl.start, sl.stop))
        assert covered == list(range(10))

    def test_exact_division(self):
        assert len(list(iter_chunks(8, 4))) == 2

    def test_invalid_chunk_length(self):
        with pytest.raises(ValueError):
            list(iter_chunks(10, 0))

    def test_empty_input(self):
        assert list(iter_chunks(0, 4)) == []
