"""DES pipeline simulation vs. the closed-form makespan."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.transfer.pipeline import pipeline_makespan
from repro.transfer.stream import simulate_pipeline, stream_chunks


class TestSimulatePipeline:
    def test_single_stage_is_serial(self):
        run = simulate_pipeline([100.0], total_bytes=1000, chunks=4)
        assert run.makespan == pytest.approx(10.0)

    def test_two_stages_overlap(self):
        # Stage times: 10s and 20s total over 4 chunks -> 20 + 10/4.
        run = simulate_pipeline([100.0, 50.0], total_bytes=1000, chunks=4)
        assert run.makespan == pytest.approx(22.5)

    def test_matches_closed_form_makespan(self):
        total = 10_000
        for rates, chunks in [
            ([100.0, 50.0], 8),
            ([50.0, 100.0], 8),
            ([100.0, 100.0], 16),
            ([30.0, 90.0, 60.0], 10),
        ]:
            stage_times = [total / r for r in rates]
            closed = pipeline_makespan(stage_times, chunks)
            simulated = simulate_pipeline(rates, total, chunks).makespan
            # The closed form approximates fill/drain with one chunk of
            # every non-dominant stage; the DES is exact. They agree to
            # within one chunk of the fastest stage.
            slack = min(stage_times) / chunks
            assert simulated == pytest.approx(closed, abs=2 * slack)

    def test_per_chunk_overhead_charged(self):
        plain = simulate_pipeline([100.0], 1000, 4).makespan
        priced = simulate_pipeline(
            [100.0], 1000, 4, per_chunk_overhead=1.0
        ).makespan
        assert priced == pytest.approx(plain + 4.0)

    def test_all_chunks_complete_every_stage(self):
        run = simulate_pipeline([10.0, 20.0, 30.0], 999, 7)
        for stage in run.stages:
            assert stage.chunks_done == 7

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_pipeline([], 10, 2)
        with pytest.raises(ValueError):
            simulate_pipeline([0.0], 10, 2)
        with pytest.raises(ValueError):
            simulate_pipeline([1.0], 10, 2, stage_names=["a", "b"])

    @given(
        rates=st.lists(st.floats(1.0, 1000.0), min_size=1, max_size=4),
        chunks=st.integers(1, 64),
        total=st.integers(1, 10**6),
    )
    @settings(max_examples=40, deadline=None)
    def test_des_bounded_by_serial_and_bottleneck(self, rates, chunks, total):
        run = simulate_pipeline(rates, total, chunks)
        stage_times = [total / r for r in rates]
        assert run.makespan >= max(stage_times) - 1e-9
        assert run.makespan <= sum(stage_times) + 1e-6


class TestStreamChunks:
    def test_delivers_everything_in_order(self):
        data = np.arange(1000)
        seen = []
        chunks = stream_chunks(data, 128, seen.append)
        assert chunks == 8
        assert np.array_equal(np.concatenate(seen), data)

    def test_consumer_sees_views(self):
        data = np.arange(10)
        views = []
        stream_chunks(data, 4, views.append)
        assert views[0].base is data

    def test_empty_input(self):
        assert stream_chunks(np.array([]), 4, lambda _: None) == 0

    def test_streaming_join_probe(self, ibm, wl_a):
        """Chunked probing equals whole-array probing."""
        from repro.core.hashtable import create_hash_table

        table = create_hash_table(
            "perfect", wl_a.r.executed_tuples, np.int64, np.int64
        )
        table.insert_batch(wl_a.r.key, wl_a.r.payload)
        matches = 0

        def probe(chunk):
            nonlocal matches
            found, _ = table.lookup_batch(chunk)
            matches += int(found.sum())

        stream_chunks(wl_a.s.key, 10_000, probe)
        assert matches == wl_a.s.executed_tuples
