"""Custom workloads from user arrays."""

import numpy as np
import pytest

from repro.core.join.nopa import NoPartitioningJoin
from repro.workloads.custom import inspect_build_keys, make_join_workload


class TestInspection:
    def test_dense_unique_recommends_perfect(self):
        rec = inspect_build_keys(np.random.default_rng(0).permutation(100))
        assert rec.recommended == "perfect"
        assert rec.dense and rec.unique

    def test_sparse_unique_recommends_open_addressing(self):
        rec = inspect_build_keys(np.array([1, 5, 1000], dtype=np.int64))
        assert rec.recommended == "open_addressing"
        assert not rec.dense and rec.unique

    def test_duplicates_recommend_chaining(self):
        rec = inspect_build_keys(np.array([1, 1, 2], dtype=np.int64))
        assert rec.recommended == "chaining"
        assert not rec.unique

    def test_empty(self):
        rec = inspect_build_keys(np.array([], dtype=np.int64))
        assert rec.recommended == "open_addressing"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            inspect_build_keys(np.array([-1, 2], dtype=np.int64))

    def test_two_dimensional_rejected(self):
        with pytest.raises(ValueError):
            inspect_build_keys(np.zeros((2, 2), dtype=np.int64))


class TestMakeWorkload:
    def test_roundtrip_through_join(self, ibm):
        rng = np.random.default_rng(1)
        r_keys = rng.permutation(500).astype(np.int64)
        s_keys = rng.integers(0, 500, 5000).astype(np.int64)
        workload, rec = make_join_workload(r_keys, s_keys)
        join = NoPartitioningJoin(
            ibm, hash_table_placement="gpu", hash_scheme=rec.recommended
        )
        res = join.run(workload.r, workload.s)
        assert res.matches == 5000

    def test_sparse_keys_work_with_recommended_scheme(self, ibm):
        r_keys = (np.arange(300, dtype=np.int64) * 977 + 13)  # sparse
        s_keys = np.repeat(r_keys, 3)
        workload, rec = make_join_workload(r_keys, s_keys)
        assert rec.recommended == "open_addressing"
        join = NoPartitioningJoin(
            ibm, hash_table_placement="gpu", hash_scheme=rec.recommended
        )
        res = join.run(workload.r, workload.s)
        assert res.matches == len(s_keys)

    def test_measured_selectivity(self):
        workload, _ = make_join_workload(
            np.arange(10, dtype=np.int64),
            np.array([0, 1, 99, 98], dtype=np.int64),
        )
        assert workload.selectivity == pytest.approx(0.5)

    def test_duplicate_build_keys_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            make_join_workload(
                np.array([1, 1], dtype=np.int64),
                np.array([1], dtype=np.int64),
            )

    def test_modeled_cardinalities(self):
        workload, _ = make_join_workload(
            np.arange(10, dtype=np.int64),
            np.arange(10, dtype=np.int64),
            modeled_r=10**6,
            modeled_s=10**7,
        )
        assert workload.r.modeled_tuples == 10**6
        assert workload.s.modeled_tuples == 10**7

    def test_custom_payloads(self):
        workload, _ = make_join_workload(
            np.arange(4, dtype=np.int64),
            np.arange(4, dtype=np.int64),
            r_payload=np.full(4, 9, dtype=np.int64),
        )
        assert (workload.r.payload == 9).all()
