"""Workload validation checks."""

import numpy as np
import pytest

from repro.data.relation import Relation
from repro.workloads.builders import (
    JoinWorkload,
    workload_a,
    workload_selectivity,
    workload_skewed,
)
from repro.workloads.validation import assert_valid, validate_workload

SCALE = 2.0**-14


class TestGeneratedWorkloadsPass:
    def test_workload_a(self):
        report = validate_workload(workload_a(scale=SCALE))
        assert report.ok, report.failures
        assert report.match_rate == 1.0

    @pytest.mark.parametrize("sel", [0.0, 0.5, 1.0])
    def test_selectivity_variants(self, sel):
        report = validate_workload(workload_selectivity(sel, scale=SCALE))
        assert report.ok, report.failures

    @pytest.mark.parametrize("z", [0.0, 1.5])
    def test_skew_variants(self, z):
        report = validate_workload(workload_skewed(z, scale=SCALE))
        assert report.ok, report.failures

    def test_assert_valid_passes(self):
        assert_valid(workload_a(scale=SCALE))


class TestBrokenWorkloadsFail:
    def _workload(self, r_keys, s_keys, selectivity=1.0, zipf=0.0):
        r_keys = np.asarray(r_keys, dtype=np.int64)
        s_keys = np.asarray(s_keys, dtype=np.int64)
        return JoinWorkload(
            name="broken",
            r=Relation(name="R", key=r_keys, payload=r_keys.copy()),
            s=Relation(name="S", key=s_keys, payload=s_keys.copy()),
            selectivity=selectivity,
            zipf_exponent=zipf,
        )

    def test_duplicate_primary_keys_detected(self):
        wl = self._workload([0, 1, 1, 3], [0, 1])
        report = validate_workload(wl)
        assert not report.ok
        assert any("r-keys-unique" in f for f in report.failures)

    def test_sparse_domain_detected(self):
        wl = self._workload([0, 1, 2, 100], [0, 1])
        report = validate_workload(wl)
        assert any("r-keys-dense" in f for f in report.failures)

    def test_wrong_selectivity_detected(self):
        # Declared 1.0 but half the foreign keys miss.
        wl = self._workload(np.arange(10), [0, 1, 50, 60])
        report = validate_workload(wl)
        assert any("selectivity" in f for f in report.failures)
        assert report.match_rate == pytest.approx(0.5)

    def test_missing_skew_detected(self):
        # Declared zipf 1.5 but uniform keys over a large domain.
        n = 20_000
        rng = np.random.default_rng(0)
        wl = self._workload(
            np.arange(n), rng.integers(0, n, 100_000), zipf=1.5
        )
        report = validate_workload(wl)
        assert any("skew-concentration" in f for f in report.failures)

    def test_assert_valid_raises(self):
        wl = self._workload([0, 0], [0])
        with pytest.raises(AssertionError, match="r-keys-unique"):
            assert_valid(wl)

    def test_report_str(self):
        report = validate_workload(workload_a(scale=SCALE))
        assert "ok" in str(report)
