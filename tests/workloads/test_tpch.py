"""TPC-H lineitem generator for Q6."""

import numpy as np
import pytest

from repro.workloads.tpch import (
    BYTES_PER_ROW,
    Q6_DISCOUNT_HI,
    Q6_DISCOUNT_LO,
    Q6_QUANTITY_LT,
    Q6_SHIPDATE_HI,
    Q6_SHIPDATE_LO,
    ROWS_PER_SF,
    SHIPDATE_DAYS,
    lineitem_q6,
)


class TestSizes:
    def test_modeled_rows_track_scale_factor(self):
        wl = lineitem_q6(scale_factor=100, scale=2**-10)
        assert wl.modeled_rows == 100 * ROWS_PER_SF

    def test_working_set_matches_paper(self):
        # SF 100 = 8.9 GiB, SF 1000 = 89.4 GiB (Section 7.2.4).
        wl = lineitem_q6(scale_factor=100, scale=2**-10)
        assert wl.modeled_bytes / 2**30 == pytest.approx(8.94, rel=0.01)
        wl = lineitem_q6(scale_factor=1000, scale=2**-10)
        assert wl.modeled_bytes / 2**30 == pytest.approx(89.4, rel=0.01)

    def test_sixteen_bytes_per_row(self):
        wl = lineitem_q6(scale_factor=1, scale=1.0)
        total = sum(c.dtype.itemsize for c in wl.columns().values())
        assert total == BYTES_PER_ROW

    def test_model_factor(self):
        wl = lineitem_q6(scale_factor=10, scale=2**-6)
        assert wl.model_factor == pytest.approx(
            wl.modeled_rows / wl.executed_rows
        )


class TestColumns:
    @pytest.fixture(scope="class")
    def wl(self):
        return lineitem_q6(scale_factor=1, scale=2**-4)

    def test_domains(self, wl):
        assert wl.shipdate.min() >= 0
        assert wl.shipdate.max() < SHIPDATE_DAYS
        assert wl.quantity.min() >= 1
        assert wl.quantity.max() <= 50
        assert wl.discount.min() >= 0.0
        assert wl.discount.max() <= 0.10 + 1e-6

    def test_discount_is_percent_steps(self, wl):
        cents = np.round(wl.discount * 100)
        assert np.allclose(wl.discount, cents / 100, atol=1e-6)

    def test_shipdates_are_clustered(self, wl):
        # Sorted-with-jitter generation: a local window has a much
        # narrower date range than the full column.
        window = wl.shipdate[:1024]
        assert window.max() - window.min() < SHIPDATE_DAYS / 3

    def test_q6_selectivity_near_paper(self, wl):
        qualifies = (
            (wl.shipdate >= Q6_SHIPDATE_LO)
            & (wl.shipdate < Q6_SHIPDATE_HI)
            & (wl.discount >= Q6_DISCOUNT_LO - 1e-6)
            & (wl.discount <= Q6_DISCOUNT_HI + 1e-6)
            & (wl.quantity < Q6_QUANTITY_LT)
        )
        # ~1/7 x 3/11 x 23/50 = 1.8%; the paper reports ~1.3%.
        assert 0.005 < qualifies.mean() < 0.035

    def test_zero_jitter_is_sorted(self):
        wl = lineitem_q6(scale_factor=1, scale=2**-6, shipdate_jitter_days=0)
        assert np.all(np.diff(wl.shipdate) >= 0)


class TestValidation:
    def test_bad_scale_factor(self):
        with pytest.raises(ValueError):
            lineitem_q6(scale_factor=0)

    def test_bad_scale(self):
        with pytest.raises(ValueError):
            lineitem_q6(scale_factor=1, scale=0)

    def test_deterministic(self):
        a = lineitem_q6(scale_factor=1, scale=2**-6, seed=9)
        b = lineitem_q6(scale_factor=1, scale=2**-6, seed=9)
        assert np.array_equal(a.shipdate, b.shipdate)
        assert np.array_equal(a.extendedprice, b.extendedprice)
