"""Workload generators (Table 2 and variants)."""

import numpy as np
import pytest

from repro.workloads.builders import (
    CARDINALITY_A_R,
    CARDINALITY_A_S,
    CARDINALITY_B_R,
    CARDINALITY_C,
    workload_a,
    workload_b,
    workload_c,
    workload_ratio,
    workload_selectivity,
    workload_skewed,
)

SCALE = 2.0**-13


class TestTable2:
    def test_workload_a_cardinalities(self):
        wl = workload_a(scale=SCALE)
        assert wl.r.modeled_tuples == CARDINALITY_A_R == 2**27
        assert wl.s.modeled_tuples == CARDINALITY_A_S == 2**31

    def test_workload_a_sizes(self):
        wl = workload_a(scale=SCALE)
        assert wl.r.modeled_bytes == 2 * 2**30  # 2 GiB
        assert wl.s.modeled_bytes == 32 * 2**30  # 32 GiB

    def test_workload_b_r_is_cache_sized(self):
        wl = workload_b(scale=SCALE)
        assert wl.r.modeled_tuples == CARDINALITY_B_R
        assert wl.r.modeled_bytes == 4 * 2**20  # 4 MiB

    def test_workload_b_r_not_shrunk_by_size_scale(self):
        wl = workload_b(scale=SCALE, size_scale=0.5)
        assert wl.r.modeled_tuples == CARDINALITY_B_R
        assert wl.s.modeled_tuples == 2**30

    def test_workload_c_equal_cardinalities(self):
        wl = workload_c(scale=SCALE)
        assert wl.r.modeled_tuples == wl.s.modeled_tuples == CARDINALITY_C

    def test_workload_c_tuple_widths(self):
        assert workload_c(scale=SCALE).r.tuple_bytes == 8  # Table 2: 4/4
        assert workload_c(scale=SCALE, tuple_bytes=16).r.tuple_bytes == 16

    def test_workload_c_rejects_other_widths(self):
        with pytest.raises(ValueError):
            workload_c(scale=SCALE, tuple_bytes=12)


class TestGenerationInvariants:
    def test_r_keys_are_unique_dense_permutation(self):
        wl = workload_a(scale=SCALE)
        keys = np.sort(wl.r.key)
        assert np.array_equal(keys, np.arange(wl.r.executed_tuples))

    def test_every_s_tuple_has_exactly_one_match(self):
        wl = workload_a(scale=SCALE)
        assert np.isin(wl.s.key, wl.r.key).all()

    def test_payload_encodes_key(self):
        wl = workload_a(scale=SCALE)
        assert np.array_equal(
            wl.r.payload, wl.r.key.astype(np.int64) * 3 + 1
        )

    def test_deterministic_per_seed(self):
        a1 = workload_a(scale=SCALE, seed=7)
        a2 = workload_a(scale=SCALE, seed=7)
        a3 = workload_a(scale=SCALE, seed=8)
        assert np.array_equal(a1.s.key, a2.s.key)
        assert not np.array_equal(a1.s.key, a3.s.key)

    def test_scale_bounds(self):
        with pytest.raises(ValueError):
            workload_a(scale=0.0)
        with pytest.raises(ValueError):
            workload_a(scale=1.5)


class TestSelectivity:
    def test_match_rate_tracks_selectivity(self):
        for sel in (0.0, 0.3, 1.0):
            wl = workload_selectivity(sel, scale=SCALE)
            rate = np.isin(wl.s.key, wl.r.key).mean()
            assert rate == pytest.approx(sel, abs=0.02)

    def test_r_cardinality_constant_across_selectivities(self):
        low = workload_selectivity(0.1, scale=SCALE)
        high = workload_selectivity(0.9, scale=SCALE)
        assert low.r.executed_tuples == high.r.executed_tuples

    def test_invalid_selectivity_rejected(self):
        with pytest.raises(ValueError):
            workload_selectivity(1.5, scale=SCALE)


class TestSkew:
    def test_zipf_concentrates_on_hot_keys(self):
        wl = workload_skewed(1.5, scale=SCALE)
        _, counts = np.unique(wl.s.key, return_counts=True)
        top = np.sort(counts)[::-1][:1000].sum() / wl.s.executed_tuples
        assert top > 0.8  # paper: 97.5% at full scale

    def test_zero_exponent_is_roughly_uniform(self):
        wl = workload_skewed(0.0, scale=SCALE)
        _, counts = np.unique(wl.s.key, return_counts=True)
        assert counts.max() / counts.mean() < 5

    def test_hot_set_profile_exposed(self):
        assert workload_skewed(1.0, scale=SCALE).hot_set_profile() is not None
        assert workload_a(scale=SCALE).hot_set_profile() is None

    def test_skewed_keys_still_match(self):
        wl = workload_skewed(1.5, scale=SCALE)
        assert np.isin(wl.s.key, wl.r.key).all()


class TestRatio:
    def test_ratio_shapes(self):
        wl = workload_ratio(8, scale=SCALE)
        assert wl.s.modeled_tuples == 8 * wl.r.modeled_tuples

    def test_ratio_one(self):
        wl = workload_ratio(1, scale=SCALE)
        assert wl.s.modeled_tuples == wl.r.modeled_tuples

    def test_ratio_tuples_are_16_bytes(self):
        assert workload_ratio(2, scale=SCALE).r.tuple_bytes == 16

    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            workload_ratio(0, scale=SCALE)

    def test_totals(self):
        wl = workload_ratio(4, scale=SCALE)
        assert wl.total_modeled_tuples == 5 * wl.r.modeled_tuples
        assert wl.total_modeled_bytes == wl.r.modeled_bytes + wl.s.modeled_bytes
