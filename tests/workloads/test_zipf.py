"""Zipf sampling and empirical hot-set profiles."""

import numpy as np
import pytest

from repro.workloads.zipf import empirical_hot_mass, top_k_mass, zipf_ranks


class TestZipfRanks:
    def test_ranks_in_range(self):
        ranks = zipf_ranks(1000, 1.2, 10000, np.random.default_rng(1))
        assert ranks.min() >= 0
        assert ranks.max() < 1000

    def test_zero_exponent_uniform(self):
        rng = np.random.default_rng(2)
        ranks = zipf_ranks(100, 0.0, 100_000, rng)
        _, counts = np.unique(ranks, return_counts=True)
        assert counts.max() / counts.mean() < 1.5

    def test_rank_zero_is_hottest(self):
        rng = np.random.default_rng(3)
        ranks = zipf_ranks(1000, 1.5, 50_000, rng)
        values, counts = np.unique(ranks, return_counts=True)
        assert values[np.argmax(counts)] == 0

    def test_frequency_follows_power_law(self):
        rng = np.random.default_rng(4)
        ranks = zipf_ranks(10_000, 1.0, 500_000, rng)
        count0 = (ranks == 0).sum()
        count9 = (ranks == 9).sum()
        # pmf(0)/pmf(9) = 10 under exponent 1.0.
        assert count0 / max(count9, 1) == pytest.approx(10.0, rel=0.3)

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            zipf_ranks(0, 1.0, 10, rng)
        with pytest.raises(ValueError):
            zipf_ranks(10, -1.0, 10, rng)
        with pytest.raises(ValueError):
            zipf_ranks(10, 1.0, -1, rng)

    def test_empty_sample(self):
        assert len(zipf_ranks(10, 1.0, 0, np.random.default_rng(0))) == 0


class TestEmpiricalHotMass:
    def test_matches_observed_frequencies(self):
        keys = np.array([0, 0, 0, 1, 1, 2])
        profile = empirical_hot_mass(keys)
        assert profile.distinct_targets == 3
        assert profile.mass_of_top(1) == pytest.approx(0.5)
        assert profile.mass_of_top(2) == pytest.approx(5 / 6)
        assert profile.mass_of_top(3) == 1.0

    def test_beyond_distinct_is_one(self):
        profile = empirical_hot_mass(np.array([1, 2, 3]))
        assert profile.mass_of_top(10) == 1.0

    def test_zero_is_zero(self):
        profile = empirical_hot_mass(np.array([1]))
        assert profile.mass_of_top(0) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            empirical_hot_mass(np.array([]))

    def test_fractional_k_interpolates_linearly(self):
        # counts sorted descending: [3, 2, 1] of 6 accesses total
        profile = empirical_hot_mass(np.array([0, 0, 0, 1, 1, 2]))
        # halfway between mass(1)=1/2 and mass(2)=5/6
        assert profile.mass_of_top(1.5) == pytest.approx(2 / 3)
        # a quarter of the way between mass(2)=5/6 and mass(3)=1
        assert profile.mass_of_top(2.25) == pytest.approx(5 / 6 + 0.25 * 1 / 6)
        # fractional k below one interpolates from zero
        assert profile.mass_of_top(0.5) == pytest.approx(0.25)

    def test_fractional_k_monotone_and_bounded(self):
        rng = np.random.default_rng(9)
        profile = empirical_hot_mass(zipf_ranks(500, 1.2, 20_000, rng))
        ks = np.linspace(0.0, profile.distinct_targets + 2, 301)
        masses = [profile.mass_of_top(float(k)) for k in ks]
        assert all(b >= a for a, b in zip(masses, masses[1:]))
        assert masses[0] == 0.0
        assert masses[-1] == 1.0

    def test_empirical_close_to_analytic(self):
        rng = np.random.default_rng(5)
        n = 10_000
        ranks = zipf_ranks(n, 1.5, 400_000, rng)
        empirical = empirical_hot_mass(ranks)
        analytic = top_k_mass(1.5, n, 100)
        assert empirical.mass_of_top(100) == pytest.approx(analytic, rel=0.05)
