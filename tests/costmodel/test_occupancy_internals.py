"""White-box tests of the occupancy accounting.

These pin the cost model's internal arithmetic — wire bytes, sector
granularity, header overheads, cache-tier selection — so refactors
cannot silently change what a stream costs.
"""

import pytest

from repro.costmodel.access import (
    AccessProfile,
    atomic_stream,
    random_stream,
    seq_stream,
)
from repro.costmodel.model import CostModel
from repro.hardware.cache import HotSetProfile
from repro.utils.units import GIB


@pytest.fixture
def cm(ibm):
    return CostModel(ibm)


class TestSequentialAccounting:
    def test_link_and_memory_charged_same_bytes(self, cm):
        stream = seq_stream("gpu0", "cpu0-mem", 63 * GIB)
        occupancy = cm.stream_occupancy(stream)
        link_key = next(k for k in occupancy if k.startswith("link:"))
        assert occupancy[link_key] == pytest.approx(1.0)  # 63 GiB / 63 GiB/s
        assert occupancy["mem:cpu0-mem"] == pytest.approx(63 / 117, rel=1e-6)

    def test_multi_hop_charges_every_link(self, cm):
        stream = seq_stream("gpu0", "gpu1-mem", GIB)
        occupancy = cm.stream_occupancy(stream)
        link_keys = [k for k in occupancy if k.startswith("link:")]
        assert len(link_keys) == 3  # NVLink + X-Bus + NVLink


class TestRandomAccounting:
    def test_sector_floor_applied(self, cm):
        # 8-byte accesses are billed at the 32-byte sector on the wire.
        small = random_stream("gpu0", "cpu0-mem", 1e9, 8)
        large = random_stream("gpu0", "cpu0-mem", 1e9, 32)
        occ_small = cm.stream_occupancy(small)
        occ_large = cm.stream_occupancy(large)
        link = next(k for k in occ_small if k.startswith("link:"))
        assert occ_small[link] == pytest.approx(occ_large[link])

    def test_wire_bytes_include_headers(self, cm):
        # At high access counts the NVLink wire time is (32+16) bytes
        # per access over 63 GiB/s — when that exceeds the queue bound.
        accesses = 10e9
        stream = random_stream("gpu0", "cpu0-mem", accesses, 32)
        occupancy = cm.stream_occupancy(stream)
        link = next(k for k in occupancy if k.startswith("link:nvlink2"))
        queue_time = accesses / cm.link_random_rate(
            cm.machine.path("gpu0", "cpu0-mem")[0]
        )
        wire_time = accesses * (32 + 16) / (63 * GIB)
        assert occupancy[link] == pytest.approx(max(queue_time, wire_time))

    def test_issue_resource_per_processor(self, cm):
        stream = random_stream("cpu0", "cpu0-mem", 1.15e9, 8)
        occupancy = cm.stream_occupancy(stream)
        assert occupancy["issue:cpu0"] == pytest.approx(1.0, rel=0.02)

    def test_cache_hits_do_not_touch_memory(self, cm):
        # A fully L2-cached working set leaves (almost) no memory load.
        stream = random_stream(
            "gpu0", "gpu0-mem", 1e9, 8, working_set_bytes=1 << 20
        )
        occupancy = cm.stream_occupancy(stream)
        assert occupancy.get("mem:gpu0-mem", 0.0) == 0.0
        assert occupancy["cache:gpu0:l2"] > 0

    def test_partial_hot_set_splits_traffic(self, cm):
        hot = HotSetProfile.zipf(2**27, 1.0)  # partial hit rate
        stream = random_stream(
            "gpu0", "cpu0-mem", 1e9, 8,
            working_set_bytes=2 * GIB, hot_set=hot,
        )
        occupancy = cm.stream_occupancy(stream)
        assert occupancy["cache:gpu0:l1"] > 0
        assert any(k.startswith("link:") and v > 0 for k, v in occupancy.items())


class TestAtomicAccounting:
    def test_atomic_queue_on_memory(self, cm):
        stream = atomic_stream("gpu0", "gpu0-mem", 1.7e9, 16)
        occupancy = cm.stream_occupancy(stream)
        assert occupancy["mem:gpu0-mem"] == pytest.approx(1.0, rel=1e-6)

    def test_remote_atomics_charge_the_link(self, cm):
        stream = atomic_stream("gpu0", "cpu0-mem", 0.45e9, 16)
        occupancy = cm.stream_occupancy(stream)
        link = next(k for k in occupancy if k.startswith("link:nvlink2"))
        assert occupancy[link] >= 1.0 - 1e-9

    def test_contended_label_slows_stream(self, cm):
        free = atomic_stream("cpu0", "cpu0-mem", 1e9, 8)
        contended = atomic_stream("cpu0", "cpu0-mem", 1e9, 8, contended=True)
        t_free = cm.stream_occupancy(free)["mem:cpu0-mem"]
        t_contended = cm.stream_occupancy(contended)["mem:cpu0-mem"]
        assert t_contended == pytest.approx(
            t_free / cm.calibration.shared_build_contention
        )


class TestPhaseAssembly:
    def test_bottleneck_reported_correctly(self, cm):
        profile = AccessProfile(
            streams=[
                seq_stream("gpu0", "cpu0-mem", 63 * GIB),  # 1.0 s on NVLink
                random_stream("gpu0", "gpu0-mem", 1e9, 8),  # ~0.1 s on HBM
            ]
        )
        cost = cm.phase_cost(profile)
        assert cost.bottleneck.startswith("link:nvlink2")

    def test_occupancy_additive_across_streams(self, cm):
        one = AccessProfile(streams=[seq_stream("gpu0", "cpu0-mem", GIB)])
        two = AccessProfile(
            streams=[
                seq_stream("gpu0", "cpu0-mem", GIB),
                seq_stream("gpu0", "cpu0-mem", GIB),
            ]
        )
        occ_one = cm.profile_occupancy(one)
        occ_two = cm.profile_occupancy(two)
        for key, value in occ_one.items():
            assert occ_two[key] == pytest.approx(2 * value)
