"""The dual-cardinality contract: traffic is linear in tuple count.

The functional layer executes at a small scale; the cost model prices
the modeled (paper-scale) cardinality by scaling the measured traffic
linearly.  These tests verify the contract: running the same workload
at two execution scales must produce (nearly) identical *modeled*
costs, for every operator.
"""

import pytest

from repro.core.join.nopa import NoPartitioningJoin
from repro.core.join.radix import RadixJoin
from repro.core.ops.q6 import TpchQ6
from repro.workloads.builders import workload_a, workload_c
from repro.workloads.tpch import lineitem_q6


class TestNopaScaleInvariance:
    @pytest.mark.parametrize("placement", ["gpu", "cpu"])
    def test_throughput_independent_of_execution_scale(self, ibm, placement):
        results = []
        for scale in (2.0**-14, 2.0**-12):
            wl = workload_a(scale=scale)
            join = NoPartitioningJoin(ibm, hash_table_placement=placement)
            results.append(join.run(wl.r, wl.s).throughput_gtuples)
        assert results[0] == pytest.approx(results[1], rel=0.02)

    def test_cpu_processor_scale_invariant(self, ibm):
        results = []
        for scale in (2.0**-14, 2.0**-12):
            wl = workload_c(scale=scale)
            join = NoPartitioningJoin(ibm, hash_table_placement="cpu")
            results.append(
                join.run(wl.r, wl.s, processor="cpu0").throughput_gtuples
            )
        assert results[0] == pytest.approx(results[1], rel=0.02)

    def test_stream_volumes_scale_with_model_factor(self, ibm):
        wl = workload_a(scale=2.0**-14)
        join = NoPartitioningJoin(ibm, hash_table_placement="gpu")
        res = join.run(wl.r, wl.s)
        # The probe phase must price the full modeled S, not the
        # executed sample: ~32 GiB over NVLink ~= 0.51 s.
        assert res.probe_cost.seconds == pytest.approx(0.52, rel=0.05)


class TestRadixScaleInvariance:
    def test_radix_scale_invariant(self, ibm):
        results = []
        for scale in (2.0**-14, 2.0**-12):
            wl = workload_a(scale=scale)
            results.append(RadixJoin(ibm).run(wl.r, wl.s).throughput_gtuples)
        assert results[0] == pytest.approx(results[1], rel=0.02)


class TestQ6ScaleInvariance:
    @pytest.mark.parametrize("variant", ["predicated", "branching"])
    def test_q6_scale_invariant(self, ibm, variant):
        results = []
        for scale in (2.0**-11, 2.0**-9):
            wl = lineitem_q6(scale_factor=100, scale=scale)
            op = TpchQ6(ibm, variant=variant)
            results.append(op.run(wl, processor="gpu0").throughput_gtuples)
        # Branching line fractions are measured on the sample, so allow
        # a little sampling noise.
        assert results[0] == pytest.approx(results[1], rel=0.05)

    def test_modeled_rows_priced_not_executed(self, ibm):
        wl = lineitem_q6(scale_factor=100, scale=2.0**-10)
        res = TpchQ6(ibm, variant="predicated").run(wl, processor="cpu0")
        assert res.modeled_rows == 600_000_000
        assert res.runtime > 0.05  # pricing 8.9 GiB, not the tiny sample
