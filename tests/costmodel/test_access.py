"""Access streams and profiles."""

import pytest

from repro.costmodel.access import (
    AccessPattern,
    AccessProfile,
    atomic_stream,
    random_stream,
    seq_stream,
)


class TestStreams:
    def test_seq_stream_payload(self):
        s = seq_stream("gpu0", "cpu0-mem", 1024)
        assert s.pattern is AccessPattern.SEQUENTIAL
        assert s.payload_bytes == 1024

    def test_random_stream_payload(self):
        s = random_stream("gpu0", "gpu0-mem", accesses=100, access_bytes=8)
        assert s.payload_bytes == 800

    def test_atomic_contended_label(self):
        s = atomic_stream("cpu0", "cpu0-mem", 10, 16, contended=True)
        assert "[contended]" in s.label

    def test_atomic_uncontended_label(self):
        s = atomic_stream("cpu0", "cpu0-mem", 10, 16, label="insert")
        assert "[contended]" not in s.label

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            seq_stream("p", "m", -1)

    def test_negative_accesses_rejected(self):
        with pytest.raises(ValueError):
            random_stream("p", "m", accesses=-1, access_bytes=8)

    def test_bad_bandwidth_factor_rejected(self):
        with pytest.raises(ValueError):
            seq_stream("p", "m", 10, bandwidth_factor=0.0)


class TestScaling:
    def test_scaled_multiplies_volumes(self):
        s = random_stream("p", "m", accesses=10, access_bytes=4,
                          working_set_bytes=100)
        scaled = s.scaled(8.0)
        assert scaled.accesses == 80
        assert scaled.access_bytes == 4
        assert scaled.working_set_bytes == 100  # structure size unchanged

    def test_seq_scaled(self):
        assert seq_stream("p", "m", 10).scaled(3.0).total_bytes == 30

    def test_negative_factor_rejected(self):
        with pytest.raises(ValueError):
            seq_stream("p", "m", 10).scaled(-1.0)


class TestProfile:
    def test_add_and_extend(self):
        profile = AccessProfile()
        profile.add(seq_stream("p", "m", 10))
        profile.extend([seq_stream("p", "m", 20)])
        assert profile.total_payload_bytes == 30

    def test_scaled_profile(self):
        profile = AccessProfile(
            streams=[seq_stream("p", "m", 10)], compute_tuples=5,
            makespan_factor=1.1,
        )
        scaled = profile.scaled(2.0)
        assert scaled.total_payload_bytes == 20
        assert scaled.compute_tuples == 10
        assert scaled.makespan_factor == 1.1
