"""Cost-model semantics: routing, occupancy, bottlenecks, caches."""

import pytest

from repro.costmodel.access import (
    AccessProfile,
    atomic_stream,
    random_stream,
    seq_stream,
)
from repro.costmodel.model import CostModel
from repro.hardware.cache import HotSetProfile
from repro.utils.units import GIB


@pytest.fixture
def cm(ibm):
    return CostModel(ibm)


@pytest.fixture
def cm_intel(intel):
    return CostModel(intel)


class TestPrimitives:
    def test_sequential_bandwidth_local(self, cm):
        assert cm.sequential_bandwidth("cpu0", "cpu0-mem") == 117 * GIB

    def test_sequential_bandwidth_over_nvlink(self, cm):
        assert cm.sequential_bandwidth("gpu0", "cpu0-mem") == 63 * GIB

    def test_sequential_bandwidth_min_over_path(self, cm):
        # gpu0 -> cpu1-mem crosses NVLink (63) and X-Bus (31).
        assert cm.sequential_bandwidth("gpu0", "cpu1-mem") == 31 * GIB

    def test_path_latency_accumulates(self, cm):
        local = cm.path_latency("cpu0", "cpu0-mem")
        remote = cm.path_latency("gpu0", "cpu0-mem")
        assert remote == pytest.approx(local + 434e-9)

    def test_random_rate_local_gpu(self, cm):
        # HBM's independent random capacity ~ 8.9e9 accesses/s.
        rate = cm.random_access_rate("gpu0", "gpu0-mem")
        assert rate == pytest.approx(9.6e9, rel=0.05)

    def test_random_rate_over_nvlink(self, cm):
        rate = cm.random_access_rate("gpu0", "cpu0-mem")
        assert rate == pytest.approx(1.35e9, rel=0.05)

    def test_random_rate_over_pcie_much_lower(self, cm_intel):
        rate = cm_intel.random_access_rate("gpu0", "cpu0-mem")
        assert rate == pytest.approx(0.054e9, rel=0.05)

    def test_extra_hops_reduce_rate(self, cm):
        one = cm.random_access_rate("gpu0", "cpu0-mem")
        two = cm.random_access_rate("gpu0", "cpu1-mem")
        three = cm.random_access_rate("gpu0", "gpu1-mem")
        assert one > two >= three

    def test_atomic_rate_local_gpu(self, cm):
        assert cm.atomic_rate("gpu0", "gpu0-mem") == pytest.approx(1.7e9)

    def test_atomic_rate_over_nvlink(self, cm):
        assert cm.atomic_rate("gpu0", "cpu0-mem") == pytest.approx(0.45e9)

    def test_contended_atomics_slower(self, cm):
        free = cm.atomic_rate("cpu0", "cpu0-mem")
        contended = cm.atomic_rate("cpu0", "cpu0-mem", contended=True)
        assert contended < free


class TestSequentialOccupancy:
    def test_local_scan_occupancy(self, cm):
        profile = AccessProfile(streams=[seq_stream("cpu0", "cpu0-mem", 117 * GIB)])
        cost = cm.phase_cost(profile)
        assert cost.seconds == pytest.approx(1.0, rel=0.02)
        assert cost.bottleneck == "mem:cpu0-mem"

    def test_remote_scan_bound_by_link(self, cm):
        profile = AccessProfile(streams=[seq_stream("gpu0", "cpu0-mem", 63 * GIB)])
        cost = cm.phase_cost(profile)
        assert cost.seconds == pytest.approx(1.0, rel=0.02)
        assert cost.bottleneck.startswith("link:nvlink2")

    def test_bandwidth_factor_slows_stream(self, cm):
        fast = AccessProfile(streams=[seq_stream("gpu0", "cpu0-mem", GIB)])
        slow = AccessProfile(
            streams=[seq_stream("gpu0", "cpu0-mem", GIB, bandwidth_factor=0.5)]
        )
        assert cm.phase_cost(slow).seconds == pytest.approx(
            2 * cm.phase_cost(fast).seconds, rel=0.01
        )

    def test_two_streams_share_a_link(self, cm):
        one = AccessProfile(streams=[seq_stream("gpu0", "cpu0-mem", GIB)])
        two = AccessProfile(
            streams=[
                seq_stream("gpu0", "cpu0-mem", GIB),
                seq_stream("gpu0", "cpu0-mem", GIB),
            ]
        )
        assert cm.phase_cost(two).seconds == pytest.approx(
            2 * cm.phase_cost(one).seconds, rel=0.01
        )

    def test_disjoint_streams_overlap(self, cm):
        profile = AccessProfile(
            streams=[
                seq_stream("gpu0", "gpu0-mem", GIB),
                seq_stream("cpu0", "cpu0-mem", GIB),
            ]
        )
        solo = AccessProfile(streams=[seq_stream("cpu0", "cpu0-mem", GIB)])
        # The CPU stream is the slower one; adding the GPU stream on a
        # disjoint resource must not extend the phase.
        assert cm.phase_cost(profile).seconds == pytest.approx(
            cm.phase_cost(solo).seconds, rel=0.01
        )


class TestRandomOccupancy:
    def test_random_stream_deposits_on_issue_link_mem(self, cm):
        profile = AccessProfile(
            streams=[random_stream("gpu0", "cpu0-mem", 1e9, 8)]
        )
        occupancy = cm.profile_occupancy(profile)
        assert any(k.startswith("issue:gpu0") for k in occupancy)
        assert any(k.startswith("link:nvlink2") for k in occupancy)
        assert any(k.startswith("mem:cpu0-mem") for k in occupancy)

    def test_nvlink_random_bound(self, cm):
        profile = AccessProfile(
            streams=[random_stream("gpu0", "cpu0-mem", 1.35e9, 8)]
        )
        assert cm.phase_cost(profile).seconds == pytest.approx(1.0, rel=0.05)

    def test_cached_table_served_by_l2(self, cm):
        # 4 MiB working set fits the V100 L2 when local.
        profile = AccessProfile(
            streams=[
                random_stream(
                    "gpu0", "gpu0-mem", 1e9, 8, working_set_bytes=4 << 20
                )
            ]
        )
        occupancy = cm.profile_occupancy(profile)
        assert "cache:gpu0:l2" in occupancy

    def test_memory_side_l2_cannot_cache_remote(self, cm):
        profile = AccessProfile(
            streams=[
                random_stream(
                    "gpu0", "cpu0-mem", 1e9, 8, working_set_bytes=4 << 20
                )
            ]
        )
        occupancy = cm.profile_occupancy(profile)
        assert "cache:gpu0:l2" not in occupancy
        # ... and a 4 MiB table exceeds the effective remote L1 capacity,
        # so no L1 relief either (Figure 14 workload B).
        assert "cache:gpu0:l1" not in occupancy

    def test_skewed_remote_accesses_hit_gpu_l1(self, cm):
        hot = HotSetProfile.zipf(2**27, 1.5)
        profile = AccessProfile(
            streams=[
                random_stream(
                    "gpu0", "cpu0-mem", 1e9, 8,
                    working_set_bytes=2 << 30, hot_set=hot,
                )
            ]
        )
        occupancy = cm.profile_occupancy(profile)
        assert "cache:gpu0:l1" in occupancy

    def test_skewed_noncoherent_uses_um_migration(self, cm_intel):
        hot = HotSetProfile.zipf(2**27, 1.5)
        profile = AccessProfile(
            streams=[
                random_stream(
                    "gpu0", "cpu0-mem", 1e9, 8,
                    working_set_bytes=2 << 30, hot_set=hot,
                )
            ]
        )
        occupancy = cm_intel.profile_occupancy(profile)
        assert "cache:gpu0:um" in occupancy

    def test_atomics_slower_than_reads(self, cm):
        reads = AccessProfile(streams=[random_stream("gpu0", "gpu0-mem", 1e9, 16)])
        atomics = AccessProfile(streams=[atomic_stream("gpu0", "gpu0-mem", 1e9, 16)])
        assert cm.phase_cost(atomics).seconds > cm.phase_cost(reads).seconds


class TestComputeAndOverheads:
    def test_compute_occupancy(self, cm):
        profile = AccessProfile(
            streams=[seq_stream("cpu0", "cpu0-mem", 1)],
            compute_tuples=4e9,  # POWER9 retires 4e9 work units/s
        )
        assert cm.phase_cost(profile).seconds == pytest.approx(1.0, rel=0.02)

    def test_fixed_overhead_added(self, cm):
        profile = AccessProfile(
            streams=[seq_stream("cpu0", "cpu0-mem", 1)], fixed_overhead=0.5
        )
        assert cm.phase_cost(profile).seconds >= 0.5

    def test_makespan_factor_applied(self, cm):
        base = AccessProfile(streams=[seq_stream("gpu0", "cpu0-mem", GIB)])
        stretched = AccessProfile(
            streams=[seq_stream("gpu0", "cpu0-mem", GIB)], makespan_factor=2.0
        )
        assert cm.phase_cost(stretched).seconds == pytest.approx(
            2 * cm.phase_cost(base).seconds, rel=0.01
        )

    def test_empty_profile(self, cm):
        cost = cm.phase_cost(AccessProfile(fixed_overhead=0.1))
        assert cost.seconds == 0.1
        assert cost.bottleneck == "(none)"

    def test_occupancy_per_unit(self, cm):
        profile = AccessProfile(streams=[seq_stream("gpu0", "cpu0-mem", GIB)])
        per_unit = cm.occupancy_per_unit(profile, units=1000)
        full = cm.profile_occupancy(profile)
        for resource, value in per_unit.items():
            assert value == pytest.approx(full[resource] / 1000)

    def test_occupancy_per_unit_rejects_zero(self, cm):
        with pytest.raises(ValueError):
            cm.occupancy_per_unit(AccessProfile(), 0)


class TestComputeOnlyProfiles:
    """Regression: compute-only profiles used to price to zero seconds
    because compute time was attributed via stream processors only."""

    def test_explicit_processor_prices_compute(self, cm):
        profile = AccessProfile(compute_tuples=4e9, processor="cpu0")
        cost = cm.phase_cost(profile)
        assert cost.seconds == pytest.approx(1.0, rel=0.02)
        assert cost.bottleneck == "compute:cpu0"

    def test_gpu_compute_rate_differs_from_cpu(self, cm):
        cpu = AccessProfile(compute_tuples=1e9, processor="cpu0")
        gpu = AccessProfile(compute_tuples=1e9, processor="gpu0")
        assert cm.phase_cost(gpu).seconds < cm.phase_cost(cpu).seconds

    def test_no_streams_and_no_processor_rejected(self, cm):
        profile = AccessProfile(compute_tuples=1e9, label="orphan")
        with pytest.raises(ValueError, match="orphan.*processor"):
            cm.phase_cost(profile)

    def test_explicit_processor_overrides_stream_split(self, cm):
        streams = [seq_stream("cpu0", "cpu0-mem", 1)]
        split = AccessProfile(streams=list(streams), compute_tuples=4e9)
        pinned = AccessProfile(
            streams=list(streams), compute_tuples=4e9, processor="gpu0"
        )
        assert "compute:cpu0" in cm.profile_occupancy(split)
        occupancy = cm.profile_occupancy(pinned)
        assert "compute:gpu0" in occupancy
        assert "compute:cpu0" not in occupancy

    def test_scaled_preserves_processor(self):
        profile = AccessProfile(compute_tuples=100.0, processor="gpu0")
        assert profile.scaled(0.5).processor == "gpu0"
