"""Calibration constants: sanity and accessors."""

import dataclasses

import pytest

from repro.costmodel.calibration import DEFAULT_CALIBRATION, Calibration


class TestAccessors:
    def test_independent_factor_known(self):
        assert DEFAULT_CALIBRATION.independent_factor("hbm2-v100") > 1.0

    def test_independent_factor_unknown_defaults_to_one(self):
        assert DEFAULT_CALIBRATION.independent_factor("sram-9000") == 1.0

    def test_atomic_rate_known(self):
        assert DEFAULT_CALIBRATION.atomic_rate_for("nvlink2") == pytest.approx(0.45e9)

    def test_atomic_rate_unknown_has_fallback(self):
        assert DEFAULT_CALIBRATION.atomic_rate_for("mystery") == pytest.approx(0.5e9)


class TestConsistency:
    """Relations between constants that the model's stories rely on."""

    def test_atomics_slower_than_reads_everywhere(self):
        cal = DEFAULT_CALIBRATION
        # HBM independent random rate ~8.9e9 vs atomics 1.7e9, etc.
        assert cal.atomic_rate["hbm2-v100"] < 5.575e9 * cal.independent_factor(
            "hbm2-v100"
        )
        assert cal.atomic_rate["nvlink2"] < 0.7e9 * cal.independent_factor("nvlink2")

    def test_pcie_atomics_are_catastrophic(self):
        # PCI-e has no system-wide atomics; the UM workaround is >20x
        # slower than NVLink's native atomics (Figure 17's cliff).
        cal = DEFAULT_CALIBRATION
        assert cal.atomic_rate["nvlink2"] / cal.atomic_rate["pcie3"] > 20

    def test_contention_penalty_in_range(self):
        assert 0 < DEFAULT_CALIBRATION.shared_build_contention < 1

    def test_hop_penalty_in_range(self):
        assert 0 < DEFAULT_CALIBRATION.per_hop_random_penalty <= 1

    def test_um_power9_worse_than_intel(self):
        # The paper's footnote: the POWER9 UM driver is poorly optimized.
        cal = DEFAULT_CALIBRATION
        assert cal.um_fault_cost["ibm-ac922"] > cal.um_fault_cost["intel-xeon-v100"]
        assert (
            cal.um_prefetch_efficiency["ibm-ac922"]
            < cal.um_prefetch_efficiency["intel-xeon-v100"]
        )

    def test_llc_rate_matches_core_bound_story(self):
        # LLC-resident probes run no faster than DRAM-bound probes
        # (Figure 13: CPU A == CPU B), but the L1 hot tier is faster.
        cal = DEFAULT_CALIBRATION
        assert cal.llc_random_rate < cal.cpu_l1_random_rate

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            DEFAULT_CALIBRATION.llc_random_rate = 1.0  # type: ignore[misc]

    def test_custom_calibration_is_independent(self):
        custom = Calibration(l2_random_rate=1e9)
        assert custom.l2_random_rate == 1e9
        assert DEFAULT_CALIBRATION.l2_random_rate != 1e9
