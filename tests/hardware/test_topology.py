"""Machine topology and routing (Figure 4)."""

import pytest

from repro.hardware.specs import NVLINK2, POWER9, V100_SXM2
from repro.hardware.topology import Machine, TopologyError, ibm_ac922, intel_xeon_v100


class TestAc922:
    def test_has_two_cpus_two_gpus(self, ibm):
        assert len(ibm.cpus()) == 2
        assert len(ibm.gpus()) == 2

    def test_hop_counts_match_figure4a(self, ibm):
        # GPU0's data access paths: 0, 1, 2, 3 hops.
        assert ibm.hops("gpu0", "gpu0-mem") == 0
        assert ibm.hops("gpu0", "cpu0-mem") == 1
        assert ibm.hops("gpu0", "cpu1-mem") == 2
        assert ibm.hops("gpu0", "gpu1-mem") == 3

    def test_gpu_link_is_nvlink(self, ibm):
        assert ibm.gpu_link("gpu0").spec.name == "nvlink2"

    def test_coherent_gpu_access(self, ibm):
        assert ibm.coherent_gpu_access

    def test_path_composition(self, ibm):
        path = ibm.path("gpu0", "gpu1-mem")
        assert [link.spec.name for link in path] == ["nvlink2", "xbus", "nvlink2"]

    def test_one_gpu_variant(self, ibm_one_gpu):
        assert len(ibm_one_gpu.gpus()) == 1

    def test_four_gpu_variant_alternates_sockets(self):
        machine = ibm_ac922(gpus=4)
        assert len(machine.gpus()) == 4
        assert machine.gpu_link("gpu0").connects("gpu0", "cpu0")
        assert machine.gpu_link("gpu1").connects("gpu1", "cpu1")
        assert machine.gpu_link("gpu2").connects("gpu2", "cpu0")
        assert machine.gpu_link("gpu3").connects("gpu3", "cpu1")

    def test_four_gpu_mesh_is_fully_connected(self):
        machine = ibm_ac922(gpus=4, gpu_mesh=True)
        for i in range(4):
            for j in range(4):
                if i != j:
                    assert machine.hops(f"gpu{i}", f"gpu{j}-mem") == 1

    def test_invalid_gpu_count(self):
        with pytest.raises(TopologyError):
            ibm_ac922(gpus=5)


class TestIntelMachine:
    def test_pcie_gpu(self, intel):
        assert intel.gpu_link("gpu0").spec.name == "pcie3"

    def test_not_coherent(self, intel):
        assert not intel.coherent_gpu_access

    def test_remote_memory_via_upi(self, intel):
        path = intel.path("gpu0", "cpu1-mem")
        assert [link.spec.name for link in path] == ["pcie3", "upi"]


class TestRouting:
    def test_local_memory_has_empty_path(self, ibm):
        assert ibm.path("cpu0", "cpu0-mem") == []

    def test_unknown_processor_raises(self, ibm):
        with pytest.raises(TopologyError):
            ibm.path("gpu9", "cpu0-mem")

    def test_unknown_memory_raises(self, ibm):
        with pytest.raises(TopologyError):
            ibm.path("gpu0", "nowhere")

    def test_unroutable_raises(self):
        machine = Machine(name="islands")
        machine.add_cpu("cpu0", POWER9, "cpu0-mem")
        machine.add_gpu("gpu0", V100_SXM2, "gpu0-mem")
        # no connect() call: no path between them
        with pytest.raises(TopologyError):
            machine.path("gpu0", "cpu0-mem")

    def test_nearest_cpu_memory(self, ibm):
        assert ibm.nearest_cpu_memory("gpu0").name == "cpu0-mem"
        assert ibm.nearest_cpu_memory("gpu1").name == "cpu1-mem"

    def test_cpu_memories_by_distance(self, ibm):
        ordered = [m.name for m in ibm.cpu_memories_by_distance("gpu0")]
        assert ordered == ["cpu0-mem", "cpu1-mem"]


class TestConstruction:
    def test_duplicate_processor_rejected(self):
        machine = Machine(name="dup")
        machine.add_cpu("cpu0", POWER9, "m0")
        with pytest.raises(TopologyError):
            machine.add_cpu("cpu0", POWER9, "m1")

    def test_duplicate_memory_rejected(self):
        machine = Machine(name="dup")
        machine.add_cpu("cpu0", POWER9, "m0")
        with pytest.raises(TopologyError):
            machine.add_cpu("cpu1", POWER9, "m0")

    def test_connect_unknown_endpoint_rejected(self):
        machine = Machine(name="bad")
        machine.add_cpu("cpu0", POWER9, "m0")
        with pytest.raises(TopologyError):
            machine.connect("cpu0", "ghost", NVLINK2)

    def test_indexing_helpers(self, ibm):
        assert ibm.cpu(0).name == "cpu0"
        assert ibm.gpu(1).name == "gpu1"
        with pytest.raises(TopologyError):
            ibm.gpu(7)

    def test_gpu_link_rejects_cpu(self, ibm):
        with pytest.raises(TopologyError):
            ibm.gpu_link("cpu0")
