"""Cache models: working-set fits, memory-side L2, skew hot sets."""

import pytest

from repro.hardware.cache import CacheModel, HotSetProfile
from repro.hardware.specs import POWER9_L3, V100_L1, V100_L2
from repro.utils.units import MIB


class TestHotSetProfile:
    def test_uniform_mass_is_linear(self):
        profile = HotSetProfile.uniform(1000)
        assert profile.mass_of_top(100) == pytest.approx(0.1)
        assert profile.mass_of_top(1000) == 1.0
        assert profile.mass_of_top(2000) == 1.0

    def test_uniform_rejects_empty(self):
        with pytest.raises(ValueError):
            HotSetProfile.uniform(0)

    def test_zipf_zero_is_uniform(self):
        z = HotSetProfile.zipf(1000, 0.0)
        u = HotSetProfile.uniform(1000)
        for k in (1, 10, 500):
            assert z.mass_of_top(k) == pytest.approx(u.mass_of_top(k))

    def test_zipf_mass_monotone(self):
        profile = HotSetProfile.zipf(10**6, 1.2)
        masses = [profile.mass_of_top(k) for k in (1, 10, 100, 10**4, 10**6)]
        assert masses == sorted(masses)
        assert masses[-1] == pytest.approx(1.0)

    def test_zipf_paper_anchor(self):
        # "With an exponent of 1.5, there is a 97.5% chance of hitting
        # one of the top-1000 tuples" (Section 7.2.8); the quantile
        # depends on |R| — for workload A's 2^27 keys the analytic model
        # gives a high-90s percentage.
        profile = HotSetProfile.zipf(2**27, 1.5)
        assert profile.mass_of_top(1000) > 0.9

    def test_higher_exponent_concentrates_mass(self):
        low = HotSetProfile.zipf(10**6, 0.5)
        high = HotSetProfile.zipf(10**6, 1.5)
        assert high.mass_of_top(1000) > low.mass_of_top(1000)

    def test_zipf_rejects_negative_exponent(self):
        with pytest.raises(ValueError):
            HotSetProfile.zipf(10, -0.1)

    def test_mass_of_zero_is_zero(self):
        assert HotSetProfile.zipf(100, 1.0).mass_of_top(0) == 0.0

    def test_fractional_k_interpolates_linearly(self):
        # cache-capacity queries divide a byte budget by an entry size,
        # producing fractional ks; the contract is linear interpolation
        # between the integer masses, not truncation.
        for profile in (
            HotSetProfile.uniform(1000),
            HotSetProfile.zipf(1000, 1.2),
        ):
            lower, upper = profile.mass_of_top(10), profile.mass_of_top(11)
            assert profile.mass_of_top(10.5) == pytest.approx(
                (lower + upper) / 2
            )
            assert lower < profile.mass_of_top(10.5) < upper

    def test_fractional_k_clamped_to_domain(self):
        profile = HotSetProfile.zipf(50, 1.0)
        assert profile.mass_of_top(0.0) == 0.0
        assert profile.mass_of_top(50.5) == pytest.approx(1.0)
        assert profile.mass_of_top(-3.0) == 0.0


class TestCacheModel:
    def test_fitting_working_set_hits(self):
        cache = CacheModel(POWER9_L3)
        assert cache.hit_rate(4 * MIB) == 1.0

    def test_oversized_uniform_set_hits_proportionally(self):
        cache = CacheModel(POWER9_L3)
        rate = cache.hit_rate(POWER9_L3.capacity * 10)
        assert rate == pytest.approx(0.1)

    def test_memory_side_l2_rejects_remote(self):
        cache = CacheModel(V100_L2)
        assert cache.hit_rate(MIB, data_is_remote=True) == 0.0
        assert cache.hit_rate(MIB, data_is_remote=False) == 1.0

    def test_l1_caches_remote(self):
        cache = CacheModel(V100_L1)
        assert cache.hit_rate(16 * 1024, data_is_remote=True) == 1.0

    def test_hot_set_hit_rate(self):
        cache = CacheModel(V100_L1, capacity_override=2 * MIB)
        hot = HotSetProfile.zipf(2**27, 1.5)
        rate = cache.hit_rate(2**31, data_is_remote=True, hot_set=hot)
        assert 0.9 < rate <= 1.0

    def test_uniform_hot_set_gives_capacity_fraction(self):
        cache = CacheModel(V100_L1, capacity_override=1 * MIB)
        hot = HotSetProfile.uniform(2**20)  # 16 MiB of 16 B entries
        rate = cache.hit_rate(2**24, hot_set=hot, entry_bytes=16.0)
        # 1 MiB / 128 B lines x 8 entries/line = 65536 entries cacheable.
        assert rate == pytest.approx(65536 / 2**20, rel=0.01)

    def test_capacity_override(self):
        cache = CacheModel(POWER9_L3, capacity_override=1024)
        assert cache.capacity == 1024

    def test_zero_working_set_hits(self):
        cache = CacheModel(POWER9_L3)
        assert cache.hit_rate(0) == 1.0

    def test_negative_working_set_raises(self):
        cache = CacheModel(POWER9_L3)
        with pytest.raises(ValueError):
            cache.hit_rate(-1)
