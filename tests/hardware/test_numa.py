"""NUMA distance queries."""

import pytest

from repro.hardware.numa import distance_matrix, memories_by_distance, render_matrix
from repro.utils.units import GIB


class TestDistanceMatrix:
    def test_covers_all_pairs(self, ibm):
        matrix = distance_matrix(ibm)
        assert len(matrix) == len(ibm.processors) * len(ibm.memories)

    def test_gpu0_distances_match_figure4(self, ibm):
        matrix = distance_matrix(ibm)
        assert matrix[("gpu0", "gpu0-mem")].hops == 0
        assert matrix[("gpu0", "cpu0-mem")].hops == 1
        assert matrix[("gpu0", "cpu1-mem")].hops == 2
        assert matrix[("gpu0", "gpu1-mem")].hops == 3

    def test_bandwidth_decreases_with_hops(self, ibm):
        matrix = distance_matrix(ibm)
        local = matrix[("gpu0", "gpu0-mem")].bandwidth
        one = matrix[("gpu0", "cpu0-mem")].bandwidth
        two = matrix[("gpu0", "cpu1-mem")].bandwidth
        assert local > one > two

    def test_latency_increases_with_hops(self, ibm):
        matrix = distance_matrix(ibm)
        assert (
            matrix[("cpu0", "cpu0-mem")].latency
            < matrix[("cpu0", "cpu1-mem")].latency
            < matrix[("cpu0", "gpu1-mem")].latency
        )

    def test_one_hop_nvlink_bandwidth(self, ibm):
        matrix = distance_matrix(ibm)
        assert matrix[("gpu0", "cpu0-mem")].bandwidth == 63 * GIB


class TestOrdering:
    def test_memories_by_distance_order(self, ibm):
        ordered = [d.memory for d in memories_by_distance(ibm, "gpu0")]
        assert ordered == ["gpu0-mem", "cpu0-mem", "cpu1-mem", "gpu1-mem"]

    def test_cpu_prefers_local_memory(self, ibm):
        ordered = [d.memory for d in memories_by_distance(ibm, "cpu1")]
        assert ordered[0] == "cpu1-mem"

    def test_matches_topology_helper(self, ibm):
        from_numa = [
            d.memory
            for d in memories_by_distance(ibm, "gpu0")
            if d.memory.startswith("cpu")
        ]
        from_topology = [m.name for m in ibm.cpu_memories_by_distance("gpu0")]
        assert from_numa == from_topology


def test_render_matrix(ibm):
    text = render_matrix(ibm)
    assert "gpu0" in text
    assert "cpu1-mem" in text
    assert "3" in text  # the 3-hop cell
