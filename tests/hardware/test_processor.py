"""Processor models."""

import pytest

from repro.hardware.memory import MemoryRegion
from repro.hardware.processor import Cpu, Gpu, ProcessorKind
from repro.hardware.specs import DDR4_POWER9, HBM2_V100, POWER9, V100_SXM2


def make_cpu():
    mem = MemoryRegion(name="m", spec=DDR4_POWER9, owner="cpu0")
    return Cpu(name="cpu0", kind=ProcessorKind.CPU, local_memory=mem, spec=POWER9)


def make_gpu():
    mem = MemoryRegion(name="g", spec=HBM2_V100, owner="gpu0")
    return Gpu(name="gpu0", kind=ProcessorKind.GPU, local_memory=mem, spec=V100_SXM2)


class TestCpu:
    def test_memory_parallelism(self):
        cpu = make_cpu()
        assert cpu.memory_parallelism() == POWER9.cores * POWER9.mlp_per_core

    def test_tuple_throughput(self):
        cpu = make_cpu()
        assert cpu.tuple_throughput() == POWER9.cores * POWER9.tuple_rate_per_core

    def test_threads(self):
        assert make_cpu().threads == 64

    def test_llc_auto_constructed(self):
        assert make_cpu().llc is not None

    def test_requires_spec(self):
        mem = MemoryRegion(name="m", spec=DDR4_POWER9, owner="x")
        with pytest.raises(ValueError):
            Cpu(name="x", kind=ProcessorKind.CPU, local_memory=mem, spec=None)

    def test_kind_validated(self):
        mem = MemoryRegion(name="m", spec=DDR4_POWER9, owner="x")
        with pytest.raises(ValueError):
            Cpu(name="x", kind=ProcessorKind.GPU, local_memory=mem, spec=POWER9)


class TestGpu:
    def test_memory_parallelism_is_mlp(self):
        assert make_gpu().memory_parallelism() == V100_SXM2.mlp

    def test_caches_auto_constructed(self):
        gpu = make_gpu()
        assert gpu.l2 is not None
        assert gpu.l1 is not None
        assert gpu.l1.capacity == V100_SXM2.l1_total_capacity

    def test_kernel_launch_latency(self):
        assert make_gpu().kernel_launch_latency == V100_SXM2.kernel_launch_latency

    def test_atomic_rate(self):
        assert make_gpu().atomic_rate_local == V100_SXM2.atomic_rate_local

    def test_kind_validated(self):
        mem = MemoryRegion(name="g", spec=HBM2_V100, owner="x")
        with pytest.raises(ValueError):
            Gpu(name="x", kind=ProcessorKind.CPU, local_memory=mem, spec=V100_SXM2)

    def test_gpu_much_more_parallel_than_cpu(self):
        assert make_gpu().memory_parallelism() > 10 * make_cpu().memory_parallelism()
