"""Hardware data sheets: the paper's Figure 1-3 numbers."""

import pytest

from repro.hardware.specs import (
    DDR4_POWER9,
    DDR4_XEON,
    HBM2_V100,
    NVLINK2,
    PCIE3,
    POWER9,
    UPI,
    V100_SXM2,
    XBUS,
    XEON_6126,
    theoretical_vs_measured,
)
from repro.utils.units import GIB, NS


class TestFigure3Numbers:
    """The spec values are the paper's measured primitives."""

    def test_nvlink_is_5x_pcie_sequential(self):
        assert NVLINK2.seq_bw / PCIE3.seq_bw == pytest.approx(5.25, rel=0.05)

    def test_nvlink_is_14x_pcie_random(self):
        assert NVLINK2.random_bw_4b / PCIE3.random_bw_4b == pytest.approx(
            14.0, rel=0.05
        )

    def test_nvlink_latency_45pct_below_pcie(self):
        assert 1 - NVLINK2.latency / PCIE3.latency == pytest.approx(0.45, abs=0.02)

    def test_nvlink_latency_3_6x_upi(self):
        assert NVLINK2.latency / UPI.latency == pytest.approx(3.6, rel=0.02)

    def test_nvlink_twice_xbus_sequential(self):
        assert NVLINK2.seq_bw / XBUS.seq_bw == pytest.approx(2.0, rel=0.05)

    def test_power9_memory_65pct_above_nvlink(self):
        assert DDR4_POWER9.seq_bw / NVLINK2.seq_bw == pytest.approx(1.86, rel=0.05)

    def test_xeon_memory_28pct_above_nvlink(self):
        assert DDR4_XEON.seq_bw / NVLINK2.seq_bw == pytest.approx(1.29, rel=0.05)

    def test_nvlink_latency_6x_cpu_memory(self):
        assert NVLINK2.latency / DDR4_POWER9.latency == pytest.approx(6.4, rel=0.05)

    def test_gpu_memory_order_of_magnitude_faster(self):
        assert HBM2_V100.seq_bw / NVLINK2.seq_bw > 10
        assert HBM2_V100.random_bw_4b / NVLINK2.random_bw_4b > 7

    def test_nvlink_latency_54pct_above_gpu_memory(self):
        assert NVLINK2.latency / HBM2_V100.latency == pytest.approx(1.54, rel=0.02)


class TestPacketModel:
    def test_nvlink_header_smaller_than_pcie(self):
        assert NVLINK2.header_bytes < PCIE3.header_bytes

    def test_packet_efficiency_improves_with_payload(self):
        assert PCIE3.packet_efficiency(512) > PCIE3.packet_efficiency(32)

    def test_packet_efficiency_bounded(self):
        for size in (1, 64, 4096):
            eff = NVLINK2.packet_efficiency(size)
            assert 0 < eff < 1

    def test_invalid_access_size_raises(self):
        with pytest.raises(ValueError):
            NVLINK2.packet_efficiency(0)

    def test_random_access_rate_is_4byte_rate(self):
        assert NVLINK2.random_access_rate == NVLINK2.random_bw_4b / 4


class TestCoherence:
    def test_nvlink_coherent_pcie_not(self):
        assert NVLINK2.cache_coherent
        assert not PCIE3.cache_coherent

    def test_nvlink_reaches_pageable_memory(self):
        assert NVLINK2.pageable_access
        assert not PCIE3.pageable_access


class TestProcessors:
    def test_power9_socket(self):
        assert POWER9.cores == 16
        assert POWER9.smt == 4
        assert POWER9.threads == 64

    def test_xeon_socket(self):
        assert XEON_6126.cores == 12
        assert XEON_6126.threads == 24

    def test_v100_memory_capacity(self):
        assert V100_SXM2.memory.capacity == 16 * GIB

    def test_v100_l2_is_memory_side(self):
        assert V100_SXM2.l2.memory_side
        assert not V100_SXM2.l2.caches_remote

    def test_v100_l1_caches_remote(self):
        assert V100_SXM2.l1_per_sm.caches_remote

    def test_l1_total_capacity(self):
        assert V100_SXM2.l1_total_capacity == 80 * V100_SXM2.l1_per_sm.capacity


class TestFigure1:
    def test_reports_three_components(self):
        data = theoretical_vs_measured()
        assert set(data) == {"memory", "nvlink2", "pcie3"}

    def test_measured_below_theoretical(self):
        for theoretical, measured in theoretical_vs_measured().values():
            assert measured < theoretical

    def test_nvlink_close_to_memory_pcie_far(self):
        data = theoretical_vs_measured()
        assert data["nvlink2"][1] / data["memory"][1] > 0.5
        assert data["pcie3"][1] / data["memory"][1] < 0.15
