"""Memory regions and kinds."""

import pytest

from repro.hardware.memory import MemoryKind, MemoryRegion
from repro.hardware.specs import DDR4_POWER9, HBM2_V100


@pytest.fixture
def region():
    return MemoryRegion(name="cpu0-mem", spec=DDR4_POWER9, owner="cpu0")


class TestReserveRelease:
    def test_reserve_reduces_free(self, region):
        region.reserve(1024)
        assert region.allocated == 1024
        assert region.free_bytes == region.capacity - 1024

    def test_reserve_beyond_capacity_raises(self, region):
        with pytest.raises(MemoryError):
            region.reserve(region.capacity + 1)

    def test_release_returns_bytes(self, region):
        region.reserve(2048)
        region.release(2048)
        assert region.allocated == 0

    def test_release_more_than_allocated_raises(self, region):
        region.reserve(10)
        with pytest.raises(ValueError):
            region.release(11)

    def test_negative_amounts_raise(self, region):
        with pytest.raises(ValueError):
            region.reserve(-1)
        with pytest.raises(ValueError):
            region.release(-1)

    def test_exact_fill(self, region):
        region.reserve(region.capacity)
        assert region.free_bytes == 0
        with pytest.raises(MemoryError):
            region.reserve(1)


class TestMemoryKind:
    def test_pageable_only_reachable_via_coherence(self):
        assert MemoryKind.PAGEABLE.gpu_accessible_over == frozenset({"coherence"})

    def test_pinned_supports_zero_copy_and_dma(self):
        paths = MemoryKind.PINNED.gpu_accessible_over
        assert "zero_copy" in paths and "dma" in paths

    def test_unified_supports_migration(self):
        assert "page_migration" in MemoryKind.UNIFIED.gpu_accessible_over

    def test_device_is_local_only(self):
        assert MemoryKind.DEVICE.gpu_accessible_over == frozenset({"local"})


def test_str_mentions_owner():
    region = MemoryRegion(name="gpu0-mem", spec=HBM2_V100, owner="gpu0")
    assert "gpu0" in str(region)
