"""Interconnect behaviour model."""

import pytest

from repro.hardware.interconnect import Interconnect
from repro.hardware.specs import NVLINK2, PCIE3
from repro.utils.units import GIB


@pytest.fixture
def nvlink():
    return Interconnect(spec=NVLINK2, endpoint_a="cpu0", endpoint_b="gpu0")


@pytest.fixture
def pcie():
    return Interconnect(spec=PCIE3, endpoint_a="cpu0", endpoint_b="gpu0")


class TestBasics:
    def test_name_includes_endpoints(self, nvlink):
        assert "cpu0" in nvlink.name and "gpu0" in nvlink.name

    def test_connects_is_order_insensitive(self, nvlink):
        assert nvlink.connects("gpu0", "cpu0")
        assert nvlink.connects("cpu0", "gpu0")
        assert not nvlink.connects("cpu0", "cpu1")

    def test_sequential_bandwidth_is_measured(self, nvlink):
        assert nvlink.sequential_bandwidth() == 63 * GIB

    def test_duplex_doubles_bandwidth(self, nvlink):
        assert nvlink.duplex_bandwidth() == 2 * 63 * GIB


class TestRandomAccess:
    def test_latency_bound_with_low_parallelism(self, nvlink):
        # One outstanding request: rate = 1 / latency.
        rate = nvlink.random_access_rate(parallelism=1)
        assert rate == pytest.approx(1 / NVLINK2.latency)

    def test_capped_by_link_capability(self, nvlink):
        rate = nvlink.random_access_rate(parallelism=1e9)
        assert rate == NVLINK2.random_access_rate

    def test_nonpositive_parallelism_raises(self, nvlink):
        with pytest.raises(ValueError):
            nvlink.random_access_rate(0)

    def test_random_bandwidth_grows_with_access_size(self, nvlink):
        small = nvlink.random_bandwidth(4, parallelism=1e9)
        large = nvlink.random_bandwidth(128, parallelism=1e9)
        assert large > small

    def test_random_bandwidth_never_exceeds_sequential(self, nvlink):
        bw = nvlink.random_bandwidth(1 << 20, parallelism=1e12)
        assert bw <= nvlink.sequential_bandwidth()

    def test_pcie_random_far_below_nvlink(self, nvlink, pcie):
        p = pcie.random_bandwidth(4, parallelism=1e9)
        n = nvlink.random_bandwidth(4, parallelism=1e9)
        assert n / p == pytest.approx(14.0, rel=0.05)


class TestTransferTime:
    def test_includes_latency(self, nvlink):
        assert nvlink.transfer_time(0) == NVLINK2.latency

    def test_scales_with_bytes(self, nvlink):
        t1 = nvlink.transfer_time(GIB)
        t2 = nvlink.transfer_time(2 * GIB)
        assert t2 - t1 == pytest.approx(GIB / NVLINK2.seq_bw)

    def test_negative_bytes_raise(self, nvlink):
        with pytest.raises(ValueError):
            nvlink.transfer_time(-1)
