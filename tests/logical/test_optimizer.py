"""The optimizer re-derives the paper's choices on canonical workloads.

These are the decision-level acceptance tests: at paper *modeled*
scale, the cheapest candidate must land where the paper's measurements
landed — Coherence on NVLink 2.0, Zero-Copy once coherence is off the
table (Table 1), hash table in GPU memory while it fits (Figure 8),
Het helping only when the CPU has work it is good at (Figure 13), and
star probes ordered most-selective-first.
"""

import pytest

from repro.hardware import ibm_ac922
from repro.logical import LogicalError, optimize, scan
from repro.logical.explain import WORKLOADS, explain_workload
from repro.obs.manifest import MANIFEST_SCHEMA, build_manifest


# ----------------------------------------------------------------------
# Paper re-derivations
# ----------------------------------------------------------------------
def test_ac922_workload_a_chooses_coherence_gpu_table():
    """Workload A on the AC922: NVLink coherence beats every copy
    method, and the 2 GiB table belongs in GPU memory (Figures 7/8)."""
    result = explain_workload("join-a", "ibm-ac922")
    chosen = result.chosen.config
    assert chosen.strategy == "single"
    assert chosen.processor == "gpu0"
    assert chosen.transfer_method == "coherence"
    assert chosen.placement is not None and chosen.placement.label == "gpu"
    # The full Table-1 x placement space was actually enumerated.
    assert len(result.candidates) > 40
    assert result.chosen.viable


def test_ac922_workload_b_chooses_gpu_het():
    """Workload B's cache-resident build side lets the CPUs contribute:
    the cooperative GPU+Het strategy wins (Figure 13)."""
    result = explain_workload("join-b", "ibm-ac922")
    chosen = result.chosen.config
    assert chosen.strategy == "gpu+het"
    assert chosen.transfer_method == "coherence"
    assert chosen.workers  # cooperative strategies carry a worker set


def test_intel_rejects_coherence_and_falls_back_to_zero_copy():
    """On the PCI-e machine every coherence-dependent candidate is
    rejected with a reason, and Zero-Copy is the best pull method
    left (Table 1)."""
    result = explain_workload("join-a", "intel-xeon-v100")
    assert result.chosen.config.transfer_method == "zero_copy"
    rejected = result.rejected
    assert len(rejected) == 8
    for candidate in rejected:
        assert candidate.rejected
        assert "coheren" in candidate.rejected.lower()
    # No viable GPU candidate sneaks coherence past the support check
    # (CPU-only ingest never crosses the interconnect, so those
    # candidates keep the nominal method without using it).
    for candidate in result.candidates:
        if candidate.viable and candidate.config.processor == "gpu0":
            assert candidate.config.transfer_method != "coherence"


def test_star_probes_most_selective_dimension_first():
    """Join ordering: the 20%-selective dimension kills rows early, so
    the chosen permutation probes it first."""
    result = explain_workload("star", "ibm-ac922")
    chosen = result.chosen.config
    assert chosen.strategy == "gpu+het"
    assert chosen.join_order == (2, 1, 0)


def test_chosen_is_globally_cheapest():
    for name in ("join-a", "join-b", "q6", "star"):
        result = explain_workload(name, "ibm-ac922")
        viable = [c for c in result.candidates if c.viable]
        assert result.chosen in viable
        assert result.chosen.seconds == min(c.seconds for c in viable)


# ----------------------------------------------------------------------
# Registry and explain surface
# ----------------------------------------------------------------------
def test_registry_names_are_stable():
    assert sorted(WORKLOADS) == [
        "join-a",
        "join-b",
        "join-sel",
        "q6",
        "star",
    ]


def test_unknown_names_raise_keyerror():
    with pytest.raises(KeyError, match="unknown workload"):
        explain_workload("no-such-workload")
    with pytest.raises(KeyError, match="unknown machine"):
        explain_workload("q6", "no-such-machine")


def test_explain_lists_chosen_and_rejected():
    result = explain_workload("join-a", "intel-xeon-v100")
    text = result.explain()
    assert "chosen: " in text
    assert "rejected" in text
    assert "x " in text  # rejected candidates are marked
    assert "* " in text  # the winner is marked


def test_no_viable_plan_is_a_logical_error():
    """A query whose every candidate is rejected fails loudly."""
    import numpy as np

    from repro.data.relation import Relation
    from repro.hardware import intel_xeon_v100

    r = Relation(
        name="r",
        key=np.arange(256, dtype=np.int64),
        payload=np.arange(256, dtype=np.int64),
        modeled_tuples=1 << 20,
    )
    fact = {
        "k1": np.arange(256, dtype=np.int64),
        "k2": np.arange(256, dtype=np.int64),
    }
    query = (
        scan(fact, name="fact")
        .join(scan(r), build_key="key", probe_key="k1", output_prefix="a_")
        .join(scan(r), build_key="key", probe_key="k2", output_prefix="b_")
        .aggregate(agg=("a_payload", "sum"))
    )
    # Star shapes need coherent GPU access; the PCI-e machine has none.
    with pytest.raises(LogicalError, match="no viable physical plan"):
        optimize(query, intel_xeon_v100())


# ----------------------------------------------------------------------
# Manifest integration
# ----------------------------------------------------------------------
def test_section_round_trips_through_the_manifest():
    result = explain_workload("join-a", "ibm-ac922")
    section = result.section()
    schema_keys = MANIFEST_SCHEMA["sections"]["optimizer"]["keys"]
    assert sorted(section) == sorted(schema_keys)
    manifest = build_manifest(
        kind="optimizer-test",
        machine=ibm_ac922(),
        phases=[],
        optimizer=section,
    )
    dumped = manifest.to_dict()
    assert dumped["optimizer"] == section
    assert dumped["optimizer"]["strategy"] == "single"
    assert dumped["optimizer"]["considered"] == len(result.candidates)
