"""Property tests: the optimizer's contract holds across the space.

For random join workloads (modeled cardinalities, match-rate hints,
machines) the optimizer must (a) pick the cheapest viable candidate,
and (b) never pick — or even rank as viable — a transfer method the
support layer rejects for the route it would use.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.relation import Relation
from repro.hardware import ibm_ac922, intel_xeon_v100
from repro.logical import optimize, scan
from repro.transfer.methods import (
    UnsupportedTransferError,
    get_method,
)

_MACHINES = {
    "ibm-ac922": ibm_ac922(),
    "intel-xeon-v100": intel_xeon_v100(),
}

_EXECUTED = 256  # tiny functional arrays; the *modeled* sizes vary


def _join_query(modeled_r, modeled_s, selectivity):
    rng = np.random.default_rng(3)
    r = Relation(
        name="r",
        key=np.arange(_EXECUTED, dtype=np.int64),
        payload=rng.integers(0, 100, _EXECUTED).astype(np.int64),
        modeled_tuples=modeled_r,
    )
    s = Relation(
        name="s",
        key=rng.integers(0, _EXECUTED, _EXECUTED).astype(np.int64),
        payload=rng.integers(0, 100, _EXECUTED).astype(np.int64),
        modeled_tuples=modeled_s,
    )
    hint = None if selectivity == 1.0 else selectivity
    return (
        scan(s)
        .join(scan(r), build_key="key", probe_key="key", selectivity=hint)
        .aggregate(agg=("build_payload", "sum"))
    )


_WORKLOADS = st.tuples(
    st.integers(10, 28).map(lambda e: 2 ** e),  # modeled build rows
    st.integers(10, 28).map(lambda e: 2 ** e),  # modeled probe rows
    st.sampled_from([0.05, 0.25, 0.5, 0.9, 1.0]),
    st.sampled_from(sorted(_MACHINES)),
)


@settings(max_examples=20, deadline=None)
@given(_WORKLOADS)
def test_chosen_candidate_is_cheapest_viable(params):
    modeled_r, modeled_s, selectivity, machine_name = params
    result = optimize(
        _join_query(modeled_r, modeled_s, selectivity),
        _MACHINES[machine_name],
    )
    viable = [c for c in result.candidates if c.viable]
    assert viable, "at least one candidate must survive"
    assert result.chosen.viable
    cheapest = min(c.seconds for c in viable)
    assert result.chosen.seconds == cheapest
    # The winner's compiled plan is returned alongside the decision.
    assert result.chosen_plan is not None
    assert result.chosen.seconds > 0.0


@settings(max_examples=20, deadline=None)
@given(_WORKLOADS)
def test_no_viable_candidate_uses_an_unsupported_method(params):
    modeled_r, modeled_s, selectivity, machine_name = params
    machine = _MACHINES[machine_name]
    result = optimize(
        _join_query(modeled_r, modeled_s, selectivity), machine
    )
    gpus = {p.name for p in machine.gpus()}
    for candidate in result.candidates:
        if not candidate.viable:
            continue
        config = candidate.config
        if config.strategy != "single" or config.processor not in gpus:
            continue  # CPU-only ingest never crosses the interconnect
        method = get_method(config.transfer_method)
        # Viability implies the support layer accepts the route and the
        # memory kind the optimizer reallocated the inputs to.
        try:
            method.check_supported(
                machine,
                config.processor,
                machine.nearest_cpu_memory(config.processor).name,
                kind=method.required_kind,
            )
        except UnsupportedTransferError as exc:  # pragma: no cover
            raise AssertionError(
                f"optimizer ranked {config.describe()} viable but the "
                f"support layer rejects it: {exc}"
            )
