"""The engine interpreter computes the same answers as plain numpy.

``run_pipeline`` is the functional half of the compiler — the facades
pair it with the priced lowering, and the golden harness pins the pair.
Here we pin the functional half alone against hand-computed results.
"""

import numpy as np
import pytest

from repro.data.relation import Relation
from repro.logical import (
    between,
    ge,
    mul,
    run_pipeline,
    scan,
    to_operators,
)


@pytest.fixture
def join_inputs():
    rng = np.random.default_rng(11)
    build = Relation(
        name="r",
        key=np.arange(512, dtype=np.int64),
        payload=rng.integers(0, 1000, 512).astype(np.int64),
        modeled_tuples=512,
    )
    probe = {
        "key": rng.integers(0, 512, 4096).astype(np.int64),
        "weight": rng.integers(0, 10, 4096).astype(np.int64),
    }
    return build, probe


def test_join_aggregate_matches_numpy(join_inputs):
    build, probe = join_inputs
    query = (
        scan(probe, name="probe")
        .join(scan(build), build_key="key", probe_key="key")
        .aggregate(agg=("build_payload", "sum"))
    )
    result = run_pipeline(query)
    expected = int(build.payload[probe["key"]].sum())
    assert result["agg"].tolist() == [expected]


def test_hash_scheme_does_not_change_results(join_inputs):
    build, probe = join_inputs
    query = (
        scan(probe, name="probe")
        .join(scan(build), build_key="key", probe_key="key")
        .aggregate(agg=("build_payload", "sum"))
    )
    open_addr = run_pipeline(query, hash_scheme="open_addressing")
    perfect = run_pipeline(query, hash_scheme="perfect")
    assert open_addr["agg"].tolist() == perfect["agg"].tolist()


def test_morsel_size_does_not_change_results(join_inputs):
    build, probe = join_inputs
    query = (
        scan(probe, name="probe")
        .join(scan(build), build_key="key", probe_key="key")
        .aggregate(agg=("build_payload", "sum"))
    )
    whole = run_pipeline(query)
    morsels = run_pipeline(query, morsel_rows=97)
    assert whole["agg"].tolist() == morsels["agg"].tolist()


def test_scan_filter_project_aggregate_matches_numpy():
    rng = np.random.default_rng(5)
    table = {
        "shipdate": rng.integers(0, 2500, 8192).astype(np.int64),
        "price": rng.uniform(1.0, 100.0, 8192),
        "discount": rng.uniform(0.0, 0.1, 8192),
    }
    query = (
        scan(table, name="lineitem")
        .filter(ge("shipdate", 1000), between("discount", 0.02, 0.08))
        .project(revenue=mul("price", "discount"))
        .aggregate(revenue=("revenue", "sum"))
    )
    result = run_pipeline(query)
    mask = (
        (table["shipdate"] >= 1000)
        & (table["discount"] >= 0.02)
        & (table["discount"] <= 0.08)
    )
    expected = float((table["price"] * table["discount"])[mask].sum())
    assert result["revenue"][0] == pytest.approx(expected, rel=1e-12)


def test_star_chain_applies_all_dimensions():
    rng = np.random.default_rng(13)
    n_dim, n_fact = 128, 2048
    fact = {
        "d1_key": rng.integers(0, n_dim, n_fact).astype(np.int64),
        "d2_key": rng.integers(0, n_dim, n_fact).astype(np.int64),
    }
    dims = {}
    survivals = {"d1_key": 0.75, "d2_key": 0.25}
    for key, survival in survivals.items():
        covered = int(n_dim * survival)
        dims[key] = Relation(
            name=key,
            key=np.arange(covered, dtype=np.int64),
            payload=rng.integers(0, 50, covered).astype(np.int64),
            modeled_tuples=covered,
        )
    query = scan(fact, name="fact")
    for key in survivals:
        query = query.join(
            scan(dims[key]),
            build_key="key",
            probe_key=key,
            output_prefix=f"{key}_",
        )
    result = run_pipeline(query.aggregate(total=("d1_key_payload", "sum")))
    alive = (fact["d1_key"] < len(dims["d1_key"].key)) & (
        fact["d2_key"] < len(dims["d2_key"].key)
    )
    expected = int(dims["d1_key"].payload[fact["d1_key"][alive]].sum())
    assert result["total"].tolist() == [expected]


def test_to_operators_exposes_the_query_schema(join_inputs):
    build, probe = join_inputs
    query = scan(probe, name="probe").join(
        scan(build), build_key="key", probe_key="key"
    )
    operator = to_operators(query)
    assert tuple(operator.schema()) == query.schema()
