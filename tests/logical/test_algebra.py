"""The algebra validates eagerly: malformed queries fail at the call
site with an actionable message, and well-formed queries propagate
schemas exactly as the engine interpreter will see them."""

import numpy as np
import pytest

from repro.data.relation import Relation
from repro.logical import (
    LogicalError,
    Predicate,
    between,
    column,
    ge,
    lt,
    mul,
    scan,
)
from repro.logical.lower import JoinShape, ScanShape, StarShape, classify


def _relation(name="r", rows=64, modeled=None):
    return Relation(
        name=name,
        key=np.arange(rows, dtype=np.int64),
        payload=np.arange(rows, dtype=np.int64),
        modeled_tuples=modeled if modeled is not None else rows,
    )


def _columns(rows=64, **extra):
    data = {
        "key": np.arange(rows, dtype=np.int64),
        "value": np.arange(rows, dtype=np.float64),
    }
    data.update(extra)
    return data


# ----------------------------------------------------------------------
# Schema propagation
# ----------------------------------------------------------------------
def test_scan_exposes_relation_columns():
    query = scan(_relation())
    assert query.schema() == ("key", "payload")


def test_join_appends_prefixed_build_payloads():
    query = scan(_columns()).join(
        scan(_relation()), build_key="key", probe_key="key"
    )
    assert query.schema() == ("key", "value", "build_payload")


def test_filter_and_project_schemas():
    query = scan(_columns()).filter(ge("value", 3.0))
    assert query.schema() == ("key", "value")
    projected = query.project(twice=mul("value", "value"))
    assert projected.schema() == ("twice",)


def test_aggregate_schema_is_groups_plus_aggregates():
    query = scan(_columns()).aggregate(
        group_by=("key",), total=("value", "sum")
    )
    assert query.schema() == ("key", "total")


def test_describe_renders_the_tree():
    query = (
        scan(_columns(), name="probe")
        .join(scan(_relation()), build_key="key", probe_key="key")
        .aggregate(agg=("build_payload", "sum"))
    )
    text = query.describe()
    assert "Aggregate(agg=sum(build_payload))" in text
    assert "HashJoin(build.key == probe.key)" in text
    assert "Scan(probe" in text


# ----------------------------------------------------------------------
# Validation errors
# ----------------------------------------------------------------------
def test_join_output_collision_requires_distinct_prefix():
    probe = scan(_columns(build_payload=np.zeros(64)))
    with pytest.raises(LogicalError, match="distinct output_prefix"):
        probe.join(scan(_relation()), build_key="key", probe_key="key")
    # A per-join prefix resolves the collision.
    query = probe.join(
        scan(_relation()),
        build_key="key",
        probe_key="key",
        output_prefix="dim_",
    )
    assert query.schema()[-1] == "dim_payload"


def test_modeled_cardinality_below_executed_rejected():
    with pytest.raises(LogicalError, match="below executed"):
        scan(_columns(), modeled_rows=8)


def test_filter_unknown_column_rejected():
    with pytest.raises(LogicalError, match="unknown column"):
        scan(_columns()).filter(ge("missing", 1))


def test_join_unknown_keys_rejected():
    with pytest.raises(LogicalError, match="build key"):
        scan(_columns()).join(
            scan(_relation()), build_key="missing", probe_key="key"
        )
    with pytest.raises(LogicalError, match="probe key"):
        scan(_columns()).join(
            scan(_relation()), build_key="key", probe_key="missing"
        )


def test_selectivity_hints_validated():
    with pytest.raises(LogicalError, match=r"\[0, 1\]"):
        scan(_columns()).join(
            scan(_relation()),
            build_key="key",
            probe_key="key",
            selectivity=1.5,
        )
    with pytest.raises(LogicalError, match=r"\[0, 1\]"):
        Predicate("value", "ge", 1, selectivity=-0.1)


def test_predicate_op_validation():
    with pytest.raises(LogicalError, match="unknown predicate op"):
        Predicate("value", "like", 1)
    with pytest.raises(LogicalError, match="value and high"):
        Predicate("value", "between", 1)
    mask = between("value", 2, 4).mask(np.arange(6))
    assert mask.tolist() == [False, False, True, True, True, False]


def test_aggregate_validation():
    query = scan(_columns())
    with pytest.raises(LogicalError, match="unknown aggregate function"):
        query.aggregate(agg=("value", "median"))
    with pytest.raises(LogicalError, match="column '\\*'"):
        query.aggregate(n=("value", "count"))
    with pytest.raises(LogicalError, match="at least one aggregate"):
        query.aggregate()


def test_ragged_columns_rejected():
    with pytest.raises(LogicalError, match="ragged"):
        scan({"a": np.arange(4), "b": np.arange(5)})


def test_projection_unknown_reference_rejected():
    with pytest.raises(LogicalError, match="unknown column"):
        scan(_columns()).project(out=column("missing"))


# ----------------------------------------------------------------------
# Shape classification (the lowering contract)
# ----------------------------------------------------------------------
def test_classify_scan_shape():
    query = (
        scan(_columns())
        .filter(ge("value", 3.0), lt("value", 60.0))
        .aggregate(total=("value", "sum"))
    )
    shape = classify(query)
    assert isinstance(shape, ScanShape)
    assert len(shape.predicates) == 2


def test_classify_join_shape():
    query = (
        scan(_columns())
        .join(scan(_relation()), build_key="key", probe_key="key")
        .aggregate(agg=("build_payload", "sum"))
    )
    shape = classify(query)
    assert isinstance(shape, JoinShape)
    assert shape.build.name == "r"


def test_classify_star_shape_preserves_dimension_order():
    query = scan(_columns(), name="fact")
    for i, dim in enumerate(("d1", "d2")):
        query = query.join(
            scan(_relation(name=dim)),
            build_key="key",
            probe_key="key",
            selectivity=0.5 * (i + 1),
            output_prefix=f"{dim}_",
        )
    shape = classify(query.aggregate(agg=("d1_payload", "sum")))
    assert isinstance(shape, StarShape)
    assert [dim_scan.name for dim_scan, _key, _sel in shape.dimensions] == [
        "d1",
        "d2",
    ]


def test_classify_rejects_filter_above_join():
    query = (
        scan(_columns())
        .join(scan(_relation()), build_key="key", probe_key="key")
        .filter(ge("value", 3.0))
        .aggregate(agg=("build_payload", "sum"))
    )
    with pytest.raises(LogicalError, match="filters above a join"):
        classify(query)


def test_classify_rejects_non_aggregate_root():
    with pytest.raises(LogicalError, match="end in an Aggregate"):
        classify(scan(_columns()))
