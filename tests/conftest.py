"""Shared fixtures: machines and small workloads.

Machines are function-scoped (allocators mutate region bookkeeping);
workloads are session-scoped and must be treated as read-only.
"""

import pytest

from repro.hardware.topology import ibm_ac922, intel_xeon_v100
from repro.workloads.builders import workload_a, workload_b, workload_c

#: tiny execution scale for fast tests.
TEST_SCALE = 2.0**-14


@pytest.fixture
def ibm():
    return ibm_ac922()

@pytest.fixture
def ibm_one_gpu():
    return ibm_ac922(gpus=1)


@pytest.fixture
def intel():
    return intel_xeon_v100()


@pytest.fixture(scope="session")
def wl_a():
    return workload_a(scale=TEST_SCALE)


@pytest.fixture(scope="session")
def wl_b():
    return workload_b(scale=TEST_SCALE)


@pytest.fixture(scope="session")
def wl_c():
    return workload_c(scale=TEST_SCALE)
