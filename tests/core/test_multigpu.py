"""Multi-GPU joins (Section 6.3)."""

import pytest

from repro.core.join.multigpu import MultiGpuJoin
from repro.core.join.nopa import NoPartitioningJoin
from repro.hardware.topology import ibm_ac922
from repro.memory.allocator import OutOfMemoryError
from repro.workloads.builders import workload_a, workload_ratio

SCALE = 2.0**-14


@pytest.fixture
def mesh():
    return ibm_ac922(gpus=2, gpu_mesh=True)


class TestTopologyMesh:
    def test_mesh_shortens_gpu_to_gpu_path(self):
        plain = ibm_ac922(gpus=2)
        mesh = ibm_ac922(gpus=2, gpu_mesh=True)
        assert plain.hops("gpu0", "gpu1-mem") == 3
        assert mesh.hops("gpu0", "gpu1-mem") == 1

    def test_mesh_does_not_change_cpu_paths(self, mesh):
        assert mesh.hops("gpu0", "cpu0-mem") == 1
        assert mesh.gpu_link("gpu0").spec.name == "nvlink2"


class TestFunctional:
    def test_matches_single_gpu_join(self, mesh):
        wl = workload_a(scale=SCALE)
        multi = MultiGpuJoin(mesh, placement="interleaved").run(
            wl.r, wl.s, workers=("gpu0", "gpu1")
        )
        single = NoPartitioningJoin(mesh, hash_table_placement="gpu").run(
            wl.r, wl.s
        )
        assert multi.matches == single.matches
        assert multi.aggregate == single.aggregate

    def test_rejects_cpu_workers(self, mesh):
        wl = workload_a(scale=SCALE)
        join = MultiGpuJoin(mesh)
        with pytest.raises(ValueError):
            join.run(wl.r, wl.s, workers=("cpu0", "gpu0"))

    def test_rejects_unknown_placement(self, mesh):
        with pytest.raises(ValueError):
            MultiGpuJoin(mesh, placement="sharded")

    def test_defaults_to_all_gpus(self, mesh):
        wl = workload_a(scale=SCALE)
        res = MultiGpuJoin(mesh, placement="interleaved").run(wl.r, wl.s)
        assert set(res.gpu_rates) == {"gpu0", "gpu1"}


class TestPlacements:
    def test_interleaved_splits_bytes_evenly(self, mesh):
        wl = workload_a(scale=SCALE)
        res = MultiGpuJoin(mesh, placement="interleaved").run(wl.r, wl.s)
        per_gpu = res.table_bytes_per_gpu
        assert set(per_gpu) == {"gpu0-mem", "gpu1-mem"}
        total = sum(per_gpu.values())
        assert abs(per_gpu["gpu0-mem"] - per_gpu["gpu1-mem"]) / total < 0.01

    def test_replicated_copies_full_table(self, mesh):
        wl = workload_a(scale=SCALE)
        res = MultiGpuJoin(mesh, placement="replicated").run(wl.r, wl.s)
        assert res.table_bytes_per_gpu["gpu0-mem"] == res.table_bytes_per_gpu[
            "gpu1-mem"
        ]

    def test_replicated_rejects_oversized_table(self, mesh):
        wl = workload_ratio(1, scale=2.0**-13, modeled_r=2048 * 10**6)
        join = MultiGpuJoin(mesh, placement="replicated")
        with pytest.raises(OutOfMemoryError):
            join.run(wl.r, wl.s, workers=("gpu0", "gpu1"))

    def test_interleaved_holds_table_too_big_for_one_gpu(self, mesh):
        wl = workload_ratio(1, scale=2.0**-13, modeled_r=1536 * 10**6)
        res = MultiGpuJoin(mesh, placement="interleaved").run(
            wl.r, wl.s, workers=("gpu0", "gpu1")
        )
        assert sum(res.table_bytes_per_gpu.values()) == pytest.approx(
            1536 * 10**6 * 16, rel=0.01
        )


class TestSection63Claims:
    def test_replication_beats_single_gpu_for_small_tables(self, mesh):
        wl = workload_a(scale=SCALE)
        multi = MultiGpuJoin(mesh, placement="replicated").run(
            wl.r, wl.s, workers=("gpu0", "gpu1")
        )
        single = NoPartitioningJoin(mesh, hash_table_placement="gpu").run(
            wl.r, wl.s
        )
        assert multi.throughput_gtuples > single.throughput_gtuples

    def test_interleaving_beats_hybrid_spill_for_huge_tables(self, mesh):
        wl = workload_ratio(1, scale=2.0**-13, modeled_r=2048 * 10**6)
        multi = MultiGpuJoin(mesh, placement="interleaved").run(
            wl.r, wl.s, workers=("gpu0", "gpu1")
        )
        hybrid = NoPartitioningJoin(mesh, hash_table_placement="hybrid").run(
            wl.r, wl.s
        )
        assert multi.throughput_gtuples > hybrid.throughput_gtuples

    def test_replication_beats_interleaving_for_small_tables(self, mesh):
        wl = workload_a(scale=SCALE)
        replicated = MultiGpuJoin(mesh, placement="replicated").run(wl.r, wl.s)
        interleaved = MultiGpuJoin(mesh, placement="interleaved").run(
            wl.r, wl.s
        )
        assert replicated.throughput_gtuples > interleaved.throughput_gtuples
