"""The generic selection-scan operator."""

import numpy as np
import pytest

from repro.core.ops.scan import Predicate, ScanResult, SelectionScan


def make_columns(n=50_000, clustered=True, seed=0):
    rng = np.random.default_rng(seed)
    if clustered:
        a = np.sort(rng.integers(0, 100, n)).astype(np.int32)
    else:
        a = rng.integers(0, 100, n).astype(np.int32)
    return {
        "a": a,
        "b": rng.integers(0, 10, n).astype(np.int32),
        "x": rng.random(n).astype(np.float32),
    }


def make_scan(machine, variant="predicated", threshold=20):
    return SelectionScan(
        machine,
        predicates=[
            Predicate("a", lambda col: col < threshold, "a < t"),
            Predicate("b", lambda col: col < 5, "b < 5"),
        ],
        aggregate_columns=["x"],
        aggregate=lambda cols: float(cols["x"].astype(np.float64).sum()),
        variant=variant,
    )


class TestFunctional:
    def test_aggregate_matches_numpy(self, ibm):
        columns = make_columns()
        res = make_scan(ibm).run(columns, processor="cpu0")
        mask = (columns["a"] < 20) & (columns["b"] < 5)
        assert res.aggregate == pytest.approx(
            float(columns["x"][mask].astype(np.float64).sum())
        )
        assert res.qualifying_rows == int(mask.sum())

    def test_variants_agree_functionally(self, ibm):
        columns = make_columns()
        branching = make_scan(ibm, "branching").run(columns)
        predicated = make_scan(ibm, "predicated").run(columns)
        assert branching.aggregate == pytest.approx(predicated.aggregate)

    def test_empty_survivors(self, ibm):
        columns = make_columns()
        res = make_scan(ibm, threshold=-1).run(columns)
        assert res.aggregate == 0.0
        assert res.qualifying_rows == 0

    def test_missing_column_rejected(self, ibm):
        with pytest.raises(KeyError):
            make_scan(ibm).run({"a": np.arange(4, dtype=np.int32)})

    def test_ragged_rejected(self, ibm):
        columns = make_columns(100)
        columns["x"] = columns["x"][:50]
        with pytest.raises(ValueError):
            make_scan(ibm).run(columns)

    def test_validation(self, ibm):
        with pytest.raises(ValueError):
            SelectionScan(ibm, [], [], lambda c: 0.0)
        with pytest.raises(ValueError):
            make_scan(ibm, variant="simd")


class TestModel:
    def test_branching_loads_fewer_bytes_when_clustered(self, ibm):
        columns = make_columns(clustered=True)
        branching = make_scan(ibm, "branching").run(
            columns, processor="gpu0", modeled_rows=10**9
        )
        predicated = make_scan(ibm, "predicated").run(
            columns, processor="gpu0", modeled_rows=10**9
        )
        assert branching.throughput_gtuples > predicated.throughput_gtuples
        assert all(f <= 1.0 for f in branching.column_line_fractions)
        assert branching.column_line_fractions[1] < 1.0

    def test_unclustered_weakens_branching(self, ibm):
        clustered = make_scan(ibm, "branching").run(
            make_columns(clustered=True), processor="gpu0", modeled_rows=10**9
        )
        scattered = make_scan(ibm, "branching").run(
            make_columns(clustered=False), processor="gpu0", modeled_rows=10**9
        )
        assert clustered.throughput_gtuples > scattered.throughput_gtuples

    def test_fraction_count_matches_columns(self, ibm):
        res = make_scan(ibm, "branching").run(make_columns())
        assert len(res.column_line_fractions) == 3  # 2 predicates + 1 agg

    def test_modeled_rows_priced(self, ibm):
        small = make_scan(ibm).run(
            make_columns(), processor="gpu0", modeled_rows=10**8
        )
        large = make_scan(ibm).run(
            make_columns(), processor="gpu0", modeled_rows=10**9
        )
        assert large.runtime == pytest.approx(10 * small.runtime, rel=0.05)
