"""Multi-way star joins (Section 6.2's extension)."""

import numpy as np
import pytest

from repro.core.join.multiway import Dimension, StarJoin
from repro.data.relation import Relation
from repro.memory.allocator import OutOfMemoryError


def make_dimension(name, n, match_fraction=1.0, seed=0):
    """A dimension with n rows; the fact references 1/match_fraction of
    the domain so ``match_fraction`` of fact keys find a match."""
    rng = np.random.default_rng(seed)
    keys = rng.permutation(n).astype(np.int64)
    return Relation(
        name=name, key=keys, payload=(keys * 5 + 2).astype(np.int64)
    )


def make_fact(n_rows, dims, match_fractions, seed=1):
    rng = np.random.default_rng(seed)
    fact = {}
    for (name, dim), fraction in zip(dims.items(), match_fractions):
        domain = dim.executed_tuples
        keys = rng.integers(0, domain, n_rows).astype(np.int64)
        miss = rng.random(n_rows) >= fraction
        keys[miss] = domain + rng.integers(0, domain, int(miss.sum()))
        fact[name] = keys
    return fact


@pytest.fixture
def star():
    dims = {
        "d1_key": make_dimension("d1", 1000, seed=2),
        "d2_key": make_dimension("d2", 500, seed=3),
    }
    fact = make_fact(20_000, dims, (0.8, 0.5))
    dimensions = [
        Dimension(relation=dims["d1_key"], fact_key="d1_key"),
        Dimension(relation=dims["d2_key"], fact_key="d2_key"),
    ]
    return fact, dimensions, dims


class TestFunctional:
    def test_survivors_match_numpy_reference(self, ibm, star):
        fact, dimensions, dims = star
        res = StarJoin(ibm).run(fact, dimensions)
        alive = np.ones(len(fact["d1_key"]), dtype=bool)
        for name, dim in dims.items():
            alive &= np.isin(fact[name], dim.key)
        assert res.survivors == int(alive.sum())

    def test_aggregate_sums_dimension_payloads(self, ibm):
        dim = make_dimension("d", 100)
        fact = {"k": np.arange(100, dtype=np.int64)}
        res = StarJoin(ibm).run(
            fact, [Dimension(relation=dim, fact_key="k")]
        )
        assert res.survivors == 100
        assert res.aggregate == int((np.arange(100) * 5 + 2).sum())

    def test_measure_column_aggregation(self, ibm):
        dim = make_dimension("d", 50)
        fact = {"k": np.arange(50, dtype=np.int64)}
        measure = np.full(50, 7, dtype=np.int64)
        res = StarJoin(ibm).run(
            fact, [Dimension(relation=dim, fact_key="k")], measure=measure
        )
        assert res.aggregate == 350

    def test_missing_fact_key_rejected(self, ibm, star):
        fact, dimensions, _ = star
        bad = [Dimension(relation=dimensions[0].relation, fact_key="ghost")]
        with pytest.raises(ValueError):
            StarJoin(ibm).run(fact, bad)

    def test_needs_dimensions(self, ibm, star):
        fact, _, __ = star
        with pytest.raises(ValueError):
            StarJoin(ibm).run(fact, [])

    def test_ragged_fact_rejected(self, ibm, star):
        _, dimensions, __ = star
        with pytest.raises(ValueError):
            StarJoin(ibm).run(
                {"d1_key": np.arange(3), "d2_key": np.arange(4)}, dimensions
            )


class TestModel:
    def test_builders_assigned_round_robin(self, ibm, star):
        fact, dimensions, _ = star
        res = StarJoin(ibm).run(fact, dimensions, workers=("cpu0", "gpu0"))
        assert res.builder_of["d1_key"] == "cpu0"
        assert res.builder_of["d2_key"] == "gpu0"

    def test_parallel_build_faster_than_serial(self, ibm, star):
        """Building on two processors beats one (the Section 6.2 point)."""
        fact, dimensions, dims = star
        big_dims = [
            Dimension(
                relation=Relation(
                    name=d.relation.name,
                    key=d.relation.key,
                    payload=d.relation.payload,
                    modeled_tuples=50_000_000,
                ),
                fact_key=d.fact_key,
            )
            for d in dimensions
        ]
        two = StarJoin(ibm).run(
            fact, big_dims, workers=("gpu0", "gpu1"), modeled_fact=10**9
        )
        one = StarJoin(ibm).run(
            fact, big_dims, workers=("gpu0",), modeled_fact=10**9
        )
        # The builds themselves parallelize (~2x); the broadcast is the
        # price of replication and is reported separately.
        assert two.build_seconds < 0.7 * one.build_seconds
        assert one.broadcast_seconds == 0.0
        assert two.broadcast_seconds > 0.0

    def test_oversized_replication_rejected(self, ibm):
        huge = Relation(
            name="huge",
            key=np.arange(64, dtype=np.int64),
            payload=np.arange(64, dtype=np.int64),
            modeled_tuples=2 * 10**9,  # 32 GB > GPU memory
        )
        fact = {"k": np.arange(64, dtype=np.int64)}
        with pytest.raises(OutOfMemoryError):
            StarJoin(ibm).run(fact, [Dimension(relation=huge, fact_key="k")])

    def test_more_dimensions_cost_more_probe_time(self, ibm, star):
        fact, dimensions, _ = star
        join = StarJoin(ibm)
        one = join.run(fact, dimensions[:1], modeled_fact=10**9)
        two = join.run(fact, dimensions, modeled_fact=10**9)
        assert two.probe_seconds > one.probe_seconds

    def test_throughput_positive(self, ibm, star):
        fact, dimensions, _ = star
        res = StarJoin(ibm).run(fact, dimensions, modeled_fact=10**9)
        assert res.throughput_gtuples > 0
        assert res.runtime == (
            res.build_seconds + res.broadcast_seconds + res.probe_seconds
        )
