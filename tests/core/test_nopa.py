"""The no-partitioning hash join operator."""

import numpy as np
import pytest

from repro.core.join.nopa import (
    LINE_BYTES,
    NoPartitioningJoin,
    payload_line_fraction,
)
from repro.memory.allocator import OutOfMemoryError
from repro.workloads.builders import workload_a, workload_selectivity

SCALE = 2.0**-14


class TestFunctionalCorrectness:
    def test_all_s_tuples_match(self, ibm, wl_a):
        join = NoPartitioningJoin(ibm, hash_table_placement="gpu")
        res = join.run(wl_a.r, wl_a.s)
        assert res.matches == wl_a.s.executed_tuples

    def test_aggregate_is_sum_of_matched_r_payloads(self, ibm, wl_a):
        join = NoPartitioningJoin(ibm, hash_table_placement="gpu")
        res = join.run(wl_a.r, wl_a.s)
        # payload = key * 3 + 1, S keys index the dense domain directly.
        expected = int((wl_a.s.key.astype(np.int64) * 3 + 1).sum())
        assert res.aggregate == expected

    def test_selectivity_controls_matches(self, ibm):
        wl = workload_selectivity(0.4, scale=SCALE)
        join = NoPartitioningJoin(ibm, hash_table_placement="gpu")
        res = join.run(wl.r, wl.s)
        assert res.matches / wl.s.executed_tuples == pytest.approx(0.4, abs=0.03)

    @pytest.mark.parametrize("scheme", ["perfect", "open_addressing", "chaining"])
    def test_all_hash_schemes_agree(self, ibm, wl_a, scheme):
        join = NoPartitioningJoin(
            ibm, hash_table_placement="gpu", hash_scheme=scheme
        )
        res = join.run(wl_a.r, wl_a.s)
        assert res.matches == wl_a.s.executed_tuples


class TestPayloadLineFraction:
    def test_all_matches_loads_everything(self):
        mask = np.ones(1024, dtype=bool)
        assert payload_line_fraction(mask, 8) == 1.0

    def test_no_matches_loads_nothing(self):
        mask = np.zeros(1024, dtype=bool)
        assert payload_line_fraction(mask, 8) == 0.0

    def test_one_match_loads_one_line(self):
        per_line = LINE_BYTES // 8  # 16 values per line
        mask = np.zeros(16 * per_line, dtype=bool)
        mask[0] = True
        assert payload_line_fraction(mask, 8) == pytest.approx(1 / 16)

    def test_paper_anchor_81_5_percent(self):
        # Uniform 10% matches over 16-value lines: 1 - 0.9^16 = 81.5%.
        rng = np.random.default_rng(0)
        mask = rng.random(1 << 20) < 0.1
        assert payload_line_fraction(mask, 8) == pytest.approx(0.815, abs=0.01)

    def test_tail_line_counted(self):
        mask = np.zeros(20, dtype=bool)
        mask[-1] = True  # in the partial tail line
        fraction = payload_line_fraction(mask, 8)
        assert 0 < fraction < 1

    def test_empty_mask(self):
        assert payload_line_fraction(np.zeros(0, dtype=bool), 8) == 0.0


class TestPlacementResolution:
    def test_gpu_placement(self, ibm, wl_a):
        res = NoPartitioningJoin(ibm, hash_table_placement="gpu").run(
            wl_a.r, wl_a.s
        )
        assert res.placement.fractions == {"gpu0-mem": 1.0}

    def test_cpu_processor_forces_local_table(self, ibm, wl_a):
        res = NoPartitioningJoin(ibm, hash_table_placement="gpu").run(
            wl_a.r, wl_a.s, processor="cpu0"
        )
        assert res.placement.fractions == {"cpu0-mem": 1.0}

    def test_oversized_gpu_placement_raises(self, ibm):
        from repro.workloads.builders import workload_ratio

        wl = workload_ratio(1, scale=2.0**-13, modeled_r=2048 * 10**6)
        join = NoPartitioningJoin(ibm, hash_table_placement="gpu")
        with pytest.raises(OutOfMemoryError):
            join.run(wl.r, wl.s)

    def test_explicit_fraction_override(self, ibm, wl_a):
        join = NoPartitioningJoin(ibm)
        res = join.run(
            wl_a.r,
            wl_a.s,
            placement_fractions={"gpu0-mem": 0.3, "cpu0-mem": 0.7},
        )
        assert res.placement.fraction("gpu0-mem") == pytest.approx(0.3)

    def test_layout_validation(self, ibm):
        with pytest.raises(ValueError):
            NoPartitioningJoin(ibm, layout="csr")


class TestPerformanceModel:
    def test_probe_seq_bound_over_nvlink(self, ibm, wl_a):
        res = NoPartitioningJoin(ibm, hash_table_placement="gpu").run(
            wl_a.r, wl_a.s
        )
        assert res.probe_cost.bottleneck.startswith("link:nvlink2")

    def test_build_atomic_bound_in_gpu_memory(self, ibm, wl_a):
        res = NoPartitioningJoin(ibm, hash_table_placement="gpu").run(
            wl_a.r, wl_a.s
        )
        assert res.build_cost.bottleneck == "mem:gpu0-mem"

    def test_throughput_metric_definition(self, ibm, wl_a):
        res = NoPartitioningJoin(ibm, hash_table_placement="gpu").run(
            wl_a.r, wl_a.s
        )
        assert res.modeled_tuples == wl_a.r.modeled_tuples + wl_a.s.modeled_tuples
        assert res.throughput_tuples == pytest.approx(
            res.modeled_tuples / res.runtime
        )

    def test_cpu_table_much_slower_than_gpu_table(self, ibm, wl_a):
        gpu = NoPartitioningJoin(ibm, hash_table_placement="gpu").run(
            wl_a.r, wl_a.s
        )
        cpu = NoPartitioningJoin(ibm, hash_table_placement="cpu").run(
            wl_a.r, wl_a.s
        )
        assert gpu.throughput_gtuples / cpu.throughput_gtuples > 4

    def test_hybrid_between_gpu_and_cpu(self, ibm):
        from repro.workloads.builders import workload_ratio

        wl = workload_ratio(1, scale=2.0**-13, modeled_r=2048 * 10**6)
        hybrid = NoPartitioningJoin(ibm, hash_table_placement="hybrid").run(
            wl.r, wl.s
        )
        spill = NoPartitioningJoin(ibm, hash_table_placement="cpu").run(
            wl.r, wl.s
        )
        assert hybrid.throughput_gtuples > spill.throughput_gtuples
        assert 0 < hybrid.placement.gpu_fraction(ibm) < 1

    def test_build_fraction_in_range(self, ibm, wl_a):
        res = NoPartitioningJoin(ibm, hash_table_placement="gpu").run(
            wl_a.r, wl_a.s
        )
        assert 0 < res.build_fraction < 1

    def test_str(self, ibm, wl_a):
        res = NoPartitioningJoin(ibm, hash_table_placement="gpu").run(
            wl_a.r, wl_a.s
        )
        assert "G Tuples/s" in str(res)


class TestTransferMethodInteraction:
    def test_coherence_rejected_on_pcie(self, intel, wl_a):
        from repro.transfer.methods import UnsupportedTransferError

        join = NoPartitioningJoin(
            intel, hash_table_placement="gpu", transfer_method="coherence"
        )
        with pytest.raises(UnsupportedTransferError):
            join.run(wl_a.r, wl_a.s)

    def test_push_method_slower_than_coherence(self, ibm, wl_a):
        coherence = NoPartitioningJoin(
            ibm, hash_table_placement="gpu", transfer_method="coherence"
        ).run(wl_a.r, wl_a.s)
        staged = NoPartitioningJoin(
            ibm, hash_table_placement="gpu", transfer_method="staged_copy"
        ).run(wl_a.r, wl_a.s)
        assert coherence.throughput_gtuples > staged.throughput_gtuples

    def test_gpu_local_data_ignores_transfer_method(self, ibm, wl_a):
        r = wl_a.r.placed("gpu0-mem")
        s = wl_a.s.placed("gpu0-mem")
        a = NoPartitioningJoin(
            ibm, hash_table_placement="gpu", transfer_method="coherence"
        ).run(r, s)
        b = NoPartitioningJoin(
            ibm, hash_table_placement="gpu", transfer_method="um_migration"
        ).run(r, s)
        assert a.runtime == pytest.approx(b.runtime)


class TestPlacementFractionValidation:
    """`run(placement_fractions=...)` regression: invalid dicts used to
    be priced as given, splitting traffic onto nonexistent regions."""

    def test_unknown_region_rejected_with_hint(self, ibm, wl_a):
        join = NoPartitioningJoin(ibm)
        with pytest.raises(ValueError, match="warp-mem"):
            join.run(
                wl_a.r, wl_a.s,
                placement_fractions={"warp-mem": 1.0},
            )

    def test_error_lists_valid_regions(self, ibm, wl_a):
        join = NoPartitioningJoin(ibm)
        with pytest.raises(ValueError, match="gpu0-mem"):
            join.run(wl_a.r, wl_a.s, placement_fractions={"nope": 1.0})

    def test_fractions_not_summing_to_one_rejected(self, ibm, wl_a):
        join = NoPartitioningJoin(ibm)
        with pytest.raises(ValueError):
            join.run(
                wl_a.r, wl_a.s,
                placement_fractions={"gpu0-mem": 0.5, "cpu0-mem": 0.1},
            )

    def test_negative_fraction_rejected(self, ibm, wl_a):
        join = NoPartitioningJoin(ibm)
        with pytest.raises(ValueError):
            join.run(
                wl_a.r, wl_a.s,
                placement_fractions={"gpu0-mem": 1.5, "cpu0-mem": -0.5},
            )

    def test_valid_split_still_works(self, ibm, wl_a):
        join = NoPartitioningJoin(ibm)
        result = join.run(
            wl_a.r, wl_a.s,
            placement_fractions={"gpu0-mem": 0.5, "cpu0-mem": 0.5},
        )
        assert result.placement.is_hybrid
        assert result.matches == wl_a.s.executed_tuples
