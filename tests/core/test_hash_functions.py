"""Vectorized hash functions."""

import numpy as np
import pytest

from repro.core.hashtable.hash_functions import (
    bucket_of,
    mix64,
    multiply_shift,
    next_power_of_two,
)


class TestMix64:
    def test_deterministic(self):
        keys = np.arange(100, dtype=np.int64)
        assert np.array_equal(mix64(keys), mix64(keys))

    def test_avalanche_no_collisions_on_small_domain(self):
        keys = np.arange(100_000, dtype=np.int64)
        assert len(np.unique(mix64(keys))) == len(keys)

    def test_output_dtype(self):
        assert mix64(np.arange(4, dtype=np.int32)).dtype == np.uint64

    def test_bits_well_distributed(self):
        hashes = mix64(np.arange(65536, dtype=np.int64))
        low_bits = hashes & np.uint64(0xFF)
        _, counts = np.unique(low_bits, return_counts=True)
        assert len(counts) == 256
        assert counts.max() / counts.mean() < 1.5


class TestMultiplyShift:
    def test_range(self):
        h = multiply_shift(np.arange(1000, dtype=np.int64), bits=8)
        assert h.min() >= 0
        assert h.max() < 256

    def test_bits_validation(self):
        with pytest.raises(ValueError):
            multiply_shift(np.arange(4), bits=0)
        with pytest.raises(ValueError):
            multiply_shift(np.arange(4), bits=64)


class TestBucketOf:
    def test_requires_power_of_two(self):
        with pytest.raises(ValueError):
            bucket_of(np.arange(4), 100)

    def test_identity_scheme(self):
        keys = np.arange(16, dtype=np.int64)
        assert np.array_equal(bucket_of(keys, 16, scheme="identity"), keys)

    def test_mix_scheme_in_range(self):
        buckets = bucket_of(np.arange(1000, dtype=np.int64), 64)
        assert buckets.min() >= 0 and buckets.max() < 64

    def test_unknown_scheme(self):
        with pytest.raises(ValueError):
            bucket_of(np.arange(4), 16, scheme="magic")

    def test_balanced_fanout(self):
        buckets = bucket_of(np.arange(100_000, dtype=np.int64), 256)
        _, counts = np.unique(buckets, return_counts=True)
        assert counts.max() / counts.mean() < 1.3


class TestNextPowerOfTwo:
    @pytest.mark.parametrize(
        "n,expected",
        [(0, 1), (1, 1), (2, 2), (3, 4), (5, 8), (1024, 1024), (1025, 2048)],
    )
    def test_values(self, n, expected):
        assert next_power_of_two(n) == expected
