"""The storage catalog."""

import numpy as np
import pytest

from repro.hardware.memory import MemoryKind
from repro.memory.allocator import OutOfMemoryError
from repro.storage import Catalog, TableExistsError
from repro.utils.units import GIB


def columns(n=100):
    return {
        "id": np.arange(n, dtype=np.int64),
        "value": np.arange(n, dtype=np.int32),
    }


@pytest.fixture
def catalog(ibm):
    return Catalog(ibm)


class TestCreateDrop:
    def test_create_reserves_modeled_bytes(self, catalog):
        catalog.create_table("t", columns(100), modeled_rows=10**9)
        assert catalog.used_bytes("cpu0-mem") == 12 * 10**9

    def test_drop_releases(self, catalog):
        catalog.create_table("t", columns())
        catalog.drop_table("t")
        assert catalog.used_bytes("cpu0-mem") == 0
        assert "t" not in catalog

    def test_duplicate_name_rejected(self, catalog):
        catalog.create_table("t", columns())
        with pytest.raises(TableExistsError):
            catalog.create_table("t", columns())

    def test_empty_and_ragged_rejected(self, catalog):
        with pytest.raises(ValueError):
            catalog.create_table("empty", {})
        with pytest.raises(ValueError):
            catalog.create_table(
                "ragged", {"a": np.arange(3), "b": np.arange(4)}
            )

    def test_oversized_rejected(self, catalog):
        with pytest.raises(OutOfMemoryError):
            catalog.create_table(
                "huge", columns(), modeled_rows=200 * 10**9
            )

    def test_unknown_table(self, catalog):
        with pytest.raises(KeyError):
            catalog.table("ghost")
        with pytest.raises(KeyError):
            catalog.drop_table("ghost")

    def test_listing(self, catalog):
        catalog.create_table("b", columns())
        catalog.create_table("a", columns())
        assert catalog.tables() == ["a", "b"]


class TestTableViews:
    def test_column_access(self, catalog):
        table = catalog.create_table("t", columns(10))
        assert np.array_equal(table.column("id"), np.arange(10))
        with pytest.raises(KeyError):
            table.column("ghost")

    def test_as_relation_carries_placement(self, catalog):
        table = catalog.create_table(
            "t", columns(10), location="cpu1-mem", kind=MemoryKind.PINNED
        )
        relation = table.as_relation("id", "value")
        assert relation.location == "cpu1-mem"
        assert relation.kind is MemoryKind.PINNED
        assert relation.executed_tuples == 10

    def test_relation_feeds_join(self, catalog, ibm):
        from repro.core.join.nopa import NoPartitioningJoin

        n = 256
        catalog.create_table("r", columns(n))
        rng = np.random.default_rng(0)
        catalog.create_table(
            "s",
            {
                "id": rng.integers(0, n, 4 * n).astype(np.int64),
                "value": np.zeros(4 * n, dtype=np.int32),
            },
        )
        r = catalog.table("r").as_relation("id", "value")
        s = catalog.table("s").as_relation("id", "value")
        res = NoPartitioningJoin(ibm, hash_table_placement="gpu").run(r, s)
        assert res.matches == 4 * n

    def test_str(self, catalog):
        table = catalog.create_table("t", columns(10))
        assert "t" in str(table) and "cpu0-mem" in str(table)


class TestMigration:
    def test_migrate_moves_capacity(self, catalog):
        catalog.create_table("t", columns(100), modeled_rows=10**8)
        seconds = catalog.migrate("t", "cpu1-mem")
        assert seconds > 0
        assert catalog.used_bytes("cpu0-mem") == 0
        assert catalog.used_bytes("cpu1-mem") == 12 * 10**8
        assert catalog.table("t").location == "cpu1-mem"

    def test_migrate_to_same_region_is_free(self, catalog):
        catalog.create_table("t", columns())
        assert catalog.migrate("t", "cpu0-mem") == 0.0

    def test_migration_time_scales_with_size(self, catalog):
        catalog.create_table("small", columns(10), modeled_rows=10**7)
        catalog.create_table("large", columns(10), modeled_rows=10**9)
        t_small = catalog.migrate("small", "cpu1-mem")
        t_large = catalog.migrate("large", "cpu1-mem")
        assert t_large == pytest.approx(100 * t_small, rel=0.01)

    def test_migrate_into_full_region_fails_cleanly(self, catalog, ibm):
        catalog.create_table("t", columns(), modeled_rows=10**8)
        filler = catalog.allocator.alloc(
            "cpu1-mem", ibm.memory("cpu1-mem").free_bytes
        )
        with pytest.raises(OutOfMemoryError):
            catalog.migrate("t", "cpu1-mem")
        # The table must still be intact at the source.
        assert catalog.table("t").location == "cpu0-mem"
        catalog.allocator.free(filler)

    def test_total_modeled_bytes(self, catalog):
        catalog.create_table("a", columns(10), modeled_rows=100)
        catalog.create_table("b", columns(10), modeled_rows=200)
        assert catalog.total_modeled_bytes() == 12 * 300
