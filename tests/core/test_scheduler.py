"""Morsel dispatcher and batch tuning."""

import pytest

from repro.core.scheduler.batch import batch_overhead_fraction, tune_batch_morsels
from repro.core.scheduler.morsel import MorselDispatcher


class TestDispatcher:
    def test_hands_out_disjoint_covering_ranges(self):
        dispatcher = MorselDispatcher(100, 30)
        ranges = []
        while (grant := dispatcher.next_batch()) is not None:
            ranges.append((grant.start, grant.end))
        assert ranges == [(0, 30), (30, 60), (60, 90), (90, 100)]

    def test_batch_takes_multiple_morsels(self):
        dispatcher = MorselDispatcher(100, 10)
        grant = dispatcher.next_batch(morsels=4)
        assert (grant.start, grant.end) == (0, 40)

    def test_final_batch_truncated(self):
        dispatcher = MorselDispatcher(35, 10)
        dispatcher.next_batch(morsels=3)
        last = dispatcher.next_batch(morsels=3)
        assert last.tuples == 5
        assert dispatcher.exhausted

    def test_exhausted_returns_none(self):
        dispatcher = MorselDispatcher(10, 10)
        assert dispatcher.next_batch() is not None
        assert dispatcher.next_batch() is None

    def test_per_worker_accounting(self):
        dispatcher = MorselDispatcher(100, 25)
        dispatcher.next_batch(worker="cpu0")
        dispatcher.next_batch(worker="gpu0")
        dispatcher.next_batch(worker="gpu0")
        assert dispatcher.dispatched_tuples("cpu0") == 25
        assert dispatcher.dispatched_tuples("gpu0") == 50
        assert dispatcher.remaining == 25

    def test_empty_input(self):
        dispatcher = MorselDispatcher(0, 10)
        assert dispatcher.exhausted
        assert dispatcher.next_batch() is None

    def test_validation(self):
        with pytest.raises(ValueError):
            MorselDispatcher(-1, 10)
        with pytest.raises(ValueError):
            MorselDispatcher(10, 0)
        with pytest.raises(ValueError):
            MorselDispatcher(10, 5).next_batch(morsels=0)

    def test_next_batch_rejects_non_positive_morsels(self):
        dispatcher = MorselDispatcher(100, 10)
        with pytest.raises(ValueError, match="at least one morsel"):
            dispatcher.next_batch(morsels=0)
        with pytest.raises(ValueError, match="at least one morsel"):
            dispatcher.next_batch(morsels=-3)
        # The failed requests consumed nothing.
        assert dispatcher.remaining == 100

    def test_next_batch_rejects_non_string_worker(self):
        dispatcher = MorselDispatcher(100, 10)
        with pytest.raises(ValueError, match="worker must be a string"):
            dispatcher.next_batch(worker=0)
        with pytest.raises(ValueError, match="worker must be a string"):
            dispatcher.next_batch(worker=None)
        assert dispatcher.remaining == 100
        # A worker label of "0" is fine — it was the int that would have
        # silently collided with it in the dispatch log.
        assert dispatcher.next_batch(worker="0") is not None
        assert dispatcher.dispatched_tuples("0") == 10


class TestBatchTuning:
    def test_overhead_shrinks_with_batch(self):
        small = batch_overhead_fraction(1, 10_000, 1e9, 20e-6)
        large = batch_overhead_fraction(64, 10_000, 1e9, 20e-6)
        assert large < small

    def test_tuner_meets_target(self):
        batch = tune_batch_morsels(
            morsel_tuples=10_000,
            worker_rate=1e9,
            dispatch_latency=20e-6,
            target_overhead=0.02,
        )
        overhead = batch_overhead_fraction(batch, 10_000, 1e9, 20e-6)
        assert overhead <= 0.02

    def test_tuner_is_minimal_power_of_two(self):
        batch = tune_batch_morsels(10_000, 1e9, 20e-6, target_overhead=0.02)
        assert batch > 1
        smaller = batch // 2
        assert batch_overhead_fraction(smaller, 10_000, 1e9, 20e-6) > 0.02

    def test_tuner_caps_at_max_batch(self):
        batch = tune_batch_morsels(
            10, 1e12, 1.0, target_overhead=0.001, max_batch=64
        )
        assert batch == 64

    def test_tiny_latency_needs_one_morsel(self):
        assert tune_batch_morsels(1 << 20, 1e9, 1e-9) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            batch_overhead_fraction(0, 10, 1e9, 1e-6)
        with pytest.raises(ValueError):
            batch_overhead_fraction(1, 10, 0, 1e-6)
        with pytest.raises(ValueError):
            tune_batch_morsels(10, 1e9, 1e-6, target_overhead=1.5)
