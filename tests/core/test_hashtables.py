"""The three hash tables: perfect, open addressing, chaining.

Shared behavioural tests run against all three; scheme-specific tests
cover their individual contracts.
"""

import numpy as np
import pytest

from repro.core.hashtable import create_hash_table
from repro.core.hashtable.chaining import ChainingHashTable
from repro.core.hashtable.open_addressing import OpenAddressingHashTable
from repro.core.hashtable.perfect import PerfectHashTable

SCHEMES = ("perfect", "open_addressing", "chaining")


def build_table(scheme, n=1000, seed=0):
    rng = np.random.default_rng(seed)
    keys = rng.permutation(n).astype(np.int64)
    values = keys * 10 + 1
    table = create_hash_table(scheme, n, np.int64, np.int64)
    table.insert_batch(keys, values)
    return table, keys, values


@pytest.mark.parametrize("scheme", SCHEMES)
class TestSharedBehaviour:
    def test_lookup_finds_all_inserted(self, scheme):
        table, keys, values = build_table(scheme)
        found, got = table.lookup_batch(keys)
        assert found.all()
        assert np.array_equal(got, values)

    def test_lookup_misses_absent_keys(self, scheme):
        table, keys, _ = build_table(scheme, n=500)
        absent = np.arange(500, 1000, dtype=np.int64)
        found, _ = table.lookup_batch(absent)
        assert not found.any()

    def test_mixed_hits_and_misses(self, scheme):
        table, keys, values = build_table(scheme, n=256)
        probes = np.concatenate([keys[:100], np.arange(256, 356)])
        found, got = table.lookup_batch(probes.astype(np.int64))
        assert found[:100].all()
        assert not found[100:].any()
        assert np.array_equal(got[:100], values[:100])

    def test_stats_count_lookups(self, scheme):
        table, keys, _ = build_table(scheme, n=100)
        table.stats.reset()
        table.lookup_batch(keys[:40])
        assert table.stats.lookups == 40
        assert table.stats.lookup_probes >= 40
        assert table.stats.value_reads == 40

    def test_stats_count_inserts(self, scheme):
        table, keys, _ = build_table(scheme, n=100)
        assert table.stats.inserts == 100
        assert table.stats.insert_probes >= 100

    def test_size_tracked(self, scheme):
        table, _, __ = build_table(scheme, n=300)
        assert table.size == 300
        assert 0 < table.load_factor <= 1.0

    def test_empty_batches(self, scheme):
        table = create_hash_table(scheme, 16, np.int64, np.int64)
        table.insert_batch(np.array([], dtype=np.int64), np.array([], dtype=np.int64))
        found, values = table.lookup_batch(np.array([], dtype=np.int64))
        assert len(found) == 0 and len(values) == 0

    def test_negative_keys_rejected(self, scheme):
        table = create_hash_table(scheme, 16, np.int64, np.int64)
        with pytest.raises(ValueError):
            table.insert_batch(
                np.array([-1], dtype=np.int64), np.array([0], dtype=np.int64)
            )

    def test_batch_length_mismatch_rejected(self, scheme):
        table = create_hash_table(scheme, 16, np.int64, np.int64)
        with pytest.raises(ValueError):
            table.insert_batch(
                np.array([1, 2], dtype=np.int64), np.array([1], dtype=np.int64)
            )

    def test_int32_tuples(self, scheme):
        rng = np.random.default_rng(3)
        keys = rng.permutation(200).astype(np.int32)
        table = create_hash_table(scheme, 200, np.int32, np.int32)
        table.insert_batch(keys, keys)
        found, got = table.lookup_batch(keys)
        assert found.all()
        assert table.entry_bytes == 8

    def test_modeled_bytes_scales_with_build_side(self, scheme):
        table, _, __ = build_table(scheme, n=1000)
        small = table.modeled_bytes(10**6)
        large = table.modeled_bytes(10**7)
        assert large == pytest.approx(10 * small, rel=0.01)


class TestPerfectSpecifics:
    def test_identity_slots(self):
        table = PerfectHashTable(16)
        keys = np.array([3, 7], dtype=np.int64)
        table.insert_batch(keys, keys * 2)
        assert table.keys[3] == 3
        assert table.values[7] == 14

    def test_out_of_domain_insert_rejected(self):
        table = PerfectHashTable(16)
        with pytest.raises(ValueError):
            table.insert_batch(
                np.array([16], dtype=np.int64), np.array([0], dtype=np.int64)
            )

    def test_out_of_domain_lookup_is_miss(self):
        table = PerfectHashTable(16)
        table.insert_batch(
            np.arange(16, dtype=np.int64), np.arange(16, dtype=np.int64)
        )
        found, _ = table.lookup_batch(np.array([100], dtype=np.int64))
        assert not found.any()

    def test_duplicate_insert_rejected(self):
        table = PerfectHashTable(16)
        keys = np.array([5], dtype=np.int64)
        table.insert_batch(keys, keys)
        with pytest.raises(ValueError):
            table.insert_batch(keys, keys)

    def test_exactly_one_probe_per_lookup(self):
        table, keys, _ = build_table("perfect", n=512)
        table.stats.reset()
        table.lookup_batch(keys)
        assert table.stats.probe_factor == 1.0


class TestOpenAddressingSpecifics:
    def test_capacity_is_power_of_two_with_headroom(self):
        table = OpenAddressingHashTable(1000)
        assert table.capacity == 2048  # 1000 / 0.5 rounded up

    def test_collisions_resolved_by_linear_probing(self):
        # Force collisions with a tiny table.
        table = OpenAddressingHashTable(8, load_factor=0.9)
        keys = np.arange(7, dtype=np.int64)
        table.insert_batch(keys, keys)
        found, got = table.lookup_batch(keys)
        assert found.all()
        assert np.array_equal(got, keys)

    def test_probe_factor_above_one_when_loaded(self):
        table = OpenAddressingHashTable(600, load_factor=0.75)
        keys = np.random.default_rng(1).permutation(600).astype(np.int64)
        table.insert_batch(keys, keys)
        table.stats.reset()
        table.lookup_batch(keys)
        assert table.stats.probe_factor > 1.0

    def test_overflow_rejected(self):
        table = OpenAddressingHashTable(4, load_factor=0.5)
        keys = np.arange(table.capacity + 1, dtype=np.int64)
        with pytest.raises(ValueError):
            table.insert_batch(keys, keys)

    def test_duplicate_rejected(self):
        table = OpenAddressingHashTable(16)
        keys = np.array([4], dtype=np.int64)
        table.insert_batch(keys, keys)
        with pytest.raises(ValueError):
            table.insert_batch(keys, keys)

    def test_within_batch_duplicate_rejected(self):
        # Regression: a duplicate inside one batch used to be silently
        # dropped (both copies pass the post-scatter re-read, one value
        # lost) while still inflating `size` by two.
        table = OpenAddressingHashTable(16)
        keys = np.array([3, 7, 3], dtype=np.int64)
        with pytest.raises(ValueError, match="duplicate key insert"):
            table.insert_batch(keys, keys * 10)
        assert table.size == 0  # rejected up front, nothing inserted

    def test_lookup_absent_key_in_full_table_terminates(self):
        # Regression: with the table 100% full no slot is ever EMPTY, so
        # lookups for absent keys never hit the miss sentinel and the
        # probe loop used to exhaust its round budget and raise
        # RuntimeError("lookup did not converge").  Absent keys in a full
        # table are a legal query and must simply return not-found.
        table = OpenAddressingHashTable(8, load_factor=0.9)
        keys = np.arange(table.capacity, dtype=np.int64)
        table.insert_batch(keys, keys * 2)
        assert table.load_factor == 1.0
        absent = np.array([table.capacity + 5, table.capacity + 9], dtype=np.int64)
        found, _ = table.lookup_batch(absent)
        assert not found.any()
        # present keys still resolve in the same full table
        found, got = table.lookup_batch(keys)
        assert found.all()
        assert np.array_equal(got, keys * 2)

    def test_load_factor_validation(self):
        with pytest.raises(ValueError):
            OpenAddressingHashTable(16, load_factor=0.95)

    def test_incremental_batches(self):
        table = OpenAddressingHashTable(1000)
        rng = np.random.default_rng(2)
        keys = rng.permutation(1000).astype(np.int64)
        for start in range(0, 1000, 100):
            chunk = keys[start : start + 100]
            table.insert_batch(chunk, chunk * 2)
        found, got = table.lookup_batch(keys)
        assert found.all()
        assert np.array_equal(got, keys * 2)


class TestChainingSpecifics:
    def test_chains_traversed(self):
        # One bucket forces a single chain holding everything.
        table = ChainingHashTable(32, buckets_per_entry=1 / 16)
        keys = np.arange(32, dtype=np.int64)
        table.insert_batch(keys, keys * 3)
        found, got = table.lookup_batch(keys)
        assert found.all()
        assert np.array_equal(got, keys * 3)

    def test_table_bytes_include_chain_pointers(self):
        table = ChainingHashTable(100)
        flat = 100 * table.entry_bytes
        assert table.table_bytes > flat

    def test_overflow_rejected(self):
        table = ChainingHashTable(4)
        keys = np.arange(5, dtype=np.int64)
        with pytest.raises(ValueError):
            table.insert_batch(keys, keys)

    def test_probe_factor_grows_with_chain_length(self):
        packed = ChainingHashTable(256, buckets_per_entry=1 / 64)
        keys = np.arange(256, dtype=np.int64)
        packed.insert_batch(keys, keys)
        packed.stats.reset()
        packed.lookup_batch(keys)
        assert packed.stats.probe_factor > 2.0


def test_factory_rejects_unknown_scheme():
    with pytest.raises(ValueError):
        create_hash_table("cuckoo", 16, np.int64, np.int64)


class TestInvariantRegressions:
    """The four hardened invariants of the duplicate/view/bytes contract."""

    def test_perfect_within_batch_duplicate_rejected(self):
        # Regression: `slots = keys` scatters both copies to the same
        # slot — the last write silently wins, one value is lost, and
        # `size` claims both.  The batch must be rejected up front.
        table = PerfectHashTable(16)
        keys = np.array([2, 9, 2], dtype=np.int64)
        with pytest.raises(ValueError, match="unique keys"):
            table.insert_batch(keys, keys * 10)
        assert table.size == 0
        assert (table.keys == table.EMPTY).all()

    def test_perfect_size_equals_occupied_slots(self):
        # The pinned invariant: after any successful insert sequence,
        # `size` equals the number of occupied slots.
        table = PerfectHashTable(64)
        rng = np.random.default_rng(3)
        keys = rng.permutation(64)[:40].astype(np.int64)
        table.insert_batch(keys[:25], keys[:25])
        table.insert_batch(keys[25:], keys[25:])
        assert table.size == int(np.count_nonzero(table.keys != table.EMPTY))

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_modeled_bytes_exact_for_full_table(self, scheme):
        # Regression: the base accounting priced key+value bytes only,
        # undercounting chaining's next pointers and bucket heads (and
        # float truncation could lose an entry).  Modeling the actual
        # build side must reproduce the actual table exactly.
        table, _, _ = build_table(scheme, n=1000)
        assert table.modeled_bytes(table.size) == table.table_bytes

    def test_open_addressing_failed_insert_leaves_table_bit_identical(self):
        # Exception safety: validation precedes any scatter, so a
        # rejected batch leaves storage, size, and stats untouched.
        table = OpenAddressingHashTable(64)
        keys = np.arange(32, dtype=np.int64)
        table.insert_batch(keys, keys * 2)
        before_keys = table.keys.copy()
        before_values = table.values.copy()
        before_stats = table.stats.as_tuple()
        before_size = table.size
        clash = np.array([100, 5, 101], dtype=np.int64)  # 5 already present
        with pytest.raises(ValueError, match="duplicate key insert"):
            table.insert_batch(clash, clash)
        assert np.array_equal(table.keys, before_keys)
        assert np.array_equal(table.values, before_values)
        assert table.stats.as_tuple() == before_stats
        assert table.size == before_size

    def test_chaining_rejects_duplicates_by_default(self):
        table = ChainingHashTable(16)
        keys = np.array([4], dtype=np.int64)
        table.insert_batch(keys, keys)
        with pytest.raises(ValueError, match="duplicate key insert"):
            table.insert_batch(keys, keys * 2)
        with pytest.raises(ValueError, match="duplicate key insert"):
            table.insert_batch(np.array([7, 7], dtype=np.int64),
                               np.zeros(2, dtype=np.int64))
        assert table.size == 1

    def test_chaining_duplicates_need_explicit_opt_in(self):
        table = ChainingHashTable(16, allow_duplicates=True)
        keys = np.array([4, 4, 4], dtype=np.int64)
        table.insert_batch(keys, np.array([1, 2, 3], dtype=np.int64))
        assert table.size == 3

    @pytest.mark.parametrize("scheme", ("open_addressing", "chaining"))
    def test_insert_through_stats_view_rejected(self, scheme):
        # A view's size=0 reset would corrupt chaining's row cursor and
        # open addressing's occupancy check; only slot-disjoint perfect
        # builds may go through views.
        table, _, _ = build_table(scheme, n=64)
        view = table.stats_view()
        with pytest.raises(ValueError, match="stats_view"):
            view.insert_batch(np.array([999], dtype=np.int64),
                              np.array([0], dtype=np.int64))

    def test_perfect_view_insert_still_allowed(self):
        table = PerfectHashTable(8)
        view = table.stats_view()
        view.insert_batch(np.array([3], dtype=np.int64),
                          np.array([30], dtype=np.int64))
        table.absorb_view(view)
        assert table.size == 1
        found, got = table.lookup_batch(np.array([3], dtype=np.int64))
        assert found.all() and got[0] == 30
