"""Cache-line-granular selection cascades."""

import numpy as np
import pytest

from repro.core.ops.selection import line_any, selection_line_fractions


class TestLineAny:
    def test_basic(self):
        mask = np.array([0, 0, 1, 0, 0, 0, 0, 0], dtype=bool)
        lines = line_any(mask, values_per_line=4)
        assert list(lines) == [True, False]

    def test_partial_tail(self):
        mask = np.array([0, 0, 0, 0, 1], dtype=bool)
        lines = line_any(mask, values_per_line=4)
        assert list(lines) == [False, True]

    def test_empty(self):
        assert len(line_any(np.zeros(0, dtype=bool), 4)) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            line_any(np.zeros(4, dtype=bool), 0)


class TestSelectionFractions:
    def test_first_column_always_full(self):
        masks = [np.zeros(64, dtype=bool)]
        fractions = selection_line_fractions(masks, value_bytes=4)
        assert fractions[0] == 1.0

    def test_all_pass_cascade(self):
        masks = [np.ones(128, dtype=bool)] * 3
        fractions = selection_line_fractions(masks, value_bytes=4)
        assert fractions == [1.0, 1.0, 1.0, 1.0]

    def test_nothing_passes_first_predicate(self):
        masks = [np.zeros(128, dtype=bool), np.ones(128, dtype=bool)]
        fractions = selection_line_fractions(masks, value_bytes=4)
        assert fractions[1] == 0.0
        assert fractions[2] == 0.0

    def test_clustered_beats_scattered(self):
        n = 32 * 64
        clustered = np.zeros(n, dtype=bool)
        clustered[: n // 8] = True  # one contiguous run
        rng = np.random.default_rng(0)
        scattered = np.zeros(n, dtype=bool)
        scattered[rng.choice(n, n // 8, replace=False)] = True
        f_clustered = selection_line_fractions([clustered, clustered])
        f_scattered = selection_line_fractions([scattered, scattered])
        assert f_clustered[1] < f_scattered[1]

    def test_cascade_monotone(self):
        rng = np.random.default_rng(1)
        masks = [rng.random(32 * 100) < p for p in (0.3, 0.5, 0.5)]
        fractions = selection_line_fractions(masks, value_bytes=4)
        assert fractions[1] >= fractions[2] >= fractions[3]

    def test_requires_masks(self):
        with pytest.raises(ValueError):
            selection_line_fractions([])

    def test_returns_one_extra_fraction_for_aggregates(self):
        masks = [np.ones(32, dtype=bool)] * 2
        fractions = selection_line_fractions(masks)
        assert len(fractions) == 3  # 2 predicate columns + aggregate tail
