"""Join-result materialization (Section 5.1's 'aggregate or
materialization')."""

import numpy as np
import pytest

from repro.core.join.nopa import NoPartitioningJoin
from repro.workloads.builders import workload_a, workload_selectivity

SCALE = 2.0**-14


class TestFunctional:
    def test_materialized_output_columns(self, ibm, wl_a):
        join = NoPartitioningJoin(
            ibm, hash_table_placement="gpu", output="materialize"
        )
        res = join.run(wl_a.r, wl_a.s)
        out = res.materialized
        assert out is not None
        assert set(out) == {"key", "s_payload", "r_payload"}
        assert len(out["key"]) == res.matches
        # r payload = key * 3 + 1 by construction.
        assert np.array_equal(
            out["r_payload"], out["key"].astype(np.int64) * 3 + 1
        )
        # s payload = key * 7 + 5 by construction.
        assert np.array_equal(
            out["s_payload"], out["key"].astype(np.int64) * 7 + 5
        )

    def test_aggregate_mode_has_no_materialization(self, ibm, wl_a):
        res = NoPartitioningJoin(ibm, hash_table_placement="gpu").run(
            wl_a.r, wl_a.s
        )
        assert res.materialized is None

    def test_materialize_respects_selectivity(self, ibm):
        wl = workload_selectivity(0.3, scale=SCALE)
        res = NoPartitioningJoin(
            ibm, hash_table_placement="gpu", output="materialize"
        ).run(wl.r, wl.s)
        assert len(res.materialized["key"]) == res.matches
        assert res.matches < wl.s.executed_tuples

    def test_invalid_output_rejected(self, ibm):
        with pytest.raises(ValueError):
            NoPartitioningJoin(ibm, output="csv")


class TestModel:
    def test_materialization_costs_write_bandwidth(self, ibm, wl_a):
        aggregate = NoPartitioningJoin(ibm, hash_table_placement="gpu").run(
            wl_a.r, wl_a.s
        )
        materialize = NoPartitioningJoin(
            ibm, hash_table_placement="gpu", output="materialize"
        ).run(wl_a.r, wl_a.s)
        assert materialize.runtime > aggregate.runtime
        # The result write lands in the processor's local memory.
        assert (
            materialize.probe_cost.occupancy["mem:gpu0-mem"]
            > aggregate.probe_cost.occupancy["mem:gpu0-mem"]
        )

    def test_materialization_cost_scales_with_matches(self, ibm):
        low = workload_selectivity(0.1, scale=SCALE)
        high = workload_selectivity(0.9, scale=SCALE)
        join = NoPartitioningJoin(
            ibm, hash_table_placement="gpu", output="materialize"
        )
        t_low = join.run(low.r, low.s)
        t_high = join.run(high.r, high.s)
        write_low = t_low.probe_cost.occupancy["mem:gpu0-mem"]
        write_high = t_high.probe_cost.occupancy["mem:gpu0-mem"]
        assert write_high > write_low
