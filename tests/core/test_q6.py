"""TPC-H Q6 operator (branching and predicated variants)."""

import dataclasses

import numpy as np
import pytest

from repro.core.ops.q6 import TpchQ6
from repro.hardware.memory import MemoryKind
from repro.workloads.tpch import (
    Q6_DISCOUNT_HI,
    Q6_DISCOUNT_LO,
    Q6_QUANTITY_LT,
    Q6_SHIPDATE_HI,
    Q6_SHIPDATE_LO,
    lineitem_q6,
)


@pytest.fixture(scope="module")
def workload():
    return lineitem_q6(scale_factor=100, scale=2**-10, seed=11)


class TestFunctional:
    def test_revenue_matches_reference(self, ibm, workload):
        mask = (
            (workload.shipdate >= Q6_SHIPDATE_LO)
            & (workload.shipdate < Q6_SHIPDATE_HI)
            & (workload.discount >= np.float32(Q6_DISCOUNT_LO - 1e-6))
            & (workload.discount <= np.float32(Q6_DISCOUNT_HI + 1e-6))
            & (workload.quantity < Q6_QUANTITY_LT)
        )
        expected = float(
            (
                workload.extendedprice[mask].astype(np.float64)
                * workload.discount[mask].astype(np.float64)
            ).sum()
        )
        res = TpchQ6(ibm, variant="predicated").run(workload, processor="cpu0")
        assert res.revenue == pytest.approx(expected)
        assert res.qualifying_rows == int(mask.sum())

    def test_both_variants_compute_identical_results(self, ibm, workload):
        branching = TpchQ6(ibm, variant="branching").run(workload, "gpu0")
        predicated = TpchQ6(ibm, variant="predicated").run(workload, "gpu0")
        assert branching.revenue == pytest.approx(predicated.revenue)
        assert branching.qualifying_rows == predicated.qualifying_rows

    def test_selectivity_low(self, ibm, workload):
        res = TpchQ6(ibm, variant="predicated").run(workload, "cpu0")
        assert res.selectivity < 0.05

    def test_unknown_variant_rejected(self, ibm):
        with pytest.raises(ValueError):
            TpchQ6(ibm, variant="vectorized")


class TestColumnFractions:
    def test_predicated_loads_everything(self, ibm, workload):
        res = TpchQ6(ibm, variant="predicated").run(workload, "gpu0")
        assert res.column_line_fractions == [1.0, 1.0, 1.0, 1.0]

    def test_branching_skips_later_columns(self, ibm, workload):
        res = TpchQ6(ibm, variant="branching").run(workload, "gpu0")
        fractions = res.column_line_fractions
        assert fractions[0] == 1.0
        assert all(f < 1.0 for f in fractions[1:])
        # The cascade can only shrink.
        assert fractions[1] >= fractions[2] >= fractions[3]

    def test_unclustered_data_defeats_skipping(self, ibm):
        scattered = lineitem_q6(
            scale_factor=100, scale=2**-10, shipdate_jitter_days=2000
        )
        clustered = lineitem_q6(
            scale_factor=100, scale=2**-10, shipdate_jitter_days=0
        )
        res_s = TpchQ6(ibm, variant="branching").run(scattered, "gpu0")
        res_c = TpchQ6(ibm, variant="branching").run(clustered, "gpu0")
        assert res_c.column_line_fractions[1] < res_s.column_line_fractions[1]


class TestPerformanceShapes:
    """Figure 15's qualitative claims."""

    def test_cpu_predicated_is_overall_best(self, ibm, intel, workload):
        cpu = TpchQ6(ibm, variant="predicated").run(workload, "cpu0")
        nv_b = TpchQ6(ibm, variant="branching").run(workload, "gpu0")
        nv_p = TpchQ6(ibm, variant="predicated").run(workload, "gpu0")
        assert cpu.throughput_gtuples > nv_b.throughput_gtuples
        assert cpu.throughput_gtuples > nv_p.throughput_gtuples

    def test_branching_beats_predication_on_gpu(self, ibm, workload):
        branching = TpchQ6(ibm, variant="branching").run(workload, "gpu0")
        predicated = TpchQ6(ibm, variant="predicated").run(workload, "gpu0")
        assert branching.throughput_gtuples > predicated.throughput_gtuples

    def test_predication_beats_branching_on_cpu(self, ibm, workload):
        branching = TpchQ6(ibm, variant="branching").run(workload, "cpu0")
        predicated = TpchQ6(ibm, variant="predicated").run(workload, "cpu0")
        assert predicated.throughput_gtuples > branching.throughput_gtuples

    def test_nvlink_multiples_over_pcie(self, ibm, intel, workload):
        nv = TpchQ6(ibm, variant="predicated").run(workload, "gpu0")
        pinned = dataclasses.replace(workload, kind=MemoryKind.PINNED)
        pcie = TpchQ6(
            intel, variant="predicated", transfer_method="zero_copy"
        ).run(pinned, "gpu0")
        ratio = nv.throughput_gtuples / pcie.throughput_gtuples
        assert 3 < ratio < 12  # paper: up to 9.8x

    def test_gpu_scan_is_interconnect_bound(self, ibm, workload):
        res = TpchQ6(ibm, variant="predicated").run(workload, "gpu0")
        assert res.cost.bottleneck.startswith("link:nvlink2")

    def test_throughput_flat_across_scale_factors(self, ibm):
        t = []
        for sf in (100, 1000):
            wl = lineitem_q6(scale_factor=sf, scale=2**-10)
            t.append(
                TpchQ6(ibm, variant="predicated")
                .run(wl, "gpu0")
                .throughput_gtuples
            )
        assert t[0] == pytest.approx(t[1], rel=0.05)
