"""The vectorized query engine."""

import numpy as np
import pytest

from repro.data.relation import Relation
from repro.engine import (
    Filter,
    HashAggregate,
    HashJoinOp,
    Limit,
    Project,
    TableScan,
    collect,
)


def scan(n=1000, morsel=128):
    rng = np.random.default_rng(0)
    return TableScan(
        {
            "k": np.arange(n, dtype=np.int64),
            "v": rng.integers(0, 100, n).astype(np.int64),
            "g": rng.integers(0, 5, n).astype(np.int64),
        },
        morsel_rows=morsel,
    )


class TestTableScan:
    def test_batches_cover_input(self):
        result = collect(scan(1000, morsel=128))
        assert len(result["k"]) == 1000
        assert np.array_equal(result["k"], np.arange(1000))

    def test_morsel_sizes(self):
        batches = list(scan(300, morsel=128))
        assert [len(b["k"]) for b in batches] == [128, 128, 44]

    def test_relation_source(self):
        relation = Relation(
            name="R",
            key=np.arange(10, dtype=np.int64),
            payload=np.arange(10, dtype=np.int64) * 2,
        )
        result = collect(TableScan(relation))
        assert set(result) == {"key", "payload"}
        assert np.array_equal(result["payload"], np.arange(10) * 2)

    def test_column_selection(self):
        op = TableScan({"a": np.arange(4), "b": np.arange(4)}, columns=["b"])
        assert op.schema() == ("b",)

    def test_ragged_input_rejected(self):
        with pytest.raises(ValueError):
            TableScan({"a": np.arange(3), "b": np.arange(4)})

    def test_validation(self):
        with pytest.raises(ValueError):
            TableScan({"a": np.arange(3)}, morsel_rows=0)
        with pytest.raises(ValueError):
            TableScan({})


class TestFilter:
    def test_filters_rows(self):
        result = collect(Filter(scan(1000), lambda b: b["k"] % 2 == 0))
        assert len(result["k"]) == 500
        assert (result["k"] % 2 == 0).all()

    def test_empty_batches_dropped(self):
        op = Filter(scan(1000), lambda b: b["k"] < 0)
        assert list(op) == []

    def test_all_pass_is_zero_copy(self):
        batches = list(Filter(scan(100, morsel=100), lambda b: b["k"] >= 0))
        assert len(batches) == 1

    def test_bad_predicate_shape_rejected(self):
        op = Filter(scan(100), lambda b: np.array([True]))
        with pytest.raises(ValueError):
            list(op)


class TestProject:
    def test_expressions(self):
        result = collect(
            Project(scan(10, morsel=4), {"double": lambda b: b["v"] * 2})
        )
        reference = collect(scan(10, morsel=4))["v"] * 2
        assert np.array_equal(result["double"], reference)

    def test_schema(self):
        op = Project(scan(10), {"x": lambda b: b["k"]})
        assert op.schema() == ("x",)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Project(scan(10), {})


class TestLimit:
    def test_truncates(self):
        result = collect(Limit(scan(1000, morsel=128), 300))
        assert len(result["k"]) == 300
        assert np.array_equal(result["k"], np.arange(300))

    def test_limit_larger_than_input(self):
        result = collect(Limit(scan(50), 100))
        assert len(result["k"]) == 50

    def test_zero(self):
        assert len(collect(Limit(scan(50), 0)).get("k", [])) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Limit(scan(10), -1)


class TestHashJoinOp:
    def test_inner_join(self):
        r = TableScan(
            {
                "k": np.arange(100, dtype=np.int64),
                "name": np.arange(100, dtype=np.int64) * 10,
            }
        )
        s = TableScan(
            {
                "fk": np.array([5, 5, 99, 100, 200], dtype=np.int64),
                "amount": np.array([1, 2, 3, 4, 5], dtype=np.int64),
            },
            morsel_rows=2,
        )
        result = collect(HashJoinOp(r, s, build_key="k", probe_key="fk"))
        assert len(result["fk"]) == 3  # 100 and 200 have no match
        assert np.array_equal(np.sort(result["fk"]), [5, 5, 99])
        by_fk = dict(zip(result["fk"], result["build_name"]))
        assert by_fk[5] == 50 and by_fk[99] == 990

    def test_matches_nopa_counts(self, ibm, wl_a):
        join = HashJoinOp(
            TableScan(wl_a.r),
            TableScan(wl_a.s),
            build_key="key",
            probe_key="key",
        )
        result = collect(join)
        assert len(result["key"]) == wl_a.s.executed_tuples
        # The joined build payload equals key*3+1 by construction.
        assert np.array_equal(
            result["build_payload"],
            result["key"].astype(np.int64) * 3 + 1,
        )

    def test_empty_build_side(self):
        r = TableScan({"k": np.array([], dtype=np.int64)})
        s = TableScan({"fk": np.arange(5, dtype=np.int64)})
        assert list(HashJoinOp(r, s, "k", "fk")) == []

    def test_schema_prefixes_build_columns(self):
        r = TableScan({"k": np.arange(3, dtype=np.int64), "x": np.arange(3)})
        s = TableScan({"fk": np.arange(3, dtype=np.int64)})
        op = HashJoinOp(r, s, "k", "fk")
        assert op.schema() == ("fk", "build_x")


class TestHashAggregate:
    def test_global_sum_and_count(self):
        result = collect(
            HashAggregate(
                scan(1000, morsel=128),
                group_by=(),
                aggregates={"total": ("v", "sum"), "n": ("*", "count")},
            )
        )
        reference = collect(scan(1000))
        assert result["total"][0] == reference["v"].sum()
        assert result["n"][0] == 1000

    def test_group_by_matches_numpy(self):
        source = scan(1000, morsel=77)
        result = collect(
            HashAggregate(
                source,
                group_by=("g",),
                aggregates={
                    "total": ("v", "sum"),
                    "n": ("*", "count"),
                    "lo": ("v", "min"),
                    "hi": ("v", "max"),
                },
            )
        )
        data = collect(scan(1000))
        for i, g in enumerate(result["g"]):
            mask = data["g"] == g
            assert result["total"][i] == data["v"][mask].sum()
            assert result["n"][i] == mask.sum()
            assert result["lo"][i] == data["v"][mask].min()
            assert result["hi"][i] == data["v"][mask].max()

    def test_mean(self):
        result = collect(
            HashAggregate(
                scan(500, morsel=64),
                group_by=("g",),
                aggregates={"avg": ("v", "mean")},
            )
        )
        data = collect(scan(500))
        for g, avg in zip(result["g"], result["avg"]):
            assert avg == pytest.approx(data["v"][data["g"] == g].mean())

    def test_aggregation_independent_of_morsel_size(self):
        results = []
        for morsel in (32, 1000):
            results.append(
                collect(
                    HashAggregate(
                        scan(1000, morsel=morsel),
                        group_by=("g",),
                        aggregates={"total": ("v", "sum")},
                    )
                )
            )
        assert np.array_equal(results[0]["g"], results[1]["g"])
        assert np.array_equal(results[0]["total"], results[1]["total"])

    def test_validation(self):
        with pytest.raises(ValueError):
            HashAggregate(scan(10), (), {})
        with pytest.raises(ValueError):
            HashAggregate(scan(10), (), {"x": ("v", "median")})
        with pytest.raises(ValueError):
            HashAggregate(scan(10), (), {"x": ("v", "count")})

    def test_empty_input(self):
        op = HashAggregate(
            Filter(scan(10), lambda b: b["k"] < 0),
            group_by=("g",),
            aggregates={"total": ("v", "sum")},
        )
        assert list(op) == []


class TestPipelines:
    def test_q6_through_the_engine(self, ibm):
        """Q6 via generic operators equals the dedicated operator."""
        from repro.core.ops.q6 import TpchQ6
        from repro.workloads.tpch import (
            Q6_DISCOUNT_HI,
            Q6_DISCOUNT_LO,
            Q6_QUANTITY_LT,
            Q6_SHIPDATE_HI,
            Q6_SHIPDATE_LO,
            lineitem_q6,
        )

        wl = lineitem_q6(scale_factor=10, scale=2**-8)
        scan_op = TableScan(wl.columns(), morsel_rows=8192)
        filtered = Filter(
            scan_op,
            lambda b: (
                (b["l_shipdate"] >= Q6_SHIPDATE_LO)
                & (b["l_shipdate"] < Q6_SHIPDATE_HI)
                & (b["l_discount"] >= np.float32(Q6_DISCOUNT_LO - 1e-6))
                & (b["l_discount"] <= np.float32(Q6_DISCOUNT_HI + 1e-6))
                & (b["l_quantity"] < Q6_QUANTITY_LT)
            ),
        )
        revenue = Project(
            filtered,
            {
                "rev": lambda b: b["l_extendedprice"].astype(np.float64)
                * b["l_discount"].astype(np.float64)
            },
        )
        result = collect(
            HashAggregate(revenue, (), {"revenue": ("rev", "sum")})
        )
        reference = TpchQ6(ibm, variant="predicated").run(wl, "cpu0")
        assert result["revenue"][0] == pytest.approx(reference.revenue)

    def test_join_aggregate_pipeline(self, ibm, wl_a):
        """Join + aggregate equals the NOPA operator's aggregate."""
        from repro.core.join.nopa import NoPartitioningJoin

        joined = HashJoinOp(
            TableScan(wl_a.r), TableScan(wl_a.s), "key", "key"
        )
        total = collect(
            HashAggregate(
                joined, (), {"agg": ("build_payload", "sum")}
            )
        )
        reference = NoPartitioningJoin(ibm, hash_table_placement="gpu").run(
            wl_a.r, wl_a.s
        )
        assert int(total["agg"][0]) == reference.aggregate
