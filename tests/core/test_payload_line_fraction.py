"""Edge cases and properties of cache-line-granular payload skipping.

`payload_line_fraction` (Section 7.2.9) drives the Figure 15/20
selectivity results; these tests pin its boundary behaviour and prove
monotonicity in the match mask.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.join.nopa import LINE_BYTES, payload_line_fraction


class TestEdgeCases:
    def test_empty_mask_is_zero(self):
        assert payload_line_fraction(np.zeros(0, dtype=bool), 8) == 0.0

    def test_mask_shorter_than_one_line(self):
        # 4 values of a 16-per-line column: one partial line.
        mask = np.zeros(4, dtype=bool)
        assert payload_line_fraction(mask, 8) == 0.0
        mask[2] = True
        assert payload_line_fraction(mask, 8) == 1.0

    def test_payload_wider_than_line_one_value_per_line(self):
        # payload_bytes > LINE_BYTES: every value occupies >= 1 line,
        # so the fraction equals the selectivity exactly.
        mask = np.array([True, False, True, False], dtype=bool)
        assert payload_line_fraction(mask, LINE_BYTES * 2) == pytest.approx(0.5)

    def test_payload_equal_to_line(self):
        mask = np.array([True, False], dtype=bool)
        assert payload_line_fraction(mask, LINE_BYTES) == pytest.approx(0.5)

    def test_partial_tail_line_counts_as_one_line(self):
        per_line = LINE_BYTES // 8
        # Two full lines plus a 1-value tail; only the tail matches.
        mask = np.zeros(2 * per_line + 1, dtype=bool)
        mask[-1] = True
        assert payload_line_fraction(mask, 8) == pytest.approx(1 / 3)

    def test_clustered_matches_cheaper_than_scattered(self):
        per_line = LINE_BYTES // 8
        n = 64 * per_line
        clustered = np.zeros(n, dtype=bool)
        clustered[:per_line] = True  # 16 matches in 1 line
        scattered = np.zeros(n, dtype=bool)
        scattered[np.arange(per_line) * per_line] = True  # 16 lines
        assert np.count_nonzero(clustered) == np.count_nonzero(scattered)
        assert payload_line_fraction(clustered, 8) < payload_line_fraction(
            scattered, 8
        )

    def test_bounds(self):
        rng = np.random.default_rng(7)
        for selectivity in (0.0, 0.01, 0.5, 1.0):
            mask = rng.random(1000) < selectivity
            fraction = payload_line_fraction(mask, 8)
            assert 0.0 <= fraction <= 1.0
            # Line granularity can only add traffic, never remove it.
            assert fraction >= np.count_nonzero(mask) / len(mask) - 1e-12


@st.composite
def mask_pairs(draw):
    n = draw(st.integers(min_value=0, max_value=512))
    bits_a = draw(st.lists(st.booleans(), min_size=n, max_size=n))
    bits_b = draw(st.lists(st.booleans(), min_size=n, max_size=n))
    return (
        np.array(bits_a, dtype=bool),
        np.array(bits_b, dtype=bool),
    )


class TestMonotonicity:
    @settings(max_examples=200, deadline=None)
    @given(pair=mask_pairs(), payload_bytes=st.sampled_from([4, 8, 16, 128]))
    def test_more_matches_never_load_fewer_lines(self, pair, payload_bytes):
        mask_a, mask_b = pair
        combined = mask_a | mask_b
        fraction_a = payload_line_fraction(mask_a, payload_bytes)
        fraction_combined = payload_line_fraction(combined, payload_bytes)
        assert fraction_combined >= fraction_a - 1e-12

    @settings(max_examples=100, deadline=None)
    @given(pair=mask_pairs())
    def test_fraction_within_unit_interval(self, pair):
        mask, _ = pair
        assert 0.0 <= payload_line_fraction(mask, 8) <= 1.0
