"""The radix-partitioned CPU baseline (PRA)."""

import pytest

from repro.core.join.nopa import NoPartitioningJoin
from repro.core.join.radix import RadixJoin
from repro.workloads.builders import workload_a, workload_selectivity

SCALE = 2.0**-14


class TestFunctional:
    def test_matches_agree_with_nopa(self, ibm, wl_a):
        radix = RadixJoin(ibm).run(wl_a.r, wl_a.s)
        nopa = NoPartitioningJoin(ibm, hash_table_placement="cpu").run(
            wl_a.r, wl_a.s, processor="cpu0"
        )
        assert radix.matches == nopa.matches
        assert radix.aggregate == nopa.aggregate

    def test_partial_selectivity(self, ibm):
        wl = workload_selectivity(0.3, scale=SCALE)
        res = RadixJoin(ibm).run(wl.r, wl.s)
        assert res.matches / wl.s.executed_tuples == pytest.approx(0.3, abs=0.03)

    def test_partition_count_from_radix_bits(self, ibm, wl_a):
        res = RadixJoin(ibm, radix_bits=12).run(wl_a.r, wl_a.s)
        assert res.partitions == 4096

    def test_partitions_balanced_for_uniform_keys(self, ibm, wl_a):
        res = RadixJoin(ibm).run(wl_a.r, wl_a.s)
        assert res.max_partition_skew < 2.0


class TestModel:
    def test_runs_on_cpu_only(self, ibm, wl_a):
        with pytest.raises(ValueError):
            RadixJoin(ibm).run(wl_a.r, wl_a.s, processor="gpu0")

    def test_partition_pass_dominates(self, ibm, wl_a):
        res = RadixJoin(ibm).run(wl_a.r, wl_a.s)
        assert res.partition_cost.seconds > res.join_cost.seconds

    def test_throughput_near_half_gtps(self, ibm, wl_a):
        # Figures 16/17: the tuned PRA baseline sits around 0.4-0.5.
        res = RadixJoin(ibm).run(wl_a.r, wl_a.s)
        assert 0.35 < res.throughput_gtuples < 0.6

    def test_throughput_flat_across_sizes(self, ibm):
        from repro.workloads.builders import workload_ratio

        small = workload_ratio(1, scale=2.0**-12, modeled_r=256 * 10**6)
        large = workload_ratio(1, scale=2.0**-13, modeled_r=2048 * 10**6)
        t_small = RadixJoin(ibm).run(small.r, small.s).throughput_gtuples
        t_large = RadixJoin(ibm).run(large.r, large.s).throughput_gtuples
        assert t_small == pytest.approx(t_large, rel=0.1)

    def test_radix_bits_validation(self, ibm):
        with pytest.raises(ValueError):
            RadixJoin(ibm, radix_bits=0)

    def test_xeon_slower_than_power9(self, ibm, intel, wl_a):
        p9 = RadixJoin(ibm).run(wl_a.r, wl_a.s).throughput_gtuples
        xeon = RadixJoin(intel).run(wl_a.r, wl_a.s).throughput_gtuples
        assert p9 > xeon
