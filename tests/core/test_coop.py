"""Cooperative CPU+GPU execution (Het, GPU+Het)."""

import pytest

from repro.core.join.coop import CoopJoin
from repro.core.join.nopa import NoPartitioningJoin


class TestFunctional:
    def test_matches_equal_nopa(self, ibm, wl_a):
        coop = CoopJoin(ibm, strategy="het").run(
            wl_a.r, wl_a.s, workers=("cpu0", "gpu0")
        )
        nopa = NoPartitioningJoin(ibm, hash_table_placement="cpu").run(
            wl_a.r, wl_a.s
        )
        assert coop.matches == nopa.matches
        assert coop.aggregate == nopa.aggregate

    def test_unknown_strategy_rejected(self, ibm):
        with pytest.raises(ValueError):
            CoopJoin(ibm, strategy="turbo")

    def test_unknown_worker_rejected(self, ibm, wl_a):
        coop = CoopJoin(ibm, strategy="het")
        with pytest.raises(Exception):
            coop.run(wl_a.r, wl_a.s, workers=("cpu0", "gpu9"))

    def test_needs_workers(self, ibm, wl_a):
        with pytest.raises(ValueError):
            CoopJoin(ibm, strategy="het").run(wl_a.r, wl_a.s, workers=())

    def test_gpu_het_requires_a_gpu(self, ibm, wl_a):
        coop = CoopJoin(ibm, strategy="gpu+het")
        with pytest.raises(ValueError):
            coop.run(wl_a.r, wl_a.s, workers=("cpu0",))

    def test_het_requires_coherence(self, intel, wl_a):
        # PCI-e 3.0 has no system-wide atomics: sharing a mutable table
        # between CPU and GPU is impossible (Section 3 / limitation L3).
        coop = CoopJoin(intel, strategy="het")
        with pytest.raises(ValueError, match="coherent"):
            coop.run(wl_a.r, wl_a.s, workers=("cpu0", "gpu0"))

    def test_gpu_het_allowed_on_pcie(self, intel, wl_a):
        # Local table copies need no coherence.
        coop = CoopJoin(intel, strategy="gpu+het")
        res = coop.run(wl_a.r, wl_a.s, workers=("cpu0", "gpu0"))
        assert res.matches == wl_a.s.executed_tuples

    def test_three_workers(self, wl_a):
        from repro.hardware.topology import ibm_ac922

        machine = ibm_ac922(gpus=2)
        coop = CoopJoin(machine, strategy="het")
        res = coop.run(wl_a.r, wl_a.s, workers=("cpu0", "gpu0", "gpu1"))
        assert res.matches == wl_a.s.executed_tuples
        assert set(res.worker_shares) == {"cpu0", "gpu0", "gpu1"}
        assert sum(res.worker_shares.values()) == pytest.approx(1.0)
        # Three workers beat two on the same workload.
        two = CoopJoin(machine, strategy="het").run(
            wl_a.r, wl_a.s, workers=("cpu0", "gpu0")
        )
        assert res.throughput_gtuples >= two.throughput_gtuples * 0.95


class TestScheduling:
    def test_all_probe_tuples_dispatched(self, ibm, wl_a):
        res = CoopJoin(ibm, strategy="het").run(
            wl_a.r, wl_a.s, workers=("cpu0", "gpu0")
        )
        assert sum(res.worker_shares.values()) == pytest.approx(1.0, abs=1e-6)

    def test_faster_worker_gets_more_work(self, ibm, wl_a):
        res = CoopJoin(ibm, strategy="gpu+het").run(
            wl_a.r, wl_a.s, workers=("cpu0", "gpu0")
        )
        assert res.worker_shares["gpu0"] > res.worker_shares["cpu0"]

    def test_timeline_records_both_workers(self, ibm, wl_a):
        res = CoopJoin(ibm, strategy="het").run(
            wl_a.r, wl_a.s, workers=("cpu0", "gpu0")
        )
        assert set(res.timeline.by_worker()) == {"cpu0", "gpu0"}

    def test_idle_tail_bounded_by_one_batch(self, ibm, wl_a):
        res = CoopJoin(
            ibm, strategy="het", morsel_tuples=1 << 22, gpu_batch_morsels=4
        ).run(wl_a.r, wl_a.s, workers=("cpu0", "gpu0"))
        # Dynamic scheduling: no worker idles longer than one batch of
        # the other worker at the end.
        longest_tail = max(
            res.timeline.idle_tail(worker) for worker in ("cpu0", "gpu0")
        )
        assert longest_tail < 0.25 * res.probe_seconds

    def test_timeline_units_match_shares(self, ibm, wl_a):
        res = CoopJoin(ibm, strategy="het").run(
            wl_a.r, wl_a.s, workers=("cpu0", "gpu0")
        )
        for worker, share in res.worker_shares.items():
            units = res.timeline.units_processed(worker)
            assert units == pytest.approx(
                share * wl_a.s.modeled_tuples, rel=1e-6
            )


class TestPaperShapes:
    def test_het_beats_cpu_alone_on_workload_a(self, ibm, wl_a):
        het = CoopJoin(ibm, strategy="het").run(
            wl_a.r, wl_a.s, workers=("cpu0", "gpu0")
        )
        cpu = NoPartitioningJoin(ibm, hash_table_placement="cpu").run(
            wl_a.r, wl_a.s, processor="cpu0"
        )
        assert het.throughput_gtuples > cpu.throughput_gtuples

    def test_gpu_het_beats_het_on_workload_a(self, ibm, wl_a):
        het = CoopJoin(ibm, strategy="het").run(
            wl_a.r, wl_a.s, workers=("cpu0", "gpu0")
        )
        gpu_het = CoopJoin(ibm, strategy="gpu+het").run(
            wl_a.r, wl_a.s, workers=("cpu0", "gpu0")
        )
        assert gpu_het.throughput_gtuples > het.throughput_gtuples

    def test_gpu_het_beats_gpu_only_on_workload_b(self, ibm, wl_b):
        # Figure 21a's headline: the cooperative strategy wins for the
        # cache-sized build side.
        gpu_het = CoopJoin(ibm, strategy="gpu+het").run(
            wl_b.r, wl_b.s, workers=("cpu0", "gpu0")
        )
        gpu = NoPartitioningJoin(ibm, hash_table_placement="gpu").run(
            wl_b.r, wl_b.s
        )
        assert gpu_het.throughput_gtuples > gpu.throughput_gtuples

    def test_het_build_slower_than_solo_build(self, ibm, wl_c):
        het = CoopJoin(ibm, strategy="het").run(
            wl_c.r, wl_c.s, workers=("cpu0", "gpu0")
        )
        cpu = NoPartitioningJoin(ibm, hash_table_placement="cpu").run(
            wl_c.r, wl_c.s, processor="cpu0"
        )
        assert het.build_seconds > cpu.build_cost.seconds * 0.95

    def test_gpu_het_pays_table_broadcast(self, ibm, wl_c):
        gpu_het = CoopJoin(ibm, strategy="gpu+het").run(
            wl_c.r, wl_c.s, workers=("cpu0", "gpu0")
        )
        gpu = NoPartitioningJoin(ibm, hash_table_placement="gpu").run(
            wl_c.r, wl_c.s
        )
        assert gpu_het.build_seconds > gpu.build_cost.seconds

    def test_single_worker_het_close_to_nopa(self, ibm, wl_a):
        solo = CoopJoin(ibm, strategy="het").run(
            wl_a.r, wl_a.s, workers=("cpu0",)
        )
        nopa = NoPartitioningJoin(ibm, hash_table_placement="cpu").run(
            wl_a.r, wl_a.s, processor="cpu0"
        )
        assert solo.throughput_gtuples == pytest.approx(
            nopa.throughput_gtuples, rel=0.2
        )

    def test_str(self, ibm, wl_a):
        res = CoopJoin(ibm, strategy="het").run(
            wl_a.r, wl_a.s, workers=("cpu0", "gpu0")
        )
        assert "het" in str(res)
