"""Hash-table placement (single-region, hybrid, explicit)."""

import pytest

from repro.core.hashtable.placement import HashTablePlacement, place_hash_table
from repro.memory.allocator import Allocator, OutOfMemoryError
from repro.utils.units import GIB


class TestPlacementObject:
    def test_fractions_must_sum_to_one(self):
        with pytest.raises(ValueError):
            HashTablePlacement(total_bytes=10, fractions={"a": 0.5, "b": 0.3})

    def test_split_accesses(self):
        placement = HashTablePlacement(
            total_bytes=100, fractions={"gpu0-mem": 0.6, "cpu0-mem": 0.4}
        )
        split = placement.split_accesses(1000)
        assert split == {"gpu0-mem": 600.0, "cpu0-mem": 400.0}

    def test_is_hybrid(self):
        single = HashTablePlacement(total_bytes=1, fractions={"a": 1.0})
        hybrid = HashTablePlacement(
            total_bytes=1, fractions={"a": 0.5, "b": 0.5}
        )
        assert not single.is_hybrid
        assert hybrid.is_hybrid

    def test_gpu_fraction(self, ibm):
        placement = HashTablePlacement(
            total_bytes=1, fractions={"gpu0-mem": 0.7, "cpu0-mem": 0.3}
        )
        assert placement.gpu_fraction(ibm) == pytest.approx(0.7)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            HashTablePlacement(total_bytes=-1, fractions={"a": 1.0})


class TestGpuStrategy:
    def test_fits(self, ibm):
        placement = place_hash_table(ibm, 4 * GIB, "gpu")
        assert placement.fractions == {"gpu0-mem": 1.0}

    def test_too_large_raises(self, ibm):
        with pytest.raises(OutOfMemoryError):
            place_hash_table(ibm, 20 * GIB, "gpu")

    def test_reserve_counts(self, ibm):
        with pytest.raises(OutOfMemoryError):
            place_hash_table(ibm, 15 * GIB, "gpu", gpu_reserve=2 * GIB)


class TestCpuStrategy:
    def test_nearest_cpu_by_default(self, ibm):
        placement = place_hash_table(ibm, 32 * GIB, "cpu")
        assert placement.fractions == {"cpu0-mem": 1.0}

    def test_explicit_cpu_memory(self, ibm):
        placement = place_hash_table(ibm, GIB, "cpu", cpu_memory="cpu1-mem")
        assert placement.fractions == {"cpu1-mem": 1.0}

    def test_gpu1_spills_to_cpu1(self, ibm):
        placement = place_hash_table(ibm, GIB, "cpu", gpu_name="gpu1")
        assert placement.fractions == {"cpu1-mem": 1.0}


class TestHybridStrategy:
    def test_small_table_all_gpu(self, ibm):
        placement = place_hash_table(ibm, 2 * GIB, "hybrid", gpu_reserve=0)
        assert placement.fractions == {"gpu0-mem": 1.0}
        assert not placement.is_hybrid

    def test_large_table_splits(self, ibm):
        placement = place_hash_table(ibm, 32 * GIB, "hybrid", gpu_reserve=0)
        assert placement.fraction("gpu0-mem") == pytest.approx(0.5)
        assert placement.fraction("cpu0-mem") == pytest.approx(0.5)

    def test_internal_allocator_leaves_no_residue(self, ibm):
        place_hash_table(ibm, 32 * GIB, "hybrid", gpu_reserve=0)
        for memory in ibm.memories.values():
            assert memory.allocated == 0

    def test_external_allocator_keeps_allocation(self, ibm):
        allocator = Allocator(ibm)
        placement = place_hash_table(
            ibm, 32 * GIB, "hybrid", allocator=allocator, gpu_reserve=0
        )
        assert placement.hybrid is not None
        assert ibm.memory("gpu0-mem").allocated == 16 * GIB
        placement.hybrid.free(allocator)
        assert ibm.memory("gpu0-mem").allocated == 0


class TestExplicitRegion:
    def test_region_name_passthrough(self, ibm):
        placement = place_hash_table(ibm, GIB, "gpu1-mem")
        assert placement.fractions == {"gpu1-mem": 1.0}

    def test_unknown_region_raises(self, ibm):
        with pytest.raises(Exception):
            place_hash_table(ibm, GIB, "mars-mem")


class TestFractionValidation:
    """Regression: invalid fraction dicts used to silently mis-price
    the hash-table traffic split."""

    def test_empty_fractions_with_table_rejected(self):
        with pytest.raises(ValueError, match="drop all table traffic"):
            HashTablePlacement(total_bytes=10, fractions={})

    def test_empty_fractions_with_empty_table_allowed(self):
        placement = HashTablePlacement(total_bytes=0, fractions={})
        assert placement.split_accesses(0) == {}

    def test_negative_fraction_rejected(self):
        with pytest.raises(ValueError):
            HashTablePlacement(
                total_bytes=10, fractions={"a": 1.5, "b": -0.5}
            )

    def test_nan_fraction_rejected(self):
        with pytest.raises(ValueError):
            HashTablePlacement(
                total_bytes=10, fractions={"a": float("nan")}
            )

    def test_infinite_fraction_rejected(self):
        with pytest.raises(ValueError):
            HashTablePlacement(
                total_bytes=10, fractions={"a": float("inf")}
            )

    def test_sum_above_one_rejected(self):
        with pytest.raises(ValueError):
            HashTablePlacement(
                total_bytes=10, fractions={"a": 0.8, "b": 0.4}
            )
