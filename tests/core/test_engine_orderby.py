"""OrderBy and TopK operators."""

import numpy as np
import pytest

from repro.engine import OrderBy, TableScan, TopK, collect


def scan(n=1000, morsel=64, seed=0):
    rng = np.random.default_rng(seed)
    return TableScan(
        {
            "k": rng.permutation(n).astype(np.int64),
            "v": rng.integers(0, 100, n).astype(np.int64),
        },
        morsel_rows=morsel,
    )


class TestOrderBy:
    def test_ascending_sort(self):
        out = collect(OrderBy(scan(), by=("k",)))
        assert np.array_equal(out["k"], np.arange(1000))

    def test_descending_sort(self):
        out = collect(OrderBy(scan(), by=("k",), descending=True))
        assert np.array_equal(out["k"], np.arange(999, -1, -1))

    def test_rows_stay_aligned(self):
        source = collect(scan())
        pairs = dict(zip(source["k"], source["v"]))
        out = collect(OrderBy(scan(), by=("k",)))
        assert all(pairs[k] == v for k, v in zip(out["k"], out["v"]))

    def test_multi_column_lexicographic(self):
        data = TableScan(
            {
                "a": np.array([1, 0, 1, 0], dtype=np.int64),
                "b": np.array([9, 8, 7, 6], dtype=np.int64),
            },
            morsel_rows=2,
        )
        out = collect(OrderBy(data, by=("a", "b")))
        assert out["a"].tolist() == [0, 0, 1, 1]
        assert out["b"].tolist() == [6, 8, 7, 9]

    def test_empty_input(self):
        empty = TableScan({"k": np.array([], dtype=np.int64)})
        assert list(OrderBy(empty, by=("k",))) == []

    def test_needs_columns(self):
        with pytest.raises(ValueError):
            OrderBy(scan(), by=())


class TestTopK:
    def test_largest(self):
        out = collect(TopK(scan(), by="k", k=5))
        assert out["k"].tolist() == [999, 998, 997, 996, 995]

    def test_smallest(self):
        out = collect(TopK(scan(), by="k", k=3, largest=False))
        assert out["k"].tolist() == [0, 1, 2]

    def test_k_larger_than_input(self):
        out = collect(TopK(scan(10, morsel=3), by="k", k=100))
        assert len(out["k"]) == 10

    def test_streaming_matches_sort(self):
        reference = collect(OrderBy(scan(seed=7), by=("v", "k"), descending=True))
        streamed = collect(TopK(scan(seed=7, morsel=13), by="v", k=20))
        # Same multiset of top-20 v values (ties may order differently).
        assert sorted(streamed["v"].tolist()) == sorted(
            reference["v"][:20].tolist()
        )

    def test_rows_stay_aligned(self):
        source = collect(scan(seed=3))
        pairs = dict(zip(source["k"], source["v"]))
        out = collect(TopK(scan(seed=3), by="k", k=10))
        assert all(pairs[k] == v for k, v in zip(out["k"], out["v"]))

    def test_empty_input(self):
        empty = TableScan({"k": np.array([], dtype=np.int64)})
        assert list(TopK(empty, by="k", k=3)) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            TopK(scan(), by="k", k=0)
