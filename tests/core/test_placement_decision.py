"""The Figure 11 placement decision tree."""

import pytest

from repro.core.placement import decide_placement
from repro.utils.units import GIB, MIB


class TestTree:
    def test_cache_sized_table_uses_gpu_het(self, ibm):
        decision = decide_placement(ibm, 4 * MIB)
        assert decision.strategy == "gpu+het"
        assert decision.hash_table_placement == "gpu"

    def test_gpu_sized_table_stays_on_gpu(self, ibm):
        decision = decide_placement(ibm, 8 * GIB)
        assert decision.strategy == "gpu"
        assert decision.hash_table_placement == "gpu"

    def test_large_table_with_fast_cpu_uses_het(self, ibm):
        decision = decide_placement(ibm, 32 * GIB, fast_cpu=True)
        assert decision.strategy == "het"
        assert decision.hash_table_placement == "cpu"

    def test_large_table_with_slow_cpu_uses_hybrid(self, ibm):
        decision = decide_placement(ibm, 32 * GIB, fast_cpu=False)
        assert decision.strategy == "gpu"
        assert decision.hash_table_placement == "hybrid"

    def test_pcie_machine_never_cooperates(self, intel):
        # Cooperative strategies need cache coherence.
        small = decide_placement(intel, 4 * MIB)
        assert small.strategy != "gpu+het"
        large = decide_placement(intel, 32 * GIB, fast_cpu=True)
        assert large.strategy != "het"
        assert large.hash_table_placement == "hybrid"

    def test_reserve_shifts_boundary(self, ibm):
        at_edge = 15 * GIB
        roomy = decide_placement(ibm, at_edge, gpu_reserve=0)
        tight = decide_placement(ibm, at_edge, gpu_reserve=2 * GIB)
        assert roomy.hash_table_placement == "gpu"
        assert tight.hash_table_placement != "gpu"

    def test_negative_size_rejected(self, ibm):
        with pytest.raises(ValueError):
            decide_placement(ibm, -1)

    def test_cpu_name_rejected_as_gpu(self, ibm):
        with pytest.raises(ValueError):
            decide_placement(ibm, GIB, gpu_name="cpu0")

    def test_reason_is_informative(self, ibm):
        decision = decide_placement(ibm, 32 * GIB)
        assert "CPU" in decision.reason or "cpu" in decision.reason
        assert str(decision)
