"""ShardedHashTable: routing, equivalence, stats exactness, views.

The wrapper's contract: for a *fixed* shard count, results, merged
``TableStats``, and storage are identical whether shards are built by a
serial loop, a thread pool, or forked processes — and probe results are
identical to the unsharded table of the same scheme.
"""

import numpy as np
import pytest

from repro.core.hashtable import ShardedHashTable, create_hash_table
from repro.core.hashtable.base import TableStats

SCHEMES = ("perfect", "open_addressing", "chaining")
SHARD_COUNTS = (1, 2, 4, 8)


def workload(n=4000, domain=16000, probe_n=6000, seed=9):
    rng = np.random.default_rng(seed)
    keys = rng.permutation(domain)[:n].astype(np.int64)
    values = keys * 7 + 5
    probe = rng.integers(0, domain, size=probe_n).astype(np.int64)
    return keys, values, probe


class TestConstruction:
    def test_factory_wraps_when_shards_above_one(self):
        table = create_hash_table("chaining", 256, np.int64, np.int64, shards=4)
        assert isinstance(table, ShardedHashTable)
        assert table.n_shards == 4

    def test_factory_rejects_nonpositive_shards(self):
        with pytest.raises(ValueError, match="shards"):
            create_hash_table("chaining", 256, np.int64, np.int64, shards=0)

    @pytest.mark.parametrize("bad", (3, 6, 12))
    def test_non_power_of_two_shards_rejected(self, bad):
        with pytest.raises(ValueError, match="power of two"):
            ShardedHashTable("chaining", 256, n_shards=bad)

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError, match="unknown hash scheme"):
            ShardedHashTable("cuckoo", 256)

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_capacity_covers_hint(self, scheme):
        table = ShardedHashTable(scheme, 1000, n_shards=4)
        assert table.capacity >= 1000
        assert len(table.shards) == 4


@pytest.mark.parametrize("scheme", SCHEMES)
@pytest.mark.parametrize("n_shards", SHARD_COUNTS)
class TestEquivalenceWithUnsharded:
    def test_lookup_results_match_unsharded(self, scheme, n_shards):
        keys, values, probe = workload()
        flat = create_hash_table(scheme, 16000 if scheme == "perfect" else 4000,
                                 np.int64, np.int64)
        flat.insert_batch(keys, values)
        sharded = ShardedHashTable(
            scheme, 16000 if scheme == "perfect" else 4000, n_shards=n_shards
        )
        sharded.insert_batch(keys, values)
        base = flat.lookup_batch(probe)
        got = sharded.lookup_batch(probe)
        assert np.array_equal(got[0], base[0])
        # values compared where found; miss slots are scheme-internal
        assert np.array_equal(got[1][got[0]], base[1][base[0]])
        assert sharded.size == flat.size


@pytest.mark.parametrize("scheme", SCHEMES)
class TestRoutingAndStats:
    def test_shard_routing_is_pure_and_total(self, scheme):
        keys, _, _ = workload()
        table = ShardedHashTable(scheme, 16000, n_shards=8)
        sids = table.shard_of(keys)
        assert ((sids >= 0) & (sids < 8)).all()
        assert np.array_equal(sids, table.shard_of(keys))
        parts = table.partition_batch(keys)
        assert sum(len(p) for p in parts) == len(keys)
        recovered = np.sort(np.concatenate(parts))
        assert np.array_equal(recovered, np.arange(len(keys)))

    def test_merged_stats_equal_per_shard_serial_sum(self, scheme):
        keys, values, probe = workload()
        table = ShardedHashTable(scheme, 16000, n_shards=4)
        table.insert_batch(keys, values)
        table.lookup_batch(probe)
        manual = TableStats()
        for shard in table.shards:
            manual.merge(shard.stats)
        assert table.stats.as_tuple() == manual.as_tuple()
        assert table.stats.inserts == len(keys)
        assert table.stats.lookups == len(probe)

    def test_shard_build_order_is_irrelevant(self, scheme):
        keys, values, probe = workload()
        forward = ShardedHashTable(scheme, 16000, n_shards=4)
        forward.insert_batch(keys, values)
        backward = ShardedHashTable(scheme, 16000, n_shards=4)
        for sid in reversed(range(4)):
            index = backward.partition_batch(keys)[sid]
            backward.insert_shard(sid, keys[index], values[index])
        for a, b in zip(forward.shards, backward.shards):
            assert np.array_equal(a.keys, b.keys)
            assert np.array_equal(a.values, b.values)
            assert a.stats.as_tuple() == b.stats.as_tuple()
        a_out = forward.lookup_batch(probe)
        b_out = backward.lookup_batch(probe)
        assert np.array_equal(a_out[0], b_out[0])
        assert np.array_equal(a_out[1], b_out[1])


class TestPerfectRouting:
    def test_key_range_routing_keeps_dense_domains(self):
        table = ShardedHashTable("perfect", 1024, n_shards=4)
        keys = np.arange(1024, dtype=np.int64)
        table.insert_batch(keys, keys)
        # each shard holds exactly its key range, stored shard-locally
        for sid, shard in enumerate(table.shards):
            assert shard.size == table.shard_width
        found, got = table.lookup_batch(keys)
        assert found.all()
        assert np.array_equal(got, keys)

    def test_out_of_domain_lookup_is_miss(self):
        table = ShardedHashTable("perfect", 1024, n_shards=4)
        table.insert_batch(np.arange(1024, dtype=np.int64),
                           np.arange(1024, dtype=np.int64))
        found, _ = table.lookup_batch(np.array([5000, 99999], dtype=np.int64))
        assert not found.any()


class TestDuplicateContract:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_duplicates_rejected_through_the_wrapper(self, scheme):
        table = ShardedHashTable(scheme, 256, n_shards=4)
        dup = np.array([17, 17], dtype=np.int64)
        with pytest.raises(ValueError):
            table.insert_batch(dup, dup)


class TestViews:
    def test_stats_view_shares_storage_with_private_counters(self):
        keys, values, probe = workload()
        table = ShardedHashTable("chaining", 16000, n_shards=4)
        table.insert_batch(keys, values)
        before = table.stats.as_tuple()
        view = table.stats_view()
        view.lookup_batch(probe)
        assert table.stats.as_tuple() == before  # owner untouched
        table.absorb_view(view)
        assert table.stats.lookups == len(probe)

    def test_insert_through_view_rejected(self):
        table = ShardedHashTable("chaining", 256, n_shards=4)
        view = table.stats_view()
        with pytest.raises(ValueError, match="stats_view"):
            view.insert_batch(np.array([1], dtype=np.int64),
                              np.array([1], dtype=np.int64))


class TestModeledBytes:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_exact_at_executed_size(self, scheme):
        keys, values, _ = workload()
        table = ShardedHashTable(scheme, 16000, n_shards=4)
        table.insert_batch(keys, values)
        assert table.modeled_bytes(table.size) == table.table_bytes

    def test_scales_with_build_side(self):
        keys, values, _ = workload()
        table = ShardedHashTable("open_addressing", 16000, n_shards=4)
        table.insert_batch(keys, values)
        small = table.modeled_bytes(table.size)
        big = table.modeled_bytes(table.size * 100)
        assert big == pytest.approx(small * 100, rel=0.01)

    def test_empty_table_prices_capacity(self):
        table = ShardedHashTable("perfect", 1024, n_shards=4)
        assert table.modeled_bytes(1024) == table.table_bytes
