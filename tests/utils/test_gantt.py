"""ASCII Gantt rendering."""

import pytest

from repro.obs.trace import Timeline
from repro.utils.gantt import render_gantt


def make_timeline():
    t = Timeline()
    t.record("cpu0", "probe", 0.0, 1.0, units=10)
    t.record("gpu0", "probe", 0.0, 0.4, units=40)
    t.record("gpu0", "probe", 0.5, 0.9, units=40)
    return t


class TestRenderGantt:
    def test_one_lane_per_worker(self):
        text = render_gantt(make_timeline(), width=20)
        lines = text.splitlines()
        assert len(lines) == 3  # header + 2 lanes
        assert lines[1].startswith("cpu0")
        assert lines[2].startswith("gpu0")

    def test_busy_worker_fully_filled(self):
        text = render_gantt(make_timeline(), width=20)
        cpu_lane = text.splitlines()[1]
        assert cpu_lane.count("▇") == 20

    def test_idle_gap_rendered(self):
        text = render_gantt(make_timeline(), width=20)
        gpu_lane = text.splitlines()[2]
        assert "·" in gpu_lane
        assert "▇" in gpu_lane

    def test_utilization_annotated(self):
        text = render_gantt(make_timeline(), width=20)
        assert "100%" in text  # cpu0
        assert "80%" in text  # gpu0: 0.8s busy of 1.0s

    def test_empty_timeline(self):
        assert render_gantt(Timeline()) == "(empty timeline)"

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            render_gantt(make_timeline(), width=0)

    def test_renders_real_coop_timeline(self, ibm, wl_a):
        from repro.core.join.coop import CoopJoin

        res = CoopJoin(ibm, strategy="het").run(
            wl_a.r, wl_a.s, workers=("cpu0", "gpu0")
        )
        text = render_gantt(res.timeline)
        assert "cpu0" in text and "gpu0" in text
        assert "▇" in text
