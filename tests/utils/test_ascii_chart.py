"""ASCII chart rendering."""

import pytest

from repro.bench.common import FigureResult
from repro.utils.ascii_chart import bar, bar_chart, figure_chart, grouped_bar_chart


class TestBar:
    def test_full_scale(self):
        assert bar(10, 10, width=8) == "████████"

    def test_half_scale(self):
        assert bar(5, 10, width=8) == "████"

    def test_rounding_half_cell(self):
        assert bar(10, 16, width=4) == "██▌"

    def test_zero_maximum(self):
        assert bar(1, 0) == ""

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bar(-1, 10)


class TestBarChart:
    def test_renders_labels_and_values(self):
        text = bar_chart({"coherence": 3.83, "pcie": 0.77}, title="Fig 12")
        assert text.startswith("Fig 12")
        assert "coherence" in text
        assert "3.83" in text

    def test_largest_bar_is_longest(self):
        text = bar_chart({"big": 4.0, "small": 1.0}, width=20)
        lines = text.splitlines()
        assert lines[0].count("█") > lines[1].count("█")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bar_chart({})


class TestGroupedChart:
    def test_groups_by_row(self):
        rows = [
            {"label": "A", "x": 1.0, "y": 2.0},
            {"label": "B", "x": 3.0},
        ]
        text = grouped_bar_chart(rows, "label", ["x", "y"])
        assert "A" in text and "B" in text
        assert text.count("x") >= 2

    def test_no_values_rejected(self):
        with pytest.raises(ValueError):
            grouped_bar_chart([{"label": "A"}], "label", ["x"])


def test_figure_chart_from_result():
    result = FigureResult(figure="Figure T", title="test")
    result.add("r1", s1=1.0, s2=2.0)
    result.add("r2", s1=3.0)
    text = figure_chart(result)
    assert "Figure T" in text
    assert "r1" in text and "r2" in text
    assert "█" in text
