"""Unit conversions and formatting."""

import pytest

from repro.utils.units import (
    GB,
    GIB,
    KIB,
    MIB,
    NS,
    US,
    format_bytes,
    format_throughput,
    format_time,
    gb_per_s,
    gib_per_s,
)


class TestByteUnits:
    def test_binary_units_are_powers_of_1024(self):
        assert KIB == 1024
        assert MIB == 1024**2
        assert GIB == 1024**3

    def test_decimal_gb_differs_from_binary_gib(self):
        assert GB == 10**9
        assert GIB > GB

    def test_gib_per_s(self):
        assert gib_per_s(1) == GIB
        assert gib_per_s(63) == 63 * GIB

    def test_gb_per_s(self):
        assert gb_per_s(75) == 75 * 10**9


class TestFormatBytes:
    def test_bytes(self):
        assert format_bytes(512) == "512 B"

    def test_kib(self):
        assert format_bytes(4 * KIB) == "4.0 KiB"

    def test_gib(self):
        assert format_bytes(32 * GIB) == "32.0 GiB"

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            format_bytes(-1)


class TestFormatTime:
    def test_nanoseconds(self):
        assert format_time(434 * NS) == "434 ns"

    def test_microseconds(self):
        assert format_time(20 * US) == "20.0 us"

    def test_seconds(self):
        assert format_time(1.5) == "1.50 s"

    def test_zero(self):
        assert format_time(0) == "0 s"

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            format_time(-0.1)


def test_format_throughput_matches_paper_style():
    assert format_throughput(3.83e9) == "3.83 G Tuples/s"
