"""ASCII table renderer."""

import pytest

from repro.utils.tables import Table


def test_render_aligns_columns():
    table = Table(["method", "throughput"])
    table.add_row(["Coherence", 3.83])
    table.add_row(["Zero-Copy", 3.81])
    output = table.render()
    lines = output.splitlines()
    assert lines[0].startswith("method")
    assert all(len(line) == len(lines[0]) for line in lines[1:])


def test_title_is_first_line():
    table = Table(["a"], title="Figure 12")
    table.add_row([1])
    assert table.render().splitlines()[0] == "Figure 12"


def test_float_formatting():
    table = Table(["x"])
    table.add_row([3.834567])
    assert "3.83" in table.render()


def test_row_arity_checked():
    table = Table(["a", "b"])
    with pytest.raises(ValueError):
        table.add_row([1])


def test_empty_columns_rejected():
    with pytest.raises(ValueError):
        Table([])


def test_str_equals_render():
    table = Table(["a"])
    table.add_row(["x"])
    assert str(table) == table.render()
