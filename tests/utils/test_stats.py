"""Statistics helpers."""

import math

import pytest

from repro.utils.stats import (
    RunStats,
    geometric_mean,
    harmonic_mean,
    mean,
    standard_error,
)


class TestMean:
    def test_simple(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_single_value(self):
        assert mean([5.0]) == 5.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])


class TestStandardError:
    def test_constant_series_has_zero_error(self):
        assert standard_error([4.0, 4.0, 4.0]) == 0.0

    def test_single_value_is_zero(self):
        assert standard_error([3.0]) == 0.0

    def test_known_value(self):
        # sample std of [1, 3] is sqrt(2); stderr = sqrt(2)/sqrt(2) = 1
        assert standard_error([1.0, 3.0]) == pytest.approx(1.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            standard_error([])


class TestHarmonicMean:
    def test_throughput_averaging(self):
        # Two phases at 2 and 6 units/s -> harmonic mean 3.
        assert harmonic_mean([2.0, 6.0]) == pytest.approx(3.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            harmonic_mean([1.0, 0.0])

    def test_never_exceeds_arithmetic_mean(self):
        values = [1.0, 5.0, 9.0]
        assert harmonic_mean(values) <= mean(values)


class TestGeometricMean:
    def test_speedup_averaging(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([-1.0])

    def test_identity(self):
        assert geometric_mean([7.0]) == pytest.approx(7.0)


class TestRunStats:
    def test_from_values(self):
        stats = RunStats.from_values([1.0, 2.0, 3.0])
        assert stats.mean == 2.0
        assert stats.n == 3
        assert stats.stderr == pytest.approx(math.sqrt(1.0 / 3.0))

    def test_relative_stderr(self):
        stats = RunStats.from_values([10.0, 10.0, 10.0])
        assert stats.relative_stderr == 0.0

    def test_relative_stderr_zero_mean(self):
        stats = RunStats(mean=0.0, stderr=1.0, n=2)
        assert stats.relative_stderr == 0.0

    def test_str(self):
        assert "n=2" in str(RunStats.from_values([1.0, 2.0]))
