"""Reporter output: JSON schema stability and text summary shape.

The JSON schema is a public contract (CI and tooling parse it); this
test pins the exact key set so accidental changes force a deliberate
``SCHEMA_VERSION`` bump.
"""

import json

from repro.analysis import analyze_paths, get_passes, render_json, render_text
from repro.analysis.reporters import SCHEMA_VERSION, TOOL_NAME

from tests.analysis.conftest import fixture_path

TOP_LEVEL_KEYS = [
    "schema_version",
    "tool",
    "files_scanned",
    "files_parsed",
    "files_from_cache",
    "summary",
    "stale_baseline_entries",
    "findings",
]
SUMMARY_KEYS = [
    "total",
    "unbaselined",
    "baselined",
    "errors",
    "warnings",
    "by_rule",
]
FINDING_KEYS = [
    "id",
    "rule",
    "severity",
    "path",
    "line",
    "column",
    "message",
    "context",
    "baselined",
    "suppression_reason",
]


def _report():
    return analyze_paths(
        [fixture_path("costmodel", "bad_units.py")],
        passes=get_passes(["unit-safety"]),
    )


def test_json_schema_is_stable():
    payload = json.loads(render_json(_report()))
    assert list(payload) == TOP_LEVEL_KEYS
    assert payload["schema_version"] == SCHEMA_VERSION == 2
    assert payload["tool"] == TOOL_NAME == "repro.analysis"
    assert list(payload["summary"]) == SUMMARY_KEYS
    assert payload["findings"], "fixture should produce findings"
    for finding in payload["findings"]:
        assert list(finding) == FINDING_KEYS
        assert isinstance(finding["line"], int)
        assert finding["severity"] in ("error", "warning")


def test_json_summary_counts_are_consistent():
    payload = json.loads(render_json(_report()))
    summary = payload["summary"]
    assert summary["total"] == len(payload["findings"])
    assert summary["total"] == summary["unbaselined"] + summary["baselined"]
    assert sum(summary["by_rule"].values()) == summary["total"]
    assert summary["by_rule"] == {"unit-safety": 6}


def test_text_report_lists_findings_and_summary():
    report = _report()
    text = render_text(report)
    lines = text.splitlines()
    assert lines[-1].startswith(f"{report.files_scanned} file(s) scanned: ")
    assert "6 finding(s), 0 baselined" in lines[-1]
    assert any("unit-safety" in line for line in lines)
    assert any("LINK_BANDWIDTH = 900e9" in line for line in lines)


def test_text_report_hides_baselined_unless_asked():
    report = _report()
    for finding in report.findings:
        finding.baselined = True
        finding.suppression_reason = "test"
    hidden = render_text(report)
    shown = render_text(report, show_baselined=True)
    assert "LINK_BANDWIDTH" not in hidden
    assert "LINK_BANDWIDTH" in shown
