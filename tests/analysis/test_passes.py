"""Each rule must fire on its bad fixture and stay silent on the good one.

The acceptance bar for the analyzer: deliberately-seeded violations
under ``tests/analysis/fixtures/`` are each detected by their pass, and
idiomatic code in the same scope produces zero findings.
"""

import pytest

from repro.analysis import analyze_paths, get_passes
from repro.analysis.passes import ALL_PASSES
from repro.analysis.runner import analyze_source

from tests.analysis.conftest import fixture_path

BAD_FIXTURES = {
    "unit-safety": (fixture_path("costmodel", "bad_units.py"), 6),
    "determinism": (fixture_path("sim", "bad_determinism.py"), 5),
    "vectorization": (fixture_path("core", "join", "bad_vectorization.py"), 2),
    "simulated-coherence": (
        fixture_path("core", "join", "coop_bad_writes.py"),
        3,
    ),
    "executor-boundary": (
        fixture_path("core", "ops", "bad_direct_pricing.py"),
        4,
    ),
    "fault-hook-coverage": (fixture_path("exec", "bad_worker_loop.py"), 1),
    "manifest-schema": (fixture_path("obs", "bad_manifest.py"), 2),
}

GOOD_FIXTURES = {
    "unit-safety": fixture_path("costmodel", "good_units.py"),
    "determinism": fixture_path("sim", "good_determinism.py"),
    "vectorization": fixture_path("core", "join", "good_vectorization.py"),
    "simulated-coherence": fixture_path(
        "core", "join", "coop_good_accessors.py"
    ),
    "executor-boundary": fixture_path("core", "ops", "good_plan_compile.py"),
    "lock-discipline": fixture_path("exec", "good_pool.py"),
    "fault-hook-coverage": fixture_path("exec", "good_pool.py"),
    "manifest-schema": fixture_path("obs", "good_manifest.py"),
}


@pytest.mark.parametrize("rule", sorted(BAD_FIXTURES))
def test_bad_fixture_triggers_rule(rule):
    path, expected = BAD_FIXTURES[rule]
    report = analyze_paths([path], passes=get_passes([rule]))
    assert len(report.findings) == expected, [str(f) for f in report.findings]
    assert all(f.rule == rule for f in report.findings)
    assert all(not f.baselined for f in report.findings)


@pytest.mark.parametrize("rule", sorted(GOOD_FIXTURES))
def test_good_fixture_is_clean(rule):
    report = analyze_paths([GOOD_FIXTURES[rule]], passes=get_passes([rule]))
    assert report.findings == [], [str(f) for f in report.findings]


def test_scheduler_scope_write_triggers_coherence():
    path = fixture_path("core", "scheduler", "bad_dispatch_write.py")
    report = analyze_paths([path], passes=get_passes(["simulated-coherence"]))
    assert len(report.findings) == 1
    assert "shared_table" in report.findings[0].message


def test_fixture_tree_total_counts():
    """Running every pass over the whole fixture tree finds exactly the
    seeded violations — nothing more (no cross-rule false positives)."""
    report = analyze_paths([fixture_path()])
    by_rule = {}
    for finding in report.findings:
        by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
    assert by_rule == {
        "unit-safety": 6,
        "determinism": 5,
        "vectorization": 2,
        "simulated-coherence": 4,
        "executor-boundary": 4,
        "lock-discipline": 4,
        "fault-hook-coverage": 1,
        "manifest-schema": 2,
    }


def test_lock_discipline_race_severities():
    """Unguarded write -> ERROR; unguarded read -> WARNING unless the
    reader is reachable from a worker entry point (then ERROR)."""
    path = fixture_path("exec", "bad_pool_race.py")
    report = analyze_paths([path], passes=get_passes(["lock-discipline"]))
    assert len(report.findings) == 3, [str(f) for f in report.findings]
    reads = [f for f in report.findings if " read in " in f.message]
    writes = [f for f in report.findings if " write in " in f.message]
    assert len(writes) == 1 and writes[0].severity.value == "error"
    assert sorted(f.severity.value for f in reads) == ["error", "warning"]
    worker_read = next(f for f in reads if f.severity.value == "error")
    assert "worker" in worker_read.message


def test_lock_order_cycle_detected():
    path = fixture_path("exec", "bad_lock_order.py")
    report = analyze_paths([path], passes=get_passes(["lock-discipline"]))
    assert len(report.findings) == 1
    finding = report.findings[0]
    assert finding.severity.value == "error"
    assert "deadlock candidate" in finding.message
    assert "LOCK_A" in finding.message and "LOCK_B" in finding.message


def test_manifest_schema_severities():
    path = fixture_path("obs", "bad_manifest.py")
    report = analyze_paths([path], passes=get_passes(["manifest-schema"]))
    by_severity = {f.severity.value: f.message for f in report.findings}
    assert "latency_ns" in by_severity["error"]
    assert "seconds" in by_severity["warning"]


def test_finding_ids_are_stable_across_line_shifts():
    """The finding id hashes rule|path|context|message — inserting lines
    above a violation must not change its id (baselines survive)."""
    path = fixture_path("exec", "bad_worker_loop.py")
    report = analyze_paths([path], passes=get_passes(["fault-hook-coverage"]))
    (finding,) = report.findings
    with open(path, encoding="utf-8") as handle:
        source = handle.read()
    shifted = '"""Shifted."""\n\n\n' + source.split('"""', 2)[2].lstrip("\n")
    findings = analyze_source(
        shifted, path=path, passes=get_passes(["fault-hook-coverage"])
    )
    (moved,) = findings
    assert moved.line != finding.line
    assert moved.id == finding.id


def test_out_of_scope_module_is_ignored():
    source = "LINK_BANDWIDTH = 900e9\n"
    findings = analyze_source(source, path="src/repro/utils/whatever.py")
    assert findings == []


def test_executor_boundary_exempts_pricing_layer():
    """The executor and the cost model itself may price directly."""
    source = "def price(model, profile):\n    return model.phase_cost(profile)\n"
    for exempt_path in (
        "src/repro/plan/executor.py",
        "src/repro/costmodel/model.py",
    ):
        assert analyze_source(source, path=exempt_path) == []
    findings = analyze_source(source, path="src/repro/core/join/nopa.py")
    assert [f.rule for f in findings] == ["executor-boundary"]


def test_executor_boundary_bans_hand_built_plans():
    """Plans are compiler output; only repro.logical/repro.plan build them."""
    source = "def compile_it(specs):\n    return Plan(specs, label='x')\n"
    findings = analyze_source(source, path="src/repro/core/join/custom.py")
    assert [f.rule for f in findings] == ["executor-boundary"]
    assert "hand-built" in findings[0].message
    for exempt_path in (
        "src/repro/logical/lower.py",
        "src/repro/plan/builders.py",
    ):
        assert analyze_source(source, path=exempt_path) == []
    # Unrelated *Plan classes (FaultPlan, ...) are not plan construction.
    other = "def make():\n    return FaultPlan(seed=7)\n"
    assert analyze_source(other, path="src/repro/core/join/custom.py") == []


def test_executor_boundary_bans_rogue_simulators():
    """Only the sanctioned DES drivers construct Simulator; multi-query
    workloads must share one virtual clock via repro.serve.scheduler."""
    source = "def drive():\n    sim = Simulator()\n    return sim.run()\n"
    findings = analyze_source(source, path="src/repro/core/join/custom.py")
    assert [f.rule for f in findings] == ["executor-boundary"]
    assert "repro.serve.scheduler" in findings[0].message
    for exempt_path in (
        "src/repro/sim/engine.py",
        "src/repro/serve/scheduler.py",
        "src/repro/transfer/stream.py",
        "src/repro/plan/executor.py",
    ):
        assert analyze_source(source, path=exempt_path) == []
    # A service module queuing work for the scheduler must not spin up
    # a private simulator of its own.
    findings = analyze_source(source, path="src/repro/serve/service.py")
    assert [f.rule for f in findings] == ["executor-boundary"]


def test_executor_boundary_bans_rogue_des_driving():
    """schedule_at/cancel_event carry the scheduler's epoch-accounted
    deadline/retry semantics; driving them outside the sanctioned DES
    drivers races the cancellation path."""
    source = (
        "def hijack(sim, event):\n"
        "    sim.cancel_event(event)\n"
        "    return sim.schedule_at(1.0, lambda s: None)\n"
    )
    findings = analyze_source(source, path="src/repro/serve/service.py")
    assert [f.rule for f in findings] == [
        "executor-boundary",
        "executor-boundary",
    ]
    assert "cancel_event" in findings[0].message
    for exempt_path in (
        "src/repro/sim/engine.py",
        "src/repro/serve/scheduler.py",
        "src/repro/transfer/stream.py",
        "src/repro/plan/executor.py",
    ):
        assert analyze_source(source, path=exempt_path) == []


def test_syntax_error_becomes_finding():
    findings = analyze_source("def broken(:\n", path="src/repro/core/x.py")
    assert len(findings) == 1
    assert findings[0].rule == "syntax-error"


def test_unknown_rule_selection_raises():
    with pytest.raises(ValueError, match="unknown rule"):
        get_passes(["no-such-rule"])


def test_rule_registry_is_stable():
    assert [p.name for p in ALL_PASSES] == [
        "unit-safety",
        "determinism",
        "vectorization",
        "simulated-coherence",
        "executor-boundary",
        "lock-discipline",
        "fault-hook-coverage",
        "manifest-schema",
    ]
    for p in ALL_PASSES:
        assert p.description
        # Every pass constrains where it applies: an inclusion scope,
        # or (executor-boundary) repo-wide with an exemption list.
        assert p.scope or getattr(p, "exempt", ())
