"""Each rule must fire on its bad fixture and stay silent on the good one.

The acceptance bar for the analyzer: deliberately-seeded violations
under ``tests/analysis/fixtures/`` are each detected by their pass, and
idiomatic code in the same scope produces zero findings.
"""

import pytest

from repro.analysis import analyze_paths, get_passes
from repro.analysis.passes import ALL_PASSES
from repro.analysis.runner import analyze_source

from tests.analysis.conftest import fixture_path

BAD_FIXTURES = {
    "unit-safety": (fixture_path("costmodel", "bad_units.py"), 6),
    "determinism": (fixture_path("sim", "bad_determinism.py"), 5),
    "vectorization": (fixture_path("core", "join", "bad_vectorization.py"), 2),
    "simulated-coherence": (
        fixture_path("core", "join", "coop_bad_writes.py"),
        3,
    ),
    "executor-boundary": (
        fixture_path("core", "ops", "bad_direct_pricing.py"),
        3,
    ),
}

GOOD_FIXTURES = {
    "unit-safety": fixture_path("costmodel", "good_units.py"),
    "determinism": fixture_path("sim", "good_determinism.py"),
    "vectorization": fixture_path("core", "join", "good_vectorization.py"),
    "simulated-coherence": fixture_path(
        "core", "join", "coop_good_accessors.py"
    ),
    "executor-boundary": fixture_path("core", "ops", "good_plan_compile.py"),
}


@pytest.mark.parametrize("rule", sorted(BAD_FIXTURES))
def test_bad_fixture_triggers_rule(rule):
    path, expected = BAD_FIXTURES[rule]
    report = analyze_paths([path], passes=get_passes([rule]))
    assert len(report.findings) == expected, [str(f) for f in report.findings]
    assert all(f.rule == rule for f in report.findings)
    assert all(not f.baselined for f in report.findings)


@pytest.mark.parametrize("rule", sorted(GOOD_FIXTURES))
def test_good_fixture_is_clean(rule):
    report = analyze_paths([GOOD_FIXTURES[rule]], passes=get_passes([rule]))
    assert report.findings == [], [str(f) for f in report.findings]


def test_scheduler_scope_write_triggers_coherence():
    path = fixture_path("core", "scheduler", "bad_dispatch_write.py")
    report = analyze_paths([path], passes=get_passes(["simulated-coherence"]))
    assert len(report.findings) == 1
    assert "shared_table" in report.findings[0].message


def test_fixture_tree_total_counts():
    """Running every pass over the whole fixture tree finds exactly the
    seeded violations — nothing more (no cross-rule false positives)."""
    report = analyze_paths([fixture_path()])
    by_rule = {}
    for finding in report.findings:
        by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
    assert by_rule == {
        "unit-safety": 6,
        "determinism": 5,
        "vectorization": 2,
        "simulated-coherence": 4,
        "executor-boundary": 3,
    }


def test_out_of_scope_module_is_ignored():
    source = "LINK_BANDWIDTH = 900e9\n"
    findings = analyze_source(source, path="src/repro/utils/whatever.py")
    assert findings == []


def test_executor_boundary_exempts_pricing_layer():
    """The executor and the cost model itself may price directly."""
    source = "def price(model, profile):\n    return model.phase_cost(profile)\n"
    for exempt_path in (
        "src/repro/plan/executor.py",
        "src/repro/costmodel/model.py",
    ):
        assert analyze_source(source, path=exempt_path) == []
    findings = analyze_source(source, path="src/repro/core/join/nopa.py")
    assert [f.rule for f in findings] == ["executor-boundary"]


def test_syntax_error_becomes_finding():
    findings = analyze_source("def broken(:\n", path="src/repro/core/x.py")
    assert len(findings) == 1
    assert findings[0].rule == "syntax-error"


def test_unknown_rule_selection_raises():
    with pytest.raises(ValueError, match="unknown rule"):
        get_passes(["no-such-rule"])


def test_rule_registry_is_stable():
    assert [p.name for p in ALL_PASSES] == [
        "unit-safety",
        "determinism",
        "vectorization",
        "simulated-coherence",
        "executor-boundary",
    ]
    for p in ALL_PASSES:
        assert p.description
        # Every pass constrains where it applies: an inclusion scope,
        # or (executor-boundary) repo-wide with an exemption list.
        assert p.scope or getattr(p, "exempt", ())
