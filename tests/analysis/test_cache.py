"""Incremental-analysis cache: warm runs re-parse nothing, edits
re-analyze only the changed file and its import-graph dependents, and
contract modules named in ``invalidates_on`` dirty the whole project.
"""

import json
import os

from repro.analysis import analyze_paths

UNITS = "LINK_BANDWIDTH = 900e9\n"
POOL = (
    "from costmodel.units import LINK_BANDWIDTH\n"
    "\n"
    "\n"
    "def capacity():\n"
    "    return LINK_BANDWIDTH / 8.0\n"
)
MANIFEST = 'SCHEMA_NOTE = "v1"\n'


def _make_tree(tmp_path):
    proj = tmp_path / "proj"
    for rel, source in (
        ("costmodel/units.py", UNITS),
        ("exec/pool.py", POOL),
        ("obs/manifest.py", MANIFEST),
    ):
        target = proj / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
    return proj


def _run(proj, cache):
    return analyze_paths([str(proj)], cache_path=str(cache))


def test_warm_run_parses_nothing(tmp_path):
    proj = _make_tree(tmp_path)
    cache = tmp_path / "cache.json"

    cold = _run(proj, cache)
    assert cold.files_parsed == 3
    assert cold.files_from_cache == 0
    assert [f.rule for f in cold.findings] == ["unit-safety"]

    warm = _run(proj, cache)
    assert warm.files_parsed == 0
    assert warm.files_from_cache == 3
    # The cached finding replays identically (including its stable id).
    assert [f.to_dict() for f in warm.findings] == [
        f.to_dict() for f in cold.findings
    ]


def test_edit_reanalyzes_only_changed_file_and_dependents(tmp_path):
    proj = _make_tree(tmp_path)
    cache = tmp_path / "cache.json"
    _run(proj, cache)

    # Editing the leaf (no dependents): only it is dirty; its import
    # dependency is re-parsed for cross-module context but keeps its
    # cached findings.
    pool = proj / "exec" / "pool.py"
    pool.write_text(POOL + "\n\nEXTRA = 1\n")
    report = _run(proj, cache)
    assert report.files_from_cache == 2  # units + manifest untouched
    assert report.files_parsed == 2  # pool (dirty) + units (dependency)
    assert [f.rule for f in report.findings] == ["unit-safety"]
    assert "units.py" in report.findings[0].path  # replayed from cache

    # Editing an imported module dirties its dependents too.
    units = proj / "costmodel" / "units.py"
    units.write_text(UNITS + "OTHER_BANDWIDTH = 16.0  # GiB/s\n")
    report = _run(proj, cache)
    assert report.files_from_cache == 1  # only obs/manifest.py untouched
    dirty_findings = [f for f in report.findings if "units.py" in f.path]
    assert dirty_findings, "re-analysis must re-derive the finding"


def test_invalidates_on_contract_module_dirties_everything(tmp_path):
    proj = _make_tree(tmp_path)
    cache = tmp_path / "cache.json"
    _run(proj, cache)

    # The manifest-schema pass declares invalidates_on=("obs/manifest",):
    # touching that module must invalidate every cached entry.
    manifest = proj / "obs" / "manifest.py"
    manifest.write_text('SCHEMA_NOTE = "v2"\n')
    report = _run(proj, cache)
    assert report.files_from_cache == 0
    assert report.files_parsed == 3


def test_corrupt_cache_degrades_to_full_run(tmp_path):
    proj = _make_tree(tmp_path)
    cache = tmp_path / "cache.json"
    _run(proj, cache)

    cache.write_text("{not json")
    report = _run(proj, cache)
    assert report.files_parsed == 3
    assert report.files_from_cache == 0
    # ... and the cache heals: the next run is warm again.
    warm = _run(proj, cache)
    assert warm.files_parsed == 0


def test_cache_file_is_versioned_and_fingerprinted(tmp_path):
    proj = _make_tree(tmp_path)
    cache = tmp_path / "cache.json"
    _run(proj, cache)

    payload = json.loads(cache.read_text())
    assert payload["version"] == 1
    assert payload["tool_fingerprint"]
    assert len(payload["files"]) == 3
    for entry in payload["files"].values():
        assert set(entry) == {"hash", "deps", "findings"}

    # An analyzer upgrade (different fingerprint) invalidates everything.
    payload["tool_fingerprint"] = "0" * 32
    cache.write_text(json.dumps(payload))
    report = _run(proj, cache)
    assert report.files_parsed == 3


def test_deleted_file_entry_is_pruned(tmp_path):
    proj = _make_tree(tmp_path)
    cache = tmp_path / "cache.json"
    _run(proj, cache)

    os.remove(proj / "obs" / "manifest.py")
    _run(proj, cache)
    payload = json.loads(cache.read_text())
    assert len(payload["files"]) == 2
    assert not any("manifest" in path for path in payload["files"])
