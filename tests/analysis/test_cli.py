"""CLI contract: exit codes, JSON output, rule listing, baseline errors."""

import json
import os

from repro.analysis.cli import main

from tests.analysis.conftest import REPO_ROOT, fixture_path

BAD_UNITS = fixture_path("costmodel", "bad_units.py")
GOOD_UNITS = fixture_path("costmodel", "good_units.py")


def test_clean_tree_exits_zero(capsys):
    code = main([GOOD_UNITS, "--no-baseline"])
    out = capsys.readouterr().out
    assert code == 0
    assert "0 finding(s)" in out


def test_findings_exit_one(capsys):
    code = main([BAD_UNITS, "--no-baseline"])
    out = capsys.readouterr().out
    assert code == 1
    assert "unit-safety" in out


def test_repo_scan_with_default_baseline_is_clean(capsys, monkeypatch):
    monkeypatch.chdir(REPO_ROOT)
    code = main([os.path.join("src", "repro")])
    capsys.readouterr()
    assert code == 0


def test_json_format_parses(capsys):
    code = main([BAD_UNITS, "--no-baseline", "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert payload["tool"] == "repro.analysis"
    assert payload["summary"]["unbaselined"] > 0


def test_rules_subset(capsys):
    code = main([BAD_UNITS, "--no-baseline", "--rules", "determinism"])
    out = capsys.readouterr().out
    assert code == 0
    assert "0 finding(s)" in out


def test_unknown_rule_exits_two(capsys):
    code = main([BAD_UNITS, "--rules", "nope"])
    err = capsys.readouterr().err
    assert code == 2
    assert "unknown rule" in err


def test_missing_baseline_file_exits_two(capsys):
    code = main([BAD_UNITS, "--baseline", "/nonexistent/baseline.json"])
    err = capsys.readouterr().err
    assert code == 2
    assert "baseline not found" in err


def test_malformed_baseline_exits_two(tmp_path, capsys):
    bad = tmp_path / "analysis-baseline.json"
    bad.write_text(json.dumps({"version": 1, "suppressions": [{}]}))
    code = main([BAD_UNITS, "--baseline", str(bad)])
    err = capsys.readouterr().err
    assert code == 2
    assert "missing or empty field" in err


def test_list_rules(capsys):
    code = main(["--list-rules"])
    out = capsys.readouterr().out
    assert code == 0
    for rule in (
        "unit-safety",
        "determinism",
        "vectorization",
        "simulated-coherence",
    ):
        assert rule in out
