"""Baseline suppression: matching, budgets, and schema validation."""

import pytest

from repro.analysis import Baseline, BaselineError, analyze_paths, get_passes

from tests.analysis.conftest import fixture_path

BAD_UNITS = fixture_path("costmodel", "bad_units.py")


def _baseline(entries):
    return Baseline.from_dict({"version": 1, "suppressions": entries})


def test_matching_entry_suppresses_finding():
    baseline = _baseline(
        [
            {
                "path": "costmodel/bad_units.py",
                "rule": "unit-safety",
                "context": ("LINK_BANDWIDTH = 900e9  # big-float: bandwidth magnitude, no unit constant"),
                "reason": "fixture: kept raw on purpose",
            }
        ]
    )
    report = analyze_paths(
        [BAD_UNITS], passes=get_passes(["unit-safety"]), baseline=baseline
    )
    baselined = [f for f in report.findings if f.baselined]
    assert len(baselined) == 1
    assert baselined[0].context.startswith("LINK_BANDWIDTH = 900e9")
    assert baselined[0].suppression_reason == "fixture: kept raw on purpose"
    assert len(report.unbaselined) == len(report.findings) - 1
    assert baseline.unused_entries() == []


def test_count_budget_limits_suppressions():
    entry = {
        "path": "costmodel/bad_units.py",
        "rule": "unit-safety",
        "context": ("LINK_BANDWIDTH = 900e9  # big-float: bandwidth magnitude, no unit constant"),
        "reason": "budget of one",
        "count": 1,
    }
    baseline = _baseline([entry])
    report = analyze_paths(
        [BAD_UNITS], passes=get_passes(["unit-safety"]), baseline=baseline
    )
    assert sum(f.baselined for f in report.findings) == 1
    assert baseline.entries[0].used == 1
    # A second matching finding would exceed the budget.
    assert not baseline.entries[0].matches(report.findings[0])


def test_unused_entry_is_reported_stale():
    baseline = _baseline(
        [
            {
                "path": "costmodel/bad_units.py",
                "rule": "unit-safety",
                "context": "THIS_LINE_DOES_NOT_EXIST = 1",
                "reason": "stale on purpose",
            }
        ]
    )
    report = analyze_paths(
        [BAD_UNITS], passes=get_passes(["unit-safety"]), baseline=baseline
    )
    assert len(report.unused_baseline_entries) == 1
    assert all(not f.baselined for f in report.findings)


def test_missing_reason_rejected():
    with pytest.raises(BaselineError, match="reason"):
        _baseline(
            [
                {
                    "path": "x.py",
                    "rule": "unit-safety",
                    "context": "X = 1",
                    "reason": "",
                }
            ]
        )


def test_wrong_version_rejected():
    with pytest.raises(BaselineError, match="version"):
        Baseline.from_dict({"version": 99, "suppressions": []})


def test_unknown_field_rejected():
    with pytest.raises(BaselineError, match="unknown field"):
        _baseline(
            [
                {
                    "path": "x.py",
                    "rule": "unit-safety",
                    "context": "X = 1",
                    "reason": "ok",
                    "line": 12,
                }
            ]
        )


def test_bad_count_rejected():
    with pytest.raises(BaselineError, match="count"):
        _baseline(
            [
                {
                    "path": "x.py",
                    "rule": "unit-safety",
                    "context": "X = 1",
                    "reason": "ok",
                    "count": 0,
                }
            ]
        )


def test_rule_mismatch_does_not_match():
    baseline = _baseline(
        [
            {
                "path": "costmodel/bad_units.py",
                "rule": "determinism",
                "context": ("LINK_BANDWIDTH = 900e9  # big-float: bandwidth magnitude, no unit constant"),
                "reason": "wrong rule on purpose",
            }
        ]
    )
    report = analyze_paths(
        [BAD_UNITS], passes=get_passes(["unit-safety"]), baseline=baseline
    )
    assert all(not f.baselined for f in report.findings)
