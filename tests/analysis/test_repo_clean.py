"""Tier-1 gate: the shipped source tree passes its own static analysis.

This is the enforcement point for the paper-derived invariants: raw
bandwidth/size literals, unseeded randomness, per-tuple Python loops in
join inner paths, and unpriced shared-table writes may not re-enter
``src/`` without either a fix or a justified baseline entry.
"""

import os

from repro.analysis import Baseline, analyze_paths

from tests.analysis.conftest import REPO_ROOT

BASELINE_PATH = os.path.join(REPO_ROOT, "analysis-baseline.json")
SRC = os.path.join(REPO_ROOT, "src")


def test_src_tree_has_no_unbaselined_findings():
    baseline = Baseline.load(BASELINE_PATH)
    report = analyze_paths([SRC], baseline=baseline)
    assert report.files_scanned > 50, "scan should cover the whole src tree"
    offenders = [str(f) for f in report.unbaselined]
    assert offenders == [], "\n".join(
        ["src/ has unbaselined findings — fix them or add a justified",
         "baseline entry to analysis-baseline.json:"] + offenders
    )


def test_baseline_has_no_stale_entries():
    baseline = Baseline.load(BASELINE_PATH)
    analyze_paths([SRC], baseline=baseline)
    stale = [f"{e.path} [{e.rule}] {e.context!r}" for e in baseline.unused_entries()]
    assert stale == [], "\n".join(
        ["analysis-baseline.json has entries matching nothing — delete:"]
        + stale
    )


def test_every_baseline_entry_is_justified():
    baseline = Baseline.load(BASELINE_PATH)
    for entry in baseline.entries:
        assert entry.reason.strip(), f"{entry.path}: empty reason"
        assert len(entry.reason.strip()) >= 15, (
            f"{entry.path}: reason too thin to justify a suppression: "
            f"{entry.reason!r}"
        )
