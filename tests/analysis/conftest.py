"""Shared helpers for the static-analysis tests."""

import os

import pytest

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")
REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, os.pardir)
)


@pytest.fixture
def fixtures_dir() -> str:
    return FIXTURES


@pytest.fixture
def repo_root() -> str:
    return REPO_ROOT


def fixture_path(*parts: str) -> str:
    return os.path.join(FIXTURES, *parts)
