"""Fixture: unit-safe code that must NOT trigger unit-safety."""

from repro.utils.units import GB, GIB, MIB, US

LINK_BANDWIDTH = 75 * GB  # decimal GB/s: electrical bandwidth
MEASURED_BANDWIDTH = 63 * GIB  # binary GiB/s: measured bandwidth
STAGING_BUFFER = 512 * MIB
page_fault_latency = 5 * US

clock_hz = 3.3e9  # frequency, not a byte bandwidth (allowlisted name)
atomic_rate = 1.7e9  # accesses/s, not bytes/s (allowlisted name)
tuple_rate = 40e9  # tuples/s (allowlisted name)


def dispatch(morsel_tuples: int = 1 << 22) -> int:
    """Tuple counts are not byte quantities."""
    return morsel_tuples
