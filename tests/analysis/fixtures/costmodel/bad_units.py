"""Fixture: unit-safety violations (every statement below must trigger)."""

LINK_BANDWIDTH = 900e9  # big-float: bandwidth magnitude, no unit constant

STAGING_BUFFER = 1 << 30  # pow2-bytes: shift shape

SPILL_REGION = 2**30  # pow2-bytes: power-of-two shape

GPU_CAPACITY = 16 * 1024**3  # pow2-bytes: 1024-power shape

page_fault_latency = 5e-6  # latency-literal: latency name without NS/US/MS

slab_bytes = 4 * 4096  # bytes-literal: bytes name with raw integer
