"""Fixture: deterministic code that must NOT trigger determinism."""

import numpy as np


def sample(seed: int, rng=None):
    generator = rng or np.random.default_rng(seed)
    keyword = np.random.default_rng(seed=seed)
    draws = generator.random(8)  # Generator methods are fine
    return generator, keyword, draws


def virtual_now(simulator):
    return simulator.now  # virtual time, not the wall clock
