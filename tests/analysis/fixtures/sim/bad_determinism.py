"""Fixture: determinism violations (every statement below must trigger)."""

import random
import time
from time import perf_counter

import numpy as np


def sample():
    rng = np.random.default_rng()  # unseeded: draws OS entropy
    legacy = np.random.rand(4)  # legacy global-state RNG
    stdlib = random.random()  # stdlib global RNG
    return rng, legacy, stdlib


def now():
    wall = time.time()  # wall clock in simulation code
    tick = perf_counter()  # imported wall-clock function
    return wall, tick
