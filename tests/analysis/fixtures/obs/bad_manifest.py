"""Seeded manifest-schema drift: the writer emits ``latency_ns`` which
the declared schema does not know, and never writes the declared
``seconds`` key.  Expected findings (manifest-schema):

1. undeclared key ``latency_ns`` written by ``build_record`` (ERROR);
2. declared key ``seconds`` never written (WARNING).
"""

MANIFEST_SCHEMA_VERSION = "2.0"

MANIFEST_SCHEMA = {
    "version": "2.0",
    "checksum": "31cd5e0428b6d9df",
    "sections": {
        "__top__": {
            "writer": "build_record",
            "keys": ["schema_version", "label", "seconds"],
        },
    },
}


def build_record(label, elapsed):
    return {
        "schema_version": MANIFEST_SCHEMA_VERSION,
        "label": label,
        "latency_ns": int(elapsed * 1e9),
    }
