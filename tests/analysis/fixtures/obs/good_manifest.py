"""Clean counterpart: writer output and declared schema agree, version
and checksum both match.  Expected findings: none (manifest-schema).
"""

MANIFEST_SCHEMA_VERSION = "1.0"

MANIFEST_SCHEMA = {
    "version": "1.0",
    "checksum": "31cd5e0428b6d9df",
    "sections": {
        "__top__": {
            "writer": "build_record",
            "keys": ["schema_version", "label", "seconds"],
        },
    },
}


def build_record(label, elapsed):
    return {
        "schema_version": MANIFEST_SCHEMA_VERSION,
        "label": label,
        "seconds": float(elapsed),
    }
