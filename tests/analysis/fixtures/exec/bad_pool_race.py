"""Seeded lock-discipline violations: a shared queue with a guard set
(``items``/``closed`` are written under ``self.lock``) accessed
lock-free elsewhere.  Expected findings (lock-discipline):

1. ``drain_unsafe`` reads ``self.items`` without the lock (WARNING —
   not worker-reachable);
2. ``drain_unsafe`` writes ``self.items`` without the lock (ERROR);
3. ``is_closed_unsafe`` reads ``self.closed`` without the lock, and it
   is reachable from ``worker_main`` — a worker entry point (ERROR).
"""

import threading


class SharedQueue:
    def __init__(self):
        self.lock = threading.Lock()
        self.items = []
        self.closed = False

    def put(self, item):
        with self.lock:
            self.items.append(item)

    def close(self):
        with self.lock:
            self.closed = True

    def drain_unsafe(self):
        out = list(self.items)
        self.items = []
        return out

    def is_closed_unsafe(self):
        return self.closed


def worker_main(queue: SharedQueue) -> None:
    while not queue.is_closed_unsafe():
        queue.put(1)
