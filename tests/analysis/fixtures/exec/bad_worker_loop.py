"""Seeded fault-hook gap: a worker loop that pulls morsel batches from
a dispatcher but never reaches a ``check_morsel`` fault hook.  Expected
findings (fault-hook-coverage): one ERROR on ``Pool._worker_loop``.
"""


class Pool:
    def __init__(self, dispatcher):
        self.dispatcher = dispatcher
        self.processed = 0

    def _worker_loop(self):
        while True:
            batch = self.dispatcher.next_batch(4)
            if batch is None:
                break
            self.processed += batch.tuples
