"""Seeded lock-order cycle: ``forward`` acquires LOCK_A then LOCK_B,
``backward`` acquires LOCK_B then LOCK_A.  Expected findings
(lock-discipline): exactly one lock-acquisition-order cycle ERROR.
"""

import threading

LOCK_A = threading.Lock()
LOCK_B = threading.Lock()


def forward():
    with LOCK_A:
        with LOCK_B:
            return "a-then-b"


def backward():
    with LOCK_B:
        with LOCK_A:
            return "b-then-a"
