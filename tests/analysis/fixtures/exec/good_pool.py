"""Clean counterpart: every guarded attribute is accessed under the
lock, and the worker loop reaches ``check_morsel`` before each pull.
Expected findings: none (lock-discipline, fault-hook-coverage).
"""

import threading


class GoodPool:
    def __init__(self, dispatcher, plan):
        self.dispatcher = dispatcher
        self.plan = plan
        self.lock = threading.Lock()
        self.pending = []

    def submit(self, item):
        with self.lock:
            self.pending.append(item)

    def drain(self):
        with self.lock:
            out = list(self.pending)
            self.pending = []
        return out

    def worker_loop(self):
        while True:
            self.plan.check_morsel("worker")
            batch = self.dispatcher.next_batch(4)
            if batch is None:
                break
