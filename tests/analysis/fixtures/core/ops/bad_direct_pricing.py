"""Seeded violations: an operator pricing phases behind the executor's back."""

from repro.plan import Plan, priced_phase


def run_operator(cost_model, build_profile, probe_profile, tuples):
    build = cost_model.phase_cost(build_profile)
    both = cost_model.phases_cost([build_profile, probe_profile])
    demand = cost_model.occupancy_per_unit(probe_profile, tuples)
    return build.seconds + both[1].seconds + sum(demand.values())


def hand_assembled(build_profile):
    return Plan([priced_phase("build", build_profile)], label="hand")
