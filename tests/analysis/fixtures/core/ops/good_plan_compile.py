"""Idiomatic operator: states a logical query; the compiler builds the plan."""

from repro.logical import PhysicalConfig, compile_query, scan
from repro.plan import PlanExecutor


def run_operator(cost_model, relation, stats):
    query = scan(relation).aggregate(agg=("payload", "sum"))
    config = PhysicalConfig(processor="gpu0", label="fixture")
    plan = compile_query(query, config, cost_model, stats)
    executed = PlanExecutor(cost_model).execute(plan)
    return executed.seconds("scan")
