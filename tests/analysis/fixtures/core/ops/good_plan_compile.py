"""Idiomatic operator: compiles a plan and lets the executor price it."""

from repro.plan import Plan, PlanExecutor, priced_phase


def run_operator(cost_model, build_profile, probe_profile):
    plan = Plan(
        [
            priced_phase("build", build_profile),
            priced_phase("probe", probe_profile, deps=("build",)),
        ],
        label="fixture",
    )
    executed = PlanExecutor(cost_model).execute(plan)
    return executed.seconds("build") + executed.seconds("probe")
