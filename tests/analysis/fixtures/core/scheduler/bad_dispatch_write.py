"""Fixture: scheduler-scope coherence violation (must trigger once)."""


def steal_slot(shared_table, slot, row):
    shared_table[slot] = row  # table-named subscript store
    return shared_table
