"""Fixture: simulated-coherence violations (both statements must trigger).

The module name mirrors ``core/join/coop`` so the pass scopes onto it;
it deliberately never references ``atomic_stream``.
"""


def corrupt_shared_table(table, slot, key, value):
    table.keys[slot] = key  # direct store into shared table storage
    table.values[slot] += value  # augmented store into table storage
    return table


def unaccounted_build(table, keys, values):
    table.insert_batch(keys, values)  # build without atomic_stream pricing
    return table
