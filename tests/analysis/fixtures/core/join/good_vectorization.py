"""Fixture: batch-style code that must NOT trigger vectorization."""

import numpy as np


def add_batch(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return a + b  # numpy batch operation


def per_worker(rates: dict, workers: tuple) -> dict:
    shares = {}
    for worker in workers:  # dict access by key, not positional indexing
        shares[worker] = rates[worker]
    return shares


def masked(values: np.ndarray, masks: list) -> np.ndarray:
    combined = masks[0]
    for mask in masks[1:]:  # iterates values, never indexes by loop var
        combined = combined & mask
    return values[combined]
