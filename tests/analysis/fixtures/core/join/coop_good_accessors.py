"""Fixture: disciplined shared-table use that must NOT trigger.

Mirrors ``core/join/coop``: the build goes through the batch accessor
and the module prices it with ``atomic_stream``.
"""

from repro.costmodel.access import atomic_stream


def priced_build(table, relation, worker, region):
    table.insert_batch(relation.key, relation.payload)
    return atomic_stream(
        worker,
        region,
        relation.modeled_tuples,
        table.entry_bytes,
        working_set_bytes=table.table_bytes,
        label="ht insert",
    )


def read_only_probe(table, keys):
    found, values = table.lookup_batch(keys)  # probes don't mutate
    shares = {}
    shares["gpu0"] = float(found.sum())  # plain dict stores are fine
    return found, values, shares
