"""Fixture: vectorization violations (both loops must trigger)."""

import numpy as np


def add_elementwise(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    out = np.empty_like(a)
    for i in range(len(a)):  # range loop indexing arrays per element
        out[i] = a[i] + b[i]
    return out


def gather(order: np.ndarray, values: np.ndarray) -> list:
    result = []
    for i in order:  # index-named loop var over positions
        result.append(values[i])
    return result
