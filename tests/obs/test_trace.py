"""SimClock, Span, Timeline, and Tracer semantics."""

import pytest

from repro.obs.clock import SimClock
from repro.obs.trace import Span, Timeline, Tracer


class TestSimClock:
    def test_starts_at_zero_and_advances(self):
        clock = SimClock()
        assert clock.now == 0.0
        assert clock.advance(1.5) == 1.5
        assert clock.advance(0.5) == 2.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1.0)

    def test_advance_to_is_monotonic(self):
        clock = SimClock()
        clock.advance_to(3.0)
        assert clock.now == 3.0
        with pytest.raises(ValueError):
            clock.advance_to(2.0)


class TestSpan:
    def test_duration(self):
        span = Span(worker="gpu0", label="probe", start=1.0, end=3.5)
        assert span.duration == pytest.approx(2.5)

    def test_end_before_start_rejected(self):
        with pytest.raises(ValueError):
            Span(worker="gpu0", label="probe", start=2.0, end=1.0)

    def test_to_dict_round_trip(self):
        span = Span(
            worker="gpu0", label="probe", start=0.0, end=1.0,
            units=42.0, attrs={"bottleneck": "mem:gpu0-mem"},
        )
        doc = span.to_dict()
        assert doc["worker"] == "gpu0"
        assert doc["duration"] == pytest.approx(1.0)
        assert doc["units"] == 42.0
        assert doc["attrs"] == {"bottleneck": "mem:gpu0-mem"}


class TestTimeline:
    def test_busy_time_and_units_per_worker(self):
        timeline = Timeline()
        timeline.record("cpu0", "probe", 0.0, 1.0, units=100)
        timeline.record("gpu0", "probe", 0.0, 3.0, units=900)
        timeline.record("cpu0", "probe", 1.0, 2.0, units=50)
        assert timeline.busy_time("cpu0") == pytest.approx(2.0)
        assert timeline.units_processed("gpu0") == pytest.approx(900)
        assert timeline.makespan() == pytest.approx(3.0)
        assert timeline.idle_tail("cpu0") == pytest.approx(1.0)
        assert timeline.idle_tail("gpu0") == pytest.approx(0.0)

    def test_by_label_and_by_worker(self):
        timeline = Timeline()
        timeline.record("cpu0", "build", 0.0, 1.0)
        timeline.record("cpu0", "probe", 1.0, 2.0)
        assert len(timeline.by_label("build")) == 1
        assert {s.label for s in timeline.by_worker()["cpu0"]} == {
            "build", "probe"
        }


class TestTracer:
    def test_span_advances_shared_clock(self):
        tracer = Tracer()
        with tracer.span("build", worker="gpu0") as span:
            span.advance(0.25)
        (recorded,) = tracer.timeline.spans
        assert recorded.start == 0.0
        assert recorded.end == pytest.approx(0.25)
        assert tracer.clock.now == pytest.approx(0.25)

    def test_nested_spans_record_parent_label(self):
        tracer = Tracer()
        with tracer.span("probe", worker="gpu0") as outer:
            assert tracer.current_label == "probe"
            with tracer.span("price[probe]", worker="gpu0") as inner:
                inner.advance(1.0)
            outer.advance(0.5)
        labels = {s.label: s for s in tracer.timeline.spans}
        assert labels["price[probe]"].parent == "probe"
        assert labels["probe"].parent == ""
        # The outer span covers the inner span plus its own remainder.
        assert labels["probe"].duration == pytest.approx(1.5)

    def test_annotate_and_units(self):
        tracer = Tracer()
        with tracer.span("probe", worker="gpu0", units=10) as span:
            span.annotate(bottleneck="mem:gpu0-mem").add_units(5)
        (recorded,) = tracer.timeline.spans
        assert recorded.attrs["bottleneck"] == "mem:gpu0-mem"
        assert recorded.units == 15

    def test_deterministic_replay(self):
        def run():
            tracer = Tracer()
            for i in range(3):
                with tracer.span("phase", worker="w") as span:
                    span.advance(0.1 * (i + 1))
            return tracer.timeline.to_dicts()

        assert run() == run()
