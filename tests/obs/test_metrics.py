"""MetricsRegistry: counters, gauges, histograms, snapshots."""

import pytest

from repro.obs.metrics import MetricsRegistry


class TestCounters:
    def test_inc_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("bytes_total", link="nvlink").inc(100)
        registry.counter("bytes_total", link="nvlink").inc(50)
        assert registry.value("counter", "bytes_total", link="nvlink") == 150

    def test_label_sets_are_distinct(self):
        registry = MetricsRegistry()
        registry.counter("bytes_total", link="nvlink").inc(1)
        registry.counter("bytes_total", link="pcie").inc(2)
        assert registry.value("counter", "bytes_total", link="nvlink") == 1
        assert registry.value("counter", "bytes_total", link="pcie") == 2

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        registry.counter("x", a="1", b="2").inc(1)
        registry.counter("x", b="2", a="1").inc(1)
        assert registry.value("counter", "x", a="1", b="2") == 2

    def test_negative_increment_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("x").inc(-1)


class TestGauges:
    def test_set_overwrites(self):
        registry = MetricsRegistry()
        registry.gauge("hit_rate", cache="l2").set(0.4)
        registry.gauge("hit_rate", cache="l2").set(0.9)
        assert registry.value("gauge", "hit_rate", cache="l2") == 0.9


class TestHistograms:
    def test_observe_buckets_and_stats(self):
        registry = MetricsRegistry()
        hist = registry.histogram("batch_tuples", worker="gpu0")
        for value in (1.0, 5.0, 5.0, 1e12):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(1e12 + 11.0)
        assert snap["mean"] == pytest.approx((1e12 + 11.0) / 4)
        # Power-of-four bins: 1.0 -> "1.0", both 5.0s -> "16.0",
        # 1e12 overflows every finite bound -> "+Inf".
        assert snap["buckets"]["1.0"] == 1
        assert snap["buckets"]["16.0"] == 2
        assert snap["buckets"]["+Inf"] == 1

    def test_custom_buckets(self):
        registry = MetricsRegistry()
        hist = registry.histogram("x", buckets=(1.0, 10.0))
        hist.observe(5.0)
        assert hist.snapshot()["buckets"]["10.0"] == 1


class TestSnapshot:
    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("ops_total", proc="gpu0").inc(3)
        registry.gauge("rate", cache="l2").set(0.5)
        snap = registry.snapshot()
        assert snap["counter:ops_total"] == [
            {"labels": {"proc": "gpu0"}, "value": 3}
        ]
        assert snap["gauge:rate"][0]["value"] == 0.5

    def test_missing_instrument_value(self):
        registry = MetricsRegistry()
        assert registry.value("counter", "nope") is None

    def test_iter_and_len(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.gauge("b").set(1.0)
        assert len(registry) == 2
        assert {m.name for m in registry} == {"a", "b"}
