"""End-to-end observability: joins, dispatcher, and simulator emit
spans and metrics that reconcile with their priced results."""

import pytest

from repro.core.join.coop import CoopJoin
from repro.core.join.nopa import NoPartitioningJoin
from repro.obs import Observability


class TestNopaInstrumentation:
    @pytest.fixture
    def run(self, ibm, wl_a):
        obs = Observability.create()
        join = NoPartitioningJoin(ibm, transfer_method="coherence", obs=obs)
        result = join.run(wl_a.r, wl_a.s, processor="gpu0")
        return obs, result

    def test_phase_spans_cover_runtime(self, run):
        obs, result = run
        build = obs.timeline.by_label("build")
        probe = obs.timeline.by_label("probe")
        assert len(build) == len(probe) == 1
        assert build[0].duration == pytest.approx(result.build_cost.seconds)
        assert probe[0].duration == pytest.approx(result.probe_cost.seconds)
        assert obs.clock.now == pytest.approx(result.runtime)
        # Spans sit back-to-back on the sim clock.
        assert probe[0].start == pytest.approx(build[0].end)

    def test_spans_annotated_with_bottleneck(self, run):
        obs, result = run
        (probe,) = obs.timeline.by_label("probe")
        assert probe.attrs["bottleneck"] == result.probe_cost.bottleneck
        assert probe.attrs["matches"] == result.matches
        assert probe.worker == "gpu0"

    def test_price_spans_nested_under_phases(self, run):
        obs, _ = run
        priced = [s for s in obs.timeline.spans if s.label.startswith("price[")]
        assert priced
        assert {s.parent for s in priced} <= {"build", "probe"}

    def test_metrics_reconcile_with_occupancy(self, run):
        obs, result = run
        for cost in (result.build_cost, result.probe_cost):
            for resource, busy in cost.occupancy.items():
                total = obs.metrics.value(
                    "counter", "resource_busy_seconds_total", resource=resource
                )
                assert total is not None and total >= busy * 0.999

    def test_link_bytes_recorded(self, run):
        obs, _ = run
        snap = obs.metrics.snapshot()
        link_totals = snap["counter:link_bytes_total"]
        assert any(
            "nvlink" in entry["labels"]["link"] and entry["value"] > 0
            for entry in link_totals
        )
        assert "counter:atomic_ops_total" in snap  # build-phase inserts


class TestCoopInstrumentation:
    @pytest.fixture
    def run(self, ibm, wl_a):
        obs = Observability.create()
        join = CoopJoin(ibm, strategy="het", obs=obs)
        result = join.run(wl_a.r, wl_a.s, workers=("cpu0", "gpu0"))
        return obs, result

    def test_aggregate_phase_costs_attached(self, run):
        _, result = run
        assert result.build_cost is not None
        assert result.build_cost.seconds == pytest.approx(result.build_seconds)
        assert result.probe_cost is not None
        assert result.probe_cost.seconds == pytest.approx(result.probe_seconds)
        assert result.probe_cost.occupancy  # summed across workers

    def test_outer_spans_advance_clock_once(self, run):
        obs, result = run
        assert obs.clock.now == pytest.approx(
            result.build_seconds + result.probe_seconds
        )
        (probe,) = obs.timeline.by_label("probe")
        assert probe.duration == pytest.approx(result.probe_seconds)

    def test_sim_run_span_nested_in_probe(self, run):
        obs, _ = run
        (sim_span,) = obs.timeline.by_label("sim.run")
        assert sim_span.worker == "simulator"
        assert sim_span.parent == "probe"
        assert sim_span.attrs["events"] > 0

    def test_dispatcher_metrics(self, run):
        obs, result = run
        for worker in result.workers:
            grants = obs.metrics.value(
                "counter", "morsels_dispatched_total", worker=worker
            )
            assert grants is not None and grants > 0
            hist = obs.metrics.histogram("dispatch_batch_tuples", worker=worker)
            assert hist.count > 0

    def test_worker_profile_metrics_scaled_by_share(self, run):
        obs, result = run
        # Each worker's compute tuples reflect its solved share of S.
        total = sum(
            obs.metrics.value("counter", "compute_tuples_total", processor=w)
            or 0.0
            for w in result.workers
        )
        assert total > 0
