"""Run manifests: schema, building from live joins, changelog guard."""

import json

import pytest

from repro.core.join.nopa import NoPartitioningJoin
from repro.obs import Observability
from repro.obs.manifest import (
    MANIFEST_SCHEMA_VERSION,
    build_manifest,
    check_changelog,
    machine_summary,
    phase_record,
    write_manifest_file,
)

SCALE = 2.0**-14


@pytest.fixture
def nopa_manifest(ibm, wl_a):
    obs = Observability.create()
    join = NoPartitioningJoin(ibm, transfer_method="coherence", obs=obs)
    result = join.run(wl_a.r, wl_a.s, processor="gpu0")
    manifest = build_manifest(
        kind="nopa",
        machine=ibm,
        phases=[result.build_cost, result.probe_cost],
        config={"transfer_method": "coherence"},
        results={"matches": result.matches},
        obs=obs,
    )
    return result, manifest


class TestSchema:
    def test_to_dict_has_versioned_schema(self, nopa_manifest):
        _, manifest = nopa_manifest
        doc = manifest.to_dict()
        assert doc["schema_version"] == MANIFEST_SCHEMA_VERSION
        for key in ("kind", "machine", "config", "phases", "results",
                    "metrics", "spans"):
            assert key in doc, key

    def test_phase_records_carry_bottleneck_chain(self, nopa_manifest):
        _, manifest = nopa_manifest
        doc = manifest.to_dict()
        for phase in doc["phases"]:
            assert phase["seconds"] > 0
            chain = phase["bottleneck_chain"]
            assert chain[0]["resource"] == phase["bottleneck"]
            assert chain[0]["utilization"] == pytest.approx(1.0)
            utils = [entry["utilization"] for entry in chain]
            assert utils == sorted(utils, reverse=True)

    def test_bottleneck_summary(self, nopa_manifest):
        _, manifest = nopa_manifest
        summary = manifest.bottleneck_summary
        assert len(summary) == 2
        assert summary[0].startswith("build -> ")
        assert summary[1].startswith("probe -> ")

    def test_machine_summary_lists_topology(self, ibm):
        doc = machine_summary(ibm)
        assert doc["name"] == "ibm-ac922"
        assert doc["processors"]["gpu0"]["kind"] == "gpu"
        assert doc["memories"]["gpu0-mem"]["owner"] == "gpu0"
        assert any("nvlink" in link["spec"] for link in doc["links"])

    def test_spans_and_metrics_embedded(self, nopa_manifest):
        result, manifest = nopa_manifest
        doc = manifest.to_dict()
        labels = {span["label"] for span in doc["spans"]}
        assert {"build", "probe"} <= labels
        assert "counter:link_bytes_total" in doc["metrics"]

    def test_json_round_trip_is_deterministic(self, nopa_manifest):
        _, manifest = nopa_manifest
        assert manifest.to_json() == manifest.to_json()
        json.loads(manifest.to_json())  # must parse


class TestPhaseRecord:
    def test_matches_phase_cost(self, nopa_manifest):
        result, _ = nopa_manifest
        record = phase_record(result.build_cost)
        assert record["label"] == "build"
        assert record["seconds"] == pytest.approx(result.build_cost.seconds)
        assert record["bottleneck"] == result.build_cost.bottleneck


class TestManifestFile:
    def test_write_manifest_file(self, tmp_path, nopa_manifest):
        _, manifest = nopa_manifest
        path = write_manifest_file(
            tmp_path / "m.json", [manifest], generator="test"
        )
        doc = json.loads(path.read_text())
        assert doc["schema_version"] == MANIFEST_SCHEMA_VERSION
        assert doc["generator"] == "test"
        assert len(doc["runs"]) == 1
        assert doc["runs"][0]["kind"] == "nopa"


class TestChangelogGuard:
    def test_current_version_documented(self):
        # The real doc must mention the current schema version.
        check_changelog("docs/observability.md")

    def test_missing_entry_fails(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("# Schema changelog\n\n- `0.9`: ancient history\n")
        with pytest.raises(SystemExit):
            check_changelog(doc)
