"""The `python -m repro.obs.report` CLI."""

import json

import pytest

from repro.obs import report
from repro.obs.manifest import MANIFEST_SCHEMA_VERSION

SCALE = 2.0**-14


class TestReportCli:
    def test_prints_breakdown_and_writes_manifest(self, tmp_path, capsys):
        out = tmp_path / "manifest.json"
        assert report.main(["--scale", str(SCALE), "--out", str(out)]) == 0

        printed = capsys.readouterr().out
        assert "NOPA join" in printed
        assert "Cooperative join" in printed
        assert "bottleneck" in printed
        assert "chain:" in printed
        assert "probe shares" in printed

        doc = json.loads(out.read_text())
        assert doc["schema_version"] == MANIFEST_SCHEMA_VERSION
        assert doc["generator"] == "repro.obs.report"
        kinds = [run["kind"] for run in doc["runs"]]
        assert kinds == ["nopa", "coop[het]"]
        for run in doc["runs"]:
            assert [p["label"] for p in run["phases"]] == ["build", "probe"]
            assert run["results"]["matches"] > 0

    def test_intel_machine_uses_pcie_methods(self, capsys):
        assert report.main(["--machine", "intel", "--scale", str(SCALE)]) == 0
        printed = capsys.readouterr().out
        assert "method=zero_copy" in printed
        assert "strategy=gpu+het" in printed

    def test_functional_results_match_plain_run(self, ibm, wl_a, capsys):
        result, manifest = report.report_nopa(ibm, wl_a)
        capsys.readouterr()
        import repro

        plain = repro.NoPartitioningJoin(
            ibm, transfer_method="coherence"
        ).run(wl_a.r, wl_a.s, processor="gpu0")
        assert result.matches == plain.matches
        assert result.probe_cost.seconds == pytest.approx(
            plain.probe_cost.seconds
        )
        assert manifest.to_dict()["results"]["matches"] == plain.matches
