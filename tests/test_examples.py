"""Smoke tests: every example script runs to completion.

Examples are executed in-process (imported as modules and ``main()``
called) so failures produce real tracebacks and coverage counts them.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

EXAMPLES = [
    "quickstart",
    "out_of_core_join",
    "coprocessing_scaleup",
    "tpch_q6",
    "transfer_methods",
    "analytics_query",
    "performance_debugging",
]


def load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys):
    module = load_example(name)
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"example {name} printed nothing"


def test_all_example_files_covered():
    on_disk = {p.stem for p in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == set(EXAMPLES)
