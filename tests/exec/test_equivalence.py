"""Backend equivalence: ``threads`` output is bit-identical to serial.

The determinism contract of ``repro.exec``: for every operator and
every worker count, the parallel backend produces the same functional
results, the same ``TableStats``, and therefore the same priced phase
costs and metric snapshots as the serial path.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hashtable import create_hash_table
from repro.core.join.nopa import NoPartitioningJoin
from repro.core.ops.q6 import TpchQ6
from repro.core.ops.scan import Predicate, SelectionScan
from repro.exec import MorselExecutor, execute_build, execute_probe
from repro.hardware.topology import ibm_ac922
from repro.workloads.builders import workload_a
from repro.workloads.tpch import lineitem_q6

SCALE = 2.0**-13
SCHEMES = ("perfect", "open_addressing", "chaining")
WORKER_COUNTS = (1, 2, 4)


@pytest.fixture(scope="module")
def machine():
    return ibm_ac922()


@pytest.fixture(scope="module")
def workload():
    return workload_a(scale=SCALE)


@pytest.fixture(scope="module")
def serial_results(machine, workload):
    results = {}
    for scheme in SCHEMES:
        join = NoPartitioningJoin(
            machine,
            hash_table_placement="gpu",
            hash_scheme=scheme,
            output="materialize",
        )
        results[scheme] = join.run(workload.r, workload.s)
    return results


@pytest.mark.parametrize("scheme", SCHEMES)
@pytest.mark.parametrize("workers", WORKER_COUNTS)
class TestNopaEquivalence:
    def test_results_and_costs_identical(
        self, machine, workload, serial_results, scheme, workers
    ):
        join = NoPartitioningJoin(
            machine,
            hash_table_placement="gpu",
            hash_scheme=scheme,
            output="materialize",
            backend="threads",
            workers=workers,
            exec_morsel_tuples=1 << 12,
        )
        parallel = join.run(workload.r, workload.s)
        serial = serial_results[scheme]
        assert parallel.matches == serial.matches
        assert parallel.aggregate == serial.aggregate
        # identical TableStats make the priced costs bit-identical
        assert parallel.build_cost.seconds == serial.build_cost.seconds
        assert parallel.probe_cost.seconds == serial.probe_cost.seconds
        assert (
            parallel.table_stats_probe_factor == serial.table_stats_probe_factor
        )
        assert parallel.payload_lines_loaded == serial.payload_lines_loaded
        for column in serial.materialized:
            assert np.array_equal(
                parallel.materialized[column], serial.materialized[column]
            )


@pytest.mark.parametrize("scheme", SCHEMES)
def test_table_stats_tuple_identical(scheme):
    rng = np.random.default_rng(11)
    n = 40_000
    keys = rng.permutation(n).astype(np.int64)
    values = keys * 7 + 3
    probe = rng.integers(0, 2 * n, size=60_000).astype(np.int64)

    serial_table = create_hash_table(scheme, n, keys.dtype, values.dtype)
    execute_build(serial_table, keys, values, None)
    serial_out = execute_probe(serial_table, probe, None)

    for workers in WORKER_COUNTS:
        executor = MorselExecutor(workers=workers, morsel_tuples=1 << 11)
        table = create_hash_table(scheme, n, keys.dtype, values.dtype)
        execute_build(table, keys, values, executor)
        found, looked_up = execute_probe(table, probe, executor)
        assert table.stats.as_tuple() == serial_table.stats.as_tuple()
        assert table.size == serial_table.size
        assert np.array_equal(found, serial_out[0])
        assert np.array_equal(looked_up, serial_out[1])


def test_obs_metric_snapshots_identical_across_backends(machine, workload):
    """The priced observability bundle must not see the backend at all."""
    snapshots = {}
    for backend in ("serial", "threads"):
        join = NoPartitioningJoin(
            machine, hash_table_placement="gpu", backend=backend, workers=4
        )
        join.run(workload.r, workload.s)
        snapshots[backend] = join.obs.metrics.snapshot()
    assert snapshots["serial"] == snapshots["threads"]


def test_q6_equivalence(machine):
    wl = lineitem_q6(scale_factor=0.02)
    serial = TpchQ6(machine, variant="branching").run(wl)
    for workers in WORKER_COUNTS:
        parallel = TpchQ6(
            machine,
            variant="branching",
            backend="threads",
            workers=workers,
            exec_morsel_tuples=512,
        ).run(wl)
        assert parallel.revenue == serial.revenue
        assert parallel.qualifying_rows == serial.qualifying_rows
        assert parallel.cost.seconds == serial.cost.seconds
        assert parallel.column_line_fractions == serial.column_line_fractions


def test_selection_scan_equivalence(machine):
    rng = np.random.default_rng(5)
    columns = {
        "a": rng.integers(0, 100, 100_000).astype(np.int32),
        "b": rng.random(100_000).astype(np.float32),
    }
    predicates = [
        Predicate("a", lambda c: c < 40),
        Predicate("b", lambda c: c > 0.5),
    ]

    def total_b(cols):
        return float(cols["b"].sum())

    serial = SelectionScan(
        machine, predicates, ["b"], total_b, variant="branching"
    ).run(columns)
    parallel = SelectionScan(
        machine,
        predicates,
        ["b"],
        total_b,
        variant="branching",
        backend="threads",
        workers=4,
        exec_morsel_tuples=1 << 12,
    ).run(columns)
    assert parallel.aggregate == serial.aggregate
    assert parallel.qualifying_rows == serial.qualifying_rows
    assert parallel.cost.seconds == serial.cost.seconds
    assert parallel.column_line_fractions == serial.column_line_fractions


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=3000),
    probe_n=st.integers(min_value=0, max_value=5000),
    workers=st.integers(min_value=1, max_value=4),
    morsel=st.integers(min_value=1, max_value=700),
    scheme=st.sampled_from(SCHEMES),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_property_threads_equals_serial(n, probe_n, workers, morsel, scheme, seed):
    """Any workload shape, worker count, and morsel size: bit-identical."""
    rng = np.random.default_rng(seed)
    keys = rng.permutation(n).astype(np.int64)
    values = keys * 5 + 2
    probe = (
        rng.integers(0, max(1, 2 * n), size=probe_n).astype(np.int64)
        if probe_n
        else np.array([], dtype=np.int64)
    )

    serial_table = create_hash_table(scheme, n, keys.dtype, values.dtype)
    execute_build(serial_table, keys, values, None)
    serial_found, serial_values = execute_probe(serial_table, probe, None)

    executor = MorselExecutor(workers=workers, morsel_tuples=morsel)
    table = create_hash_table(scheme, n, keys.dtype, values.dtype)
    execute_build(table, keys, values, executor)
    found, looked_up = execute_probe(table, probe, executor)

    assert np.array_equal(found, serial_found)
    assert np.array_equal(looked_up, serial_values)
    assert table.stats.as_tuple() == serial_table.stats.as_tuple()
    assert table.size == serial_table.size
