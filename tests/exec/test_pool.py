"""The morsel-parallel executor: dispatch, merge order, errors."""

import numpy as np
import pytest

from repro.exec import MorselExecutor, check_backend, make_executor


class TestValidation:
    def test_backend_names(self):
        assert check_backend("serial") == "serial"
        assert check_backend("threads") == "threads"
        with pytest.raises(ValueError, match="unknown execution backend"):
            check_backend("gpu")

    def test_make_executor_serial_is_none(self):
        assert make_executor("serial") is None
        assert make_executor("threads", workers=2).workers == 2

    def test_worker_count_validation(self):
        with pytest.raises(ValueError):
            MorselExecutor(workers=0)
        with pytest.raises(ValueError):
            MorselExecutor(morsel_tuples=0)
        with pytest.raises(ValueError):
            MorselExecutor(batch_morsels=0)


@pytest.mark.parametrize("workers", [1, 2, 4])
class TestMergeOrder:
    def test_outcomes_sorted_and_cover_input(self, workers):
        executor = MorselExecutor(workers=workers, morsel_tuples=64)
        total = 64 * 37 + 13  # ragged tail morsel
        outcomes = executor.run(total, lambda work, worker: work.start)
        starts = [o.work.start for o in outcomes]
        assert starts == sorted(starts)
        assert outcomes[0].work.start == 0
        assert outcomes[-1].work.end == total
        for prev, cur in zip(outcomes, outcomes[1:]):
            assert prev.work.end == cur.work.start

    def test_map_values_concatenates_in_morsel_order(self, workers):
        executor = MorselExecutor(workers=workers, morsel_tuples=100)
        data = np.arange(1234, dtype=np.int64)
        parts = executor.map_values(
            len(data), lambda work, worker: data[work.start : work.end] * 2
        )
        assert np.array_equal(np.concatenate(parts), data * 2)

    def test_ordered_tasks_apply_in_morsel_order(self, workers):
        executor = MorselExecutor(workers=workers, morsel_tuples=16)
        applied = []  # mutated only inside the sequencer's critical path
        executor.run(
            16 * 20, lambda work, worker: applied.append(work.start), ordered=True
        )
        assert applied == sorted(applied)


class TestErrorHandling:
    def test_worker_exception_propagates(self):
        executor = MorselExecutor(workers=4, morsel_tuples=10)

        def boom(work, worker):
            if work.start >= 200:
                raise RuntimeError("boom")

        with pytest.raises(RuntimeError, match="boom"):
            executor.run(1000, boom)

    def test_ordered_exception_does_not_deadlock(self):
        executor = MorselExecutor(workers=4, morsel_tuples=10)

        def boom(work, worker):
            if work.start == 200:
                raise ValueError("ordered boom")

        with pytest.raises((ValueError, RuntimeError)):
            executor.run(1000, boom, ordered=True)

    def test_zero_tuples(self):
        executor = MorselExecutor(workers=2, morsel_tuples=10)
        assert executor.run(0, lambda work, worker: 1) == []


class TestExecutorLocalObservability:
    def test_dispatch_metrics_accumulate(self):
        executor = MorselExecutor(workers=2, morsel_tuples=32, name="probe")
        executor.run(32 * 10, lambda work, worker: None)
        total = sum(
            cell.value
            for cell in executor.metrics
            if cell.name == "morsels_dispatched_total"
        )
        assert total == 10

    def test_timeline_records_one_span_per_morsel(self):
        executor = MorselExecutor(workers=2, morsel_tuples=32)
        executor.run(32 * 10, lambda work, worker: None)
        assert len(executor.timeline.spans) == 10
        assert sum(s.units for s in executor.timeline.spans) == 320
