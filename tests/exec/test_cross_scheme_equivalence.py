"""Cross-scheme and cross-backend agreement (hypothesis).

Two invariants:

* For any unique-key workload, all three schemes — and the sharded
  wrapper around each — agree on ``(found, values)`` exactly: the hash
  scheme (and its sharding) is a performance choice, never a semantic
  one.
* ``TableStats.as_tuple()`` is identical across ``serial`` /
  ``threads`` / ``processes`` at every worker count: the backend knob
  never leaks into the measured counters that price every manifest.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hashtable import create_hash_table
from repro.exec import (
    MorselExecutor,
    ProcessExecutor,
    execute_build,
    execute_probe,
    fork_available,
)

SCHEMES = ("perfect", "open_addressing", "chaining")
WORKER_COUNTS = (1, 2, 4)
DOMAIN = 600


def build_and_probe(scheme, shards, keys, probes, executor=None):
    table = create_hash_table(
        scheme, max(len(keys), DOMAIN), np.int64, np.int64, shards=shards
    )
    if len(keys):
        execute_build(table, keys, keys * 7 + 3, executor)
    found, values = execute_probe(table, probes, executor)
    return table, found, values


class TestCrossSchemeAgreement:
    @given(
        keys=st.sets(st.integers(0, DOMAIN - 1), max_size=150),
        probes=st.lists(st.integers(0, DOMAIN + 99), max_size=150),
        shards=st.sampled_from((1, 2, 4)),
    )
    @settings(max_examples=30, deadline=None)
    def test_all_schemes_and_sharded_wrappers_agree(self, keys, probes, shards):
        keys = np.array(sorted(keys), dtype=np.int64)
        probes = np.array(probes, dtype=np.int64)
        outputs = {}
        for scheme in SCHEMES:
            for n_shards in (1, shards):
                _, found, values = build_and_probe(scheme, n_shards, keys, probes)
                outputs[(scheme, n_shards)] = (found, values)
        reference = outputs[("perfect", 1)]
        for label, (found, values) in outputs.items():
            assert np.array_equal(found, reference[0]), label
            # values agree where found; miss slots are scheme-internal
            assert np.array_equal(
                values[found], reference[1][reference[0]]
            ), label

    @given(
        keys=st.sets(st.integers(0, DOMAIN - 1), min_size=1, max_size=150),
        probes=st.lists(st.integers(0, DOMAIN + 99), max_size=150),
        workers=st.integers(1, 4),
        morsel=st.integers(1, 64),
    )
    @settings(max_examples=20, deadline=None)
    def test_sharded_stats_identical_serial_vs_threads(
        self, keys, probes, workers, morsel
    ):
        keys = np.array(sorted(keys), dtype=np.int64)
        probes = np.array(probes, dtype=np.int64)
        for scheme in SCHEMES:
            serial_table, sf, sv = build_and_probe(scheme, 4, keys, probes)
            executor = MorselExecutor(workers=workers, morsel_tuples=morsel)
            table, found, values = build_and_probe(
                scheme, 4, keys, probes, executor
            )
            assert np.array_equal(found, sf)
            assert np.array_equal(values, sv)
            assert table.stats.as_tuple() == serial_table.stats.as_tuple()
            assert table.size == serial_table.size


@pytest.mark.skipif(not fork_available(), reason="requires fork")
class TestStatsAcrossAllBackends:
    @pytest.mark.parametrize("scheme", SCHEMES)
    @pytest.mark.parametrize("shards", (1, 4))
    def test_as_tuple_identical_at_every_worker_count(self, scheme, shards):
        rng = np.random.default_rng(21)
        keys = rng.permutation(DOMAIN)[:400].astype(np.int64)
        probes = rng.integers(0, DOMAIN + 100, size=700).astype(np.int64)
        serial_table, sf, sv = build_and_probe(scheme, shards, keys, probes)
        reference = serial_table.stats.as_tuple()
        for workers in WORKER_COUNTS:
            for executor in (
                MorselExecutor(workers=workers, morsel_tuples=64),
                ProcessExecutor(workers=workers, morsel_tuples=64),
            ):
                table, found, values = build_and_probe(
                    scheme, shards, keys, probes, executor
                )
                assert table.stats.as_tuple() == reference, (
                    scheme,
                    shards,
                    workers,
                    type(executor).__name__,
                )
                assert np.array_equal(found, sf)
                assert np.array_equal(values, sv)
