"""The ``processes`` backend: bit-identical to serial, past the GIL.

Same determinism contract ``tests/exec`` enforces for threads: for
every operator, scheme, shard count, and worker count, the forked
backend produces the same functional results, the same ``TableStats``,
the same priced phase costs, and the same metric snapshots as the
serial path — plus the resilience semantics (retry, re-dispatch,
serial fallback) and shared-memory hygiene specific to processes.
"""

import os

import numpy as np
import pytest

from repro.core.hashtable import create_hash_table
from repro.core.join.nopa import NoPartitioningJoin
from repro.core.ops.q6 import TpchQ6
from repro.core.ops.scan import Predicate, SelectionScan
from repro.exec import (
    ProcessExecutor,
    execute_build,
    execute_masks,
    execute_probe,
    fork_available,
    make_executor,
)
from repro.exec.pool import MorselFailedError
from repro.faults.plan import CrashWorker, FaultPlan, TransientError
from repro.faults.recovery import RetryPolicy
from repro.faults.resilience import ResilienceLog
from repro.hardware.topology import ibm_ac922
from repro.workloads.builders import workload_a
from repro.workloads.tpch import lineitem_q6

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="processes backend requires fork"
)

SCALE = 2.0**-13
SCHEMES = ("perfect", "open_addressing", "chaining")
WORKER_COUNTS = (1, 2, 4)


@pytest.fixture(scope="module")
def machine():
    return ibm_ac922()


@pytest.fixture(scope="module")
def workload():
    return workload_a(scale=SCALE)


def table_workload(n=5000, domain=20000, probe_n=8000, seed=7):
    rng = np.random.default_rng(seed)
    keys = rng.permutation(domain)[:n].astype(np.int64)
    values = keys * 3 + 1
    probe = rng.integers(0, domain, size=probe_n).astype(np.int64)
    return keys, values, probe


def run_functional(scheme, shards, executor):
    keys, values, probe = table_workload()
    table = create_hash_table(
        scheme,
        20000 if scheme == "perfect" else len(keys),
        keys.dtype,
        values.dtype,
        shards=shards,
    )
    execute_build(table, keys, values, executor)
    found, got = execute_probe(table, probe, executor)
    return found, got, table.stats.as_tuple(), table.size


class TestFunctionalEquivalence:
    @pytest.mark.parametrize("scheme", SCHEMES)
    @pytest.mark.parametrize("shards", (1, 4))
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_bit_identical_to_serial(self, scheme, shards, workers):
        serial = run_functional(scheme, shards, None)
        executor = ProcessExecutor(workers=workers, morsel_tuples=512)
        parallel = run_functional(scheme, shards, executor)
        assert np.array_equal(parallel[0], serial[0])
        assert np.array_equal(parallel[1], serial[1])
        assert parallel[2] == serial[2]  # TableStats.as_tuple()
        assert parallel[3] == serial[3]  # size

    def test_masks_identical_including_non_bool_dtypes(self):
        rng = np.random.default_rng(4)
        x = rng.random(4096)
        evaluators = [
            lambda s, e: x[s:e] > 0.5,
            lambda s, e: x[s:e] * 2.0,  # float output, like Q6's revenue
        ]
        serial = execute_masks(len(x), evaluators)
        executor = ProcessExecutor(workers=3, morsel_tuples=256)
        parallel = execute_masks(len(x), evaluators, executor)
        for a, b in zip(serial, parallel):
            assert a.dtype == b.dtype
            assert np.array_equal(a, b)

    def test_make_executor_builds_process_backend(self):
        executor = make_executor("processes", 3, 512, name="x")
        assert isinstance(executor, ProcessExecutor)
        assert executor.worker_names() == ["x-w0", "x-w1", "x-w2"]

    def test_no_shared_memory_leaked(self):
        before = set(os.listdir("/dev/shm"))
        run_functional("chaining", 4, ProcessExecutor(workers=3, morsel_tuples=512))
        leaked = [
            name
            for name in set(os.listdir("/dev/shm")) - before
            if name.startswith("psm_")
        ]
        assert leaked == []


class TestOperatorEquivalence:
    @pytest.mark.parametrize("shards", (1, 4))
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_nopa_matches_serial(self, machine, workload, shards, workers):
        serial = NoPartitioningJoin(
            machine,
            hash_table_placement="gpu",
            output="materialize",
            shards=shards,
        ).run(workload.r, workload.s)
        parallel = NoPartitioningJoin(
            machine,
            hash_table_placement="gpu",
            output="materialize",
            backend="processes",
            workers=workers,
            exec_morsel_tuples=1 << 12,
            shards=shards,
        ).run(workload.r, workload.s)
        assert parallel.matches == serial.matches
        assert parallel.aggregate == serial.aggregate
        assert parallel.build_cost.seconds == serial.build_cost.seconds
        assert parallel.probe_cost.seconds == serial.probe_cost.seconds
        for column in serial.materialized:
            assert np.array_equal(
                parallel.materialized[column], serial.materialized[column]
            )

    def test_obs_metric_snapshots_identical(self, machine, workload):
        snapshots = {}
        for backend in ("serial", "processes"):
            join = NoPartitioningJoin(
                machine, hash_table_placement="gpu", backend=backend, workers=3
            )
            join.run(workload.r, workload.s)
            snapshots[backend] = join.obs.metrics.snapshot()
        assert snapshots["serial"] == snapshots["processes"]

    def test_q6_matches_serial(self, machine):
        wl = lineitem_q6(scale_factor=0.02)
        serial = TpchQ6(machine, variant="branching").run(wl)
        parallel = TpchQ6(
            machine,
            variant="branching",
            backend="processes",
            workers=3,
            exec_morsel_tuples=512,
        ).run(wl)
        assert parallel.revenue == serial.revenue
        assert parallel.qualifying_rows == serial.qualifying_rows
        assert parallel.cost.seconds == serial.cost.seconds

    def test_selection_scan_matches_serial(self, machine):
        rng = np.random.default_rng(5)
        columns = {
            "a": rng.integers(0, 100, 50_000).astype(np.int32),
            "b": rng.random(50_000).astype(np.float32),
        }
        predicates = [
            Predicate("a", lambda c: c < 40),
            Predicate("b", lambda c: c > 0.5),
        ]

        def total_b(cols):
            return float(cols["b"].sum())

        serial = SelectionScan(
            machine, predicates, ["b"], total_b, variant="branching"
        ).run(columns)
        parallel = SelectionScan(
            machine,
            predicates,
            ["b"],
            total_b,
            variant="branching",
            backend="processes",
            workers=3,
            exec_morsel_tuples=1 << 12,
        ).run(columns)
        assert parallel.aggregate == serial.aggregate
        assert parallel.qualifying_rows == serial.qualifying_rows
        assert parallel.cost.seconds == serial.cost.seconds


def chaos_executor(workers=3, max_attempts=4):
    return ProcessExecutor(
        workers=workers,
        morsel_tuples=512,
        name="t",
        retry=RetryPolicy(max_attempts=max_attempts),
        resilience=ResilienceLog(),
    )


class TestResilience:
    """Parent-side fault replay mirrors the thread pool's semantics."""

    def run_with_plan(self, plan, executor):
        keys, values, probe = table_workload()
        table = create_hash_table("perfect", 20000, keys.dtype, values.dtype, shards=4)
        if plan is None:
            execute_build(table, keys, values, executor)
            found, got = execute_probe(table, probe, executor)
        else:
            with plan.install():
                execute_build(table, keys, values, executor)
                found, got = execute_probe(table, probe, executor)
        return found, got, table.stats.as_tuple()

    def test_crashed_shard_builder_redispatched_bit_identically(self):
        base = self.run_with_plan(None, chaos_executor())
        executor = chaos_executor()
        plan = FaultPlan(11, [CrashWorker(worker="t-w0", ordinal=0)])
        result = self.run_with_plan(plan, executor)
        assert np.array_equal(result[0], base[0])
        assert np.array_equal(result[1], base[1])
        assert result[2] == base[2]
        assert executor.resilience.count("redispatch") >= 1
        assert plan.injected_counts() == {"crash": 1}

    def test_transient_fault_retries_in_place(self):
        base = self.run_with_plan(None, chaos_executor())
        executor = chaos_executor()
        plan = FaultPlan(12, [TransientError(ordinal=1)])
        result = self.run_with_plan(plan, executor)
        assert np.array_equal(result[0], base[0])
        assert result[2] == base[2]
        assert executor.resilience.count("retry") >= 1

    def test_whole_pool_death_degrades_to_parent_serial_fallback(self):
        base = self.run_with_plan(None, chaos_executor())
        executor = chaos_executor()
        plan = FaultPlan(13, [CrashWorker(worker=None, ordinal=0, times=3)])
        result = self.run_with_plan(plan, executor)
        assert np.array_equal(result[0], base[0])
        assert result[2] == base[2]
        assert executor.resilience.count("serial_fallback") >= 1

    def test_budget_exhaustion_raises_morsel_failed(self):
        executor = chaos_executor(max_attempts=3)
        plan = FaultPlan(
            14, [TransientError(probability=1.0, attempts=None, times=None)]
        )
        with pytest.raises(MorselFailedError) as info:
            self.run_with_plan(plan, executor)
        assert info.value.attempts == 3

    def test_serial_fallback_can_be_disabled(self):
        executor = ProcessExecutor(
            workers=2,
            morsel_tuples=512,
            name="t",
            retry=RetryPolicy(max_attempts=4),
            serial_fallback=False,
        )
        plan = FaultPlan(13, [CrashWorker(worker=None, ordinal=0, times=2)])
        with pytest.raises(RuntimeError, match="serial_fallback"):
            self.run_with_plan(plan, executor)

    def test_child_exception_propagates_to_parent(self):
        executor = ProcessExecutor(workers=2, morsel_tuples=64, name="boom")

        def body(worker, ranges):
            if worker == "boom-w1":
                raise ValueError("kernel exploded")
            return worker

        with pytest.raises(ValueError, match="kernel exploded"):
            executor.run(256, body)


class TestValidation:
    def test_worker_count_validated(self):
        with pytest.raises(ValueError):
            ProcessExecutor(workers=0)

    def test_morsel_size_validated(self):
        with pytest.raises(ValueError):
            ProcessExecutor(morsel_tuples=0)
