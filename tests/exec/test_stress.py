"""Concurrency stress: dispatcher partitioning, metric atomicity.

These tests hammer the shared-state primitives from many raw threads
(no executor in between) to catch lost updates and range overlaps that
only concurrency can produce.
"""

import threading

import numpy as np

from repro.core.scheduler.morsel import MorselDispatcher
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Timeline, Tracer

N_THREADS = 8


def _hammer(n_threads, target):
    """Run ``target(thread_index)`` on N threads, joined; re-raise errors."""
    errors = []

    def wrap(index):
        try:
            target(index)
        except BaseException as exc:  # noqa: B036 - surface in main thread
            errors.append(exc)

    threads = [
        threading.Thread(target=wrap, args=(i,)) for i in range(n_threads)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]


class TestDispatcherStress:
    def test_ranges_partition_input_exactly(self):
        total = 1_000_003  # prime: ragged tail, no convenient alignment
        dispatcher = MorselDispatcher(total, morsel_tuples=1013)
        grabbed = [[] for _ in range(N_THREADS)]

        def pull(index):
            while True:
                work = dispatcher.next_batch(worker=f"w{index}")
                if work is None:
                    return
                grabbed[index].append(work)

        _hammer(N_THREADS, pull)

        ranges = sorted(
            (w for per_thread in grabbed for w in per_thread),
            key=lambda w: w.start,
        )
        assert ranges[0].start == 0
        assert ranges[-1].end == total
        for prev, cur in zip(ranges, ranges[1:]):
            assert prev.end == cur.start  # no overlap, no gap
        assert sum(w.tuples for w in ranges) == total
        assert dispatcher.remaining == 0
        assert dispatcher.exhausted

    def test_batched_requests_also_partition(self):
        total = 64 * 1000 + 7
        dispatcher = MorselDispatcher(total, morsel_tuples=64)
        seen = []
        lock = threading.Lock()

        def pull(index):
            while True:
                work = dispatcher.next_batch(morsels=4, worker=f"w{index}")
                if work is None:
                    return
                with lock:
                    seen.append(work)

        _hammer(N_THREADS, pull)
        covered = np.zeros(total, dtype=bool)
        for work in seen:
            assert not covered[work.start : work.end].any()
            covered[work.start : work.end] = True
        assert covered.all()

    def test_dispatch_log_accounts_every_worker(self):
        total = 50_000
        dispatcher = MorselDispatcher(total, morsel_tuples=100)

        def pull(index):
            while dispatcher.next_batch(worker=f"w{index}") is not None:
                pass

        _hammer(N_THREADS, pull)
        per_worker = [
            dispatcher.dispatched_tuples(f"w{i}") for i in range(N_THREADS)
        ]
        assert sum(per_worker) == total


class TestMetricsStress:
    def test_counter_loses_no_increments(self):
        registry = MetricsRegistry()
        per_thread = 10_000

        def bump(index):
            counter = registry.counter("hits", worker=f"w{index % 2}")
            for _ in range(per_thread):
                counter.inc()

        _hammer(N_THREADS, bump)
        total = sum(
            cell.value for cell in registry if cell.name == "hits"
        )
        assert total == N_THREADS * per_thread

    def test_get_or_create_never_duplicates_cells(self):
        registry = MetricsRegistry()

        def create(index):
            for _ in range(1000):
                registry.counter("shared").inc()

        _hammer(N_THREADS, create)
        assert len(registry) == 1
        assert registry.value("counter", "shared") == N_THREADS * 1000

    def test_histogram_loses_no_observations(self):
        registry = MetricsRegistry()
        per_thread = 5_000

        def observe(index):
            hist = registry.histogram("sizes")
            for i in range(per_thread):
                hist.observe(float(i % 97))

        _hammer(N_THREADS, observe)
        (hist,) = list(registry)
        assert hist.count == N_THREADS * per_thread


class TestTraceStress:
    def test_timeline_loses_no_spans(self):
        timeline = Timeline()
        per_thread = 5_000

        def record(index):
            for i in range(per_thread):
                timeline.record(f"w{index}", "morsel", float(i), float(i + 1))

        _hammer(N_THREADS, record)
        assert len(timeline.spans) == N_THREADS * per_thread

    def test_tracer_nesting_is_thread_local(self):
        tracer = Tracer()
        bad = []

        def nest(index):
            for _ in range(500):
                with tracer.span(f"outer-{index}", worker=f"w{index}"):
                    with tracer.span(f"inner-{index}", worker=f"w{index}"):
                        pass
            # each thread's stack must be empty once its spans close
            if tracer._stack:
                bad.append(index)

        _hammer(N_THREADS, nest)
        assert not bad
        inner = [s for s in tracer.timeline.spans if s.label.startswith("inner")]
        assert len(inner) == N_THREADS * 500
        # every inner span's parent is its own thread's outer span — a
        # shared stack would cross-wire parents between threads
        for span in inner:
            index = span.label.split("-")[1]
            assert span.parent == f"outer-{index}"
