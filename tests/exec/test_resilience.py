"""Executor recovery: retries, re-dispatch, abort protocol, fallback.

The regression this file guards: killing a worker mid-ordered-build used
to strand its peers forever inside the sequencer (they waited for a
range that would never be applied).  Every test runs the pool in a
helper thread with a hard join timeout so a reintroduced deadlock fails
the test instead of hanging the suite.
"""

import threading

import numpy as np
import pytest

from repro.exec import (
    AbortedError,
    MorselExecutor,
    MorselFailedError,
    execute_build,
)
from repro.exec.pool import _Sequencer
from repro.faults import (
    CrashWorker,
    FaultPlan,
    ResilienceLog,
    RetryPolicy,
    TransientError,
)

#: generous wall-clock bound — the pool normally drains in milliseconds.
DRAIN_TIMEOUT = 20.0


def run_with_timeout(fn, timeout=DRAIN_TIMEOUT):
    """Run ``fn`` on a helper thread; fail the test if it doesn't drain."""
    box = {}

    def target():
        try:
            box["value"] = fn()
        except BaseException as exc:  # noqa: B036 - re-raised on the test thread
            box["error"] = exc

    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    thread.join(timeout)
    assert not thread.is_alive(), "executor failed to drain (deadlock?)"
    if "error" in box:
        raise box["error"]
    return box["value"]


def identity_starts(total, executor, ordered=False):
    outcomes = executor.run(total, lambda work, worker: work.start, ordered=ordered)
    return [o.work.start for o in outcomes], outcomes


class TestRetry:
    def test_transient_fault_retries_in_place(self):
        log = ResilienceLog()
        executor = MorselExecutor(workers=2, morsel_tuples=64, resilience=log)
        plan = FaultPlan(seed=1, rules=[TransientError(probability=0.4, times=3)])
        with plan.install():
            starts, _ = run_with_timeout(lambda: identity_starts(64 * 20, executor))
        assert starts == sorted(starts)
        assert plan.injected_counts().get("transient", 0) == 3
        assert log.count("retry") == 3

    def test_exhausted_budget_raises_typed_error_naming_the_range(self):
        executor = MorselExecutor(
            workers=2,
            morsel_tuples=64,
            retry=RetryPolicy(max_attempts=2, base_delay=0.0),
        )
        plan = FaultPlan(
            seed=1, rules=[TransientError(probability=1.0, attempts=None, times=None)]
        )
        with plan.install():
            with pytest.raises(MorselFailedError) as info:
                run_with_timeout(lambda: identity_starts(64 * 20, executor))
        err = info.value
        assert err.attempts == 2
        assert f"[{err.work.start}, {err.work.end})" in str(err)
        assert err.worker.startswith("exec-w")
        # No stranded threads: only this test thread (+ pytest internals)
        # may hold executor state; all pool workers exited.
        assert not [
            t for t in threading.enumerate() if t.name.startswith("exec-w")
        ]

    def test_backoff_delays_are_bounded(self):
        policy = RetryPolicy(base_delay=0.01, factor=2.0, max_delay=0.03)
        assert policy.delay(1) == 0.01
        assert policy.delay(2) == 0.02
        assert policy.delay(3) == 0.03  # capped
        assert policy.delay(10) == 0.03
        assert RetryPolicy(base_delay=0.0).delay(5) == 0.0


class TestRedispatch:
    def test_crashed_workers_range_runs_on_a_survivor(self):
        log = ResilienceLog()
        executor = MorselExecutor(workers=4, morsel_tuples=64, resilience=log)
        plan = FaultPlan(seed=2, rules=[CrashWorker(worker="exec-w0", ordinal=1)])
        with plan.install():
            starts, outcomes = run_with_timeout(
                lambda: identity_starts(64 * 40, executor)
            )
        assert starts == list(range(0, 64 * 40, 64))
        assert log.count("redispatch") == 1
        assert plan.injected_counts() == {"crash": 1}
        # The re-dispatched range ran on some *other* worker.
        (event,) = [e for e in log.events if e.action == "redispatch"]
        runner = next(
            o.worker for o in outcomes if o.work.start == event.detail["start"]
        )
        assert runner != "exec-w0"

    def test_all_workers_dead_falls_back_to_serial_replay(self):
        log = ResilienceLog()
        # A generous retry budget: a range can be crashed up to three
        # times (once per worker picking it up) before the pool is empty.
        executor = MorselExecutor(
            workers=3,
            morsel_tuples=64,
            resilience=log,
            retry=RetryPolicy(max_attempts=5, base_delay=0.0),
        )
        plan = FaultPlan(
            seed=3, rules=[CrashWorker(worker=None, ordinal=0, times=3)]
        )
        with plan.install():
            starts, outcomes = run_with_timeout(
                lambda: identity_starts(64 * 20, executor)
            )
        assert starts == list(range(0, 64 * 20, 64))
        assert log.count("serial_fallback") == 1
        assert {o.worker for o in outcomes} == {"exec-fallback"}

    def test_serial_fallback_can_be_disabled(self):
        executor = MorselExecutor(
            workers=2, morsel_tuples=64, serial_fallback=False
        )
        plan = FaultPlan(
            seed=3, rules=[CrashWorker(worker=None, ordinal=0, times=2)]
        )
        with plan.install():
            with pytest.raises(RuntimeError, match="serial_fallback is disabled"):
                run_with_timeout(lambda: identity_starts(64 * 20, executor))


class TestOrderedAbort:
    """The satellite regression: crash mid-ordered-build, nobody strands."""

    def test_kill_worker0_mid_ordered_build_still_builds_correctly(self):
        from repro.core.hashtable import create_hash_table

        n = 64 * 40
        keys = np.arange(n, dtype=np.int64)
        payloads = keys * 3
        log = ResilienceLog()
        executor = MorselExecutor(workers=4, morsel_tuples=64, resilience=log)
        # Chaining builds apply morsels through the sequencer (ordered),
        # so a crashed worker forces the degrade-to-serial protocol.
        table = create_hash_table("chaining", n, keys.dtype, payloads.dtype)
        plan = FaultPlan(seed=4, rules=[CrashWorker(worker="exec-w0", ordinal=2)])
        with plan.install():
            run_with_timeout(lambda: execute_build(table, keys, payloads, executor))
        # Degraded to serial replay, but the table is complete and correct.
        assert log.count("serial_fallback") == 1
        found, values = table.lookup_batch(keys)
        assert found.all()
        assert np.array_equal(values, payloads)
        assert not [
            t for t in threading.enumerate() if t.name.startswith("exec-w")
        ]

    def test_ordered_crash_applies_no_range_twice_or_out_of_order(self):
        applied = []
        apply_lock = threading.Lock()

        def task(work, worker):
            with apply_lock:
                applied.append(work.start)

        log = ResilienceLog()
        executor = MorselExecutor(workers=4, morsel_tuples=64, resilience=log)
        plan = FaultPlan(
            seed=5, rules=[CrashWorker(worker=None, ordinal=3, times=2)]
        )
        with plan.install():
            run_with_timeout(
                lambda: executor.run(64 * 30, task, ordered=True)
            )
        assert applied == sorted(applied)
        assert applied == list(range(0, 64 * 30, 64))

    def test_sequencer_abort_wakes_every_waiter(self):
        seq = _Sequencer()
        results = []

        def wait_for(start):
            try:
                seq.run_in_order(start, start + 1, lambda: None)
            except AbortedError:
                results.append(start)

        waiters = [
            threading.Thread(target=wait_for, args=(s,), daemon=True)
            for s in (5, 9, 13)  # none of these is next (next == 0)
        ]
        for t in waiters:
            t.start()
        seq.abort()
        for t in waiters:
            t.join(DRAIN_TIMEOUT)
        assert not any(t.is_alive() for t in waiters)
        assert sorted(results) == [5, 9, 13]

    def test_sequencer_never_advances_past_a_failed_range(self):
        seq = _Sequencer()
        seq.run_in_order(0, 10, lambda: None)
        with pytest.raises(ValueError):
            seq.run_in_order(10, 20, self._boom)
        assert seq.applied_through == 10
        with pytest.raises(AbortedError):
            seq.run_in_order(20, 30, lambda: None)

    @staticmethod
    def _boom():
        raise ValueError("mid-apply failure")


class TestGenuineErrors:
    def test_non_injected_exception_propagates_with_failed_range(self):
        executor = MorselExecutor(workers=4, morsel_tuples=64)

        def boom(work, worker):
            if work.start == 64 * 7:
                raise ZeroDivisionError("genuine bug")

        with pytest.raises(ZeroDivisionError) as info:
            run_with_timeout(lambda: executor.run(64 * 20, boom))
        assert info.value.failed_work.start == 64 * 7
        assert info.value.failed_worker.startswith("exec-w")

    def test_retries_do_not_mask_genuine_bugs(self):
        # A genuine exception must not be retried even under a plan that
        # injects transients elsewhere.
        calls = []
        executor = MorselExecutor(workers=2, morsel_tuples=64)

        def boom(work, worker):
            if work.start == 0:
                calls.append(work.start)
                raise KeyError("not transient")

        plan = FaultPlan(seed=6, rules=[TransientError(probability=0.0)])
        with plan.install():
            with pytest.raises(KeyError):
                run_with_timeout(lambda: executor.run(64 * 10, boom))
        assert calls == [0]
