"""Property-based tests for the memory substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.topology import ibm_ac922
from repro.memory.address_space import AddressSpace
from repro.memory.allocator import Allocator, OutOfMemoryError
from repro.memory.hybrid import allocate_hybrid
from repro.memory.pages import UnifiedSpace, expected_fault_rate_uniform
from repro.utils.units import GIB


class TestAddressSpaceProperties:
    @given(
        sizes=st.lists(st.integers(1, 1000), min_size=1, max_size=20),
    )
    @settings(max_examples=50, deadline=None)
    def test_segments_partition_the_space(self, sizes):
        space = AddressSpace()
        for i, size in enumerate(sizes):
            space.append(size, f"region-{i % 3}")
        assert space.size == sum(sizes)
        # Every byte resolves to exactly one region; fractions sum to 1.
        assert sum(space.region_fraction(f"region-{i}") for i in range(3)) == (
            pytest.approx(1.0)
        )
        # Boundary offsets resolve to the right region.
        offset = 0
        for i, size in enumerate(sizes):
            assert space.region_of(offset) == f"region-{i % 3}"
            offset += size

    @given(sizes=st.lists(st.integers(1, 100), min_size=1, max_size=10))
    @settings(max_examples=30, deadline=None)
    def test_bytes_per_region_consistent(self, sizes):
        space = AddressSpace()
        for size in sizes:
            space.append(size, "only")
        assert space.bytes_per_region() == {"only": sum(sizes)}


class TestHybridAllocationProperties:
    @given(gib=st.integers(1, 40))
    @settings(max_examples=25, deadline=None)
    def test_conservation_and_gpu_first(self, gib):
        machine = ibm_ac922()
        allocator = Allocator(machine)
        nbytes = gib * GIB
        allocation = allocate_hybrid(allocator, "gpu0", nbytes, gpu_reserve=0)
        per_region = allocation.bytes_per_region()
        # Conservation: bytes sum exactly.
        assert sum(per_region.values()) == nbytes
        # GPU-first: GPU holds min(16 GiB, everything).
        assert per_region.get("gpu0-mem", 0) == min(nbytes, 16 * GIB)
        # Cleanup restores all capacity.
        allocation.free(allocator)
        for memory in machine.memories.values():
            assert memory.allocated == 0

    @given(
        gib=st.integers(17, 40),
        reserve_gib=st.integers(0, 8),
    )
    @settings(max_examples=25, deadline=None)
    def test_reserve_always_respected(self, gib, reserve_gib):
        machine = ibm_ac922()
        allocator = Allocator(machine)
        allocation = allocate_hybrid(
            allocator, "gpu0", gib * GIB, gpu_reserve=reserve_gib * GIB
        )
        assert machine.memory("gpu0-mem").free_bytes >= reserve_gib * GIB
        allocation.free(allocator)


class TestUnifiedSpaceProperties:
    @given(
        total=st.integers(2, 60),
        resident=st.integers(1, 60),
        trace=st.lists(st.integers(0, 59), min_size=1, max_size=300),
    )
    @settings(max_examples=50, deadline=None)
    def test_invariants_hold_for_any_trace(self, total, resident, trace):
        trace = [page % total for page in trace]
        space = UnifiedSpace(total, resident)
        stats = space.access_trace(trace)
        assert stats.accesses == len(trace)
        assert 0 <= stats.faults <= len(trace)
        # Distinct pages touched is a lower bound on faults.
        assert stats.faults >= min(len(set(trace)), 1)
        # Residency never exceeds the frame budget.
        assert space.resident_count <= min(resident, total)
        # Evictions can't exceed faults.
        assert stats.evictions <= stats.faults

    @given(total=st.integers(1, 1000), resident=st.integers(1, 1000))
    @settings(max_examples=50, deadline=None)
    def test_expected_fault_rate_bounds(self, total, resident):
        rate = expected_fault_rate_uniform(total, resident)
        assert 0.0 <= rate < 1.0


class TestPayloadLineFractionProperty:
    @given(
        selectivity=st.floats(0.0, 1.0),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=50, deadline=None)
    def test_matches_analytic_formula(self, selectivity, seed):
        """line fraction ~= 1 - (1-s)^16 for uniform random matches."""
        from repro.core.join.nopa import payload_line_fraction

        rng = np.random.default_rng(seed)
        mask = rng.random(1 << 16) < selectivity
        measured = payload_line_fraction(mask, payload_bytes=8)
        analytic = 1.0 - (1.0 - selectivity) ** 16
        assert measured == pytest.approx(analytic, abs=0.03)

    @given(payload_bytes=st.sampled_from([4, 8, 16]), seed=st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_bounded_and_monotone_in_density(self, payload_bytes, seed):
        from repro.core.join.nopa import payload_line_fraction

        rng = np.random.default_rng(seed)
        sparse = rng.random(4096) < 0.05
        dense = sparse | (rng.random(4096) < 0.3)
        f_sparse = payload_line_fraction(sparse, payload_bytes)
        f_dense = payload_line_fraction(dense, payload_bytes)
        assert 0.0 <= f_sparse <= f_dense <= 1.0
