"""Property-based tests of the cost model.

Invariants: monotonicity (more traffic never costs less), linearity of
stream scaling, positivity, and the bottleneck bound (a phase is at
least as slow as any single stream priced alone).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.costmodel.access import (
    AccessPattern,
    AccessProfile,
    Stream,
)
from repro.costmodel.model import CostModel
from repro.hardware.topology import ibm_ac922

_MACHINE = ibm_ac922()
_CM = CostModel(_MACHINE)

_PROCESSORS = ["cpu0", "cpu1", "gpu0", "gpu1"]
_MEMORIES = ["cpu0-mem", "cpu1-mem", "gpu0-mem", "gpu1-mem"]


def streams():
    return st.builds(
        _make_stream,
        processor=st.sampled_from(_PROCESSORS),
        memory=st.sampled_from(_MEMORIES),
        pattern=st.sampled_from(list(AccessPattern)),
        volume=st.floats(1.0, 1e12),
        access_bytes=st.sampled_from([4.0, 8.0, 16.0, 128.0]),
    )


def _make_stream(processor, memory, pattern, volume, access_bytes):
    if pattern is AccessPattern.SEQUENTIAL:
        return Stream(
            processor=processor, memory=memory, pattern=pattern,
            total_bytes=volume,
        )
    return Stream(
        processor=processor, memory=memory, pattern=pattern,
        accesses=volume / access_bytes, access_bytes=access_bytes,
    )


class TestCostProperties:
    @given(stream=streams())
    @settings(max_examples=80, deadline=None)
    def test_positive_finite_cost(self, stream):
        cost = _CM.phase_cost(AccessProfile(streams=[stream]))
        assert cost.seconds > 0
        assert cost.seconds < float("inf")

    @given(stream=streams(), factor=st.floats(1.5, 100.0))
    @settings(max_examples=80, deadline=None)
    def test_linear_in_volume(self, stream, factor):
        base = _CM.phase_cost(AccessProfile(streams=[stream])).seconds
        scaled = _CM.phase_cost(
            AccessProfile(streams=[stream.scaled(factor)])
        ).seconds
        assert scaled == pytest.approx(base * factor, rel=1e-6)

    @given(a=streams(), b=streams())
    @settings(max_examples=80, deadline=None)
    def test_bottleneck_bound(self, a, b):
        # A phase with two streams is at least as slow as either alone
        # and no slower than their sum.
        ta = _CM.phase_cost(AccessProfile(streams=[a])).seconds
        tb = _CM.phase_cost(AccessProfile(streams=[b])).seconds
        combined = _CM.phase_cost(AccessProfile(streams=[a, b])).seconds
        assert combined >= max(ta, tb) - 1e-12
        assert combined <= ta + tb + 1e-9

    @given(stream=streams())
    @settings(max_examples=60, deadline=None)
    def test_occupancy_nonnegative(self, stream):
        for value in _CM.stream_occupancy(stream).values():
            assert value >= 0

    @given(
        processor=st.sampled_from(_PROCESSORS),
        memory=st.sampled_from(_MEMORIES),
    )
    @settings(max_examples=30, deadline=None)
    def test_atomic_never_faster_than_random(self, processor, memory):
        assert _CM.atomic_rate(processor, memory) <= _CM.random_access_rate(
            processor, memory
        ) * 1.001

    @given(
        processor=st.sampled_from(_PROCESSORS),
        memory=st.sampled_from(_MEMORIES),
    )
    @settings(max_examples=30, deadline=None)
    def test_random_rate_positive(self, processor, memory):
        assert _CM.random_access_rate(processor, memory) > 0
