"""Property-based tests of the query engine.

Invariant: any operator tree computes the same answer as the equivalent
whole-array numpy expression, for any data and any morsel size.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import (
    Filter,
    HashAggregate,
    HashJoinOp,
    Limit,
    Project,
    TableScan,
    collect,
)


def arrays(max_n=300):
    return st.lists(
        st.integers(0, 50), min_size=0, max_size=max_n
    ).map(lambda xs: np.array(xs, dtype=np.int64))


class TestScanFilterProject:
    @given(data=arrays(), morsel=st.integers(1, 64), threshold=st.integers(0, 50))
    @settings(max_examples=50, deadline=None)
    def test_filter_equals_numpy(self, data, morsel, threshold):
        if len(data) == 0:
            return
        scan = TableScan({"v": data}, morsel_rows=morsel)
        out = collect(Filter(scan, lambda b: b["v"] < threshold))
        expected = data[data < threshold]
        got = out["v"] if len(out["v"]) else np.array([], dtype=np.int64)
        assert np.array_equal(np.asarray(got, dtype=np.int64), expected)

    @given(data=arrays(), morsel=st.integers(1, 64))
    @settings(max_examples=50, deadline=None)
    def test_project_preserves_row_order(self, data, morsel):
        if len(data) == 0:
            return
        scan = TableScan({"v": data}, morsel_rows=morsel)
        out = collect(Project(scan, {"w": lambda b: b["v"] * 3}))
        assert np.array_equal(out["w"], data * 3)

    @given(data=arrays(), morsel=st.integers(1, 64), n=st.integers(0, 400))
    @settings(max_examples=50, deadline=None)
    def test_limit_prefix(self, data, morsel, n):
        if len(data) == 0:
            return
        scan = TableScan({"v": data}, morsel_rows=morsel)
        out = collect(Limit(scan, n))
        got = out["v"] if len(out["v"]) else np.array([], dtype=np.int64)
        assert np.array_equal(np.asarray(got, dtype=np.int64), data[:n])


class TestAggregateProperties:
    @given(
        values=arrays(),
        groups=arrays(),
        morsel=st.integers(1, 64),
    )
    @settings(max_examples=50, deadline=None)
    def test_group_sums_partition_the_total(self, values, groups, morsel):
        n = min(len(values), len(groups))
        if n == 0:
            return
        values, groups = values[:n], groups[:n]
        scan = TableScan({"v": values, "g": groups}, morsel_rows=morsel)
        out = collect(
            HashAggregate(scan, ("g",), {"s": ("v", "sum"), "n": ("*", "count")})
        )
        assert out["s"].sum() == values.sum()
        assert out["n"].sum() == n
        # Groups are exactly the distinct values.
        assert np.array_equal(np.sort(out["g"]), np.unique(groups))

    @given(values=arrays(), morsel=st.integers(1, 64))
    @settings(max_examples=40, deadline=None)
    def test_min_max_bounds(self, values, morsel):
        if len(values) == 0:
            return
        scan = TableScan({"v": values}, morsel_rows=morsel)
        out = collect(
            HashAggregate(scan, (), {"lo": ("v", "min"), "hi": ("v", "max")})
        )
        assert out["lo"][0] == values.min()
        assert out["hi"][0] == values.max()


class TestJoinProperties:
    @given(
        build_keys=st.sets(st.integers(0, 60), max_size=40),
        probe_keys=arrays(max_n=150),
        morsel=st.integers(1, 32),
    )
    @settings(max_examples=50, deadline=None)
    def test_join_equals_set_semantics(self, build_keys, probe_keys, morsel):
        build_arr = np.array(sorted(build_keys), dtype=np.int64)
        build = TableScan(
            {"k": build_arr, "p": build_arr * 2}, morsel_rows=max(1, morsel)
        )
        probe = TableScan({"fk": probe_keys}, morsel_rows=morsel)
        out = collect(HashJoinOp(build, probe, "k", "fk"))
        expected = probe_keys[np.isin(probe_keys, build_arr)]
        got = out["fk"] if len(out["fk"]) else np.array([], dtype=np.int64)
        assert np.array_equal(np.asarray(got, dtype=np.int64), expected)
        if len(got):
            assert np.array_equal(out["build_p"], np.asarray(got) * 2)
