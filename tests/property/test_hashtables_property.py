"""Property-based tests of the hash tables (hypothesis).

Invariant under test: every table behaves exactly like a Python dict
built from the same (key, value) pairs — for any key set and any probe
set.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hashtable import create_hash_table

SCHEMES = ("perfect", "open_addressing", "chaining")


def key_sets(max_size=200):
    return st.sets(st.integers(min_value=0, max_value=499), max_size=max_size)


@pytest.mark.parametrize("scheme", SCHEMES)
class TestDictEquivalence:
    @given(keys=key_sets(), probes=st.lists(st.integers(0, 699), max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_lookup_matches_dict(self, scheme, keys, probes):
        keys = sorted(keys)
        reference = {k: k * 7 + 3 for k in keys}
        table = create_hash_table(scheme, max(len(keys), 500), np.int64, np.int64)
        if keys:
            karr = np.array(keys, dtype=np.int64)
            table.insert_batch(karr, karr * 7 + 3)
        parr = np.array(probes, dtype=np.int64)
        found, values = table.lookup_batch(parr)
        for i, probe in enumerate(probes):
            if probe in reference:
                assert found[i]
                assert values[i] == reference[probe]
            else:
                assert not found[i]

    @given(keys=key_sets())
    @settings(max_examples=25, deadline=None)
    def test_size_equals_distinct_inserts(self, scheme, keys):
        table = create_hash_table(scheme, max(len(keys), 500), np.int64, np.int64)
        if keys:
            karr = np.array(sorted(keys), dtype=np.int64)
            table.insert_batch(karr, karr)
        assert table.size == len(keys)

    @given(keys=key_sets(), split=st.integers(0, 200))
    @settings(max_examples=25, deadline=None)
    def test_split_batches_equal_single_batch(self, scheme, keys, split):
        keys = sorted(keys)
        karr = np.array(keys, dtype=np.int64)
        split = min(split, len(keys))
        one = create_hash_table(scheme, max(len(keys), 500), np.int64, np.int64)
        two = create_hash_table(scheme, max(len(keys), 500), np.int64, np.int64)
        if len(karr):
            one.insert_batch(karr, karr * 2)
        if split:
            two.insert_batch(karr[:split], karr[:split] * 2)
        if len(karr) - split:
            two.insert_batch(karr[split:], karr[split:] * 2)
        probes = np.arange(500, dtype=np.int64)
        found1, values1 = one.lookup_batch(probes)
        found2, values2 = two.lookup_batch(probes)
        assert np.array_equal(found1, found2)
        assert np.array_equal(values1[found1], values2[found2])


@pytest.mark.parametrize("scheme", SCHEMES)
class TestStatsInvariants:
    @given(keys=key_sets(), probes=st.lists(st.integers(0, 699), max_size=100))
    @settings(max_examples=25, deadline=None)
    def test_counter_consistency(self, scheme, keys, probes):
        table = create_hash_table(scheme, max(len(keys), 500), np.int64, np.int64)
        if keys:
            karr = np.array(sorted(keys), dtype=np.int64)
            table.insert_batch(karr, karr)
        parr = np.array(probes, dtype=np.int64)
        found, _ = table.lookup_batch(parr)
        stats = table.stats
        assert stats.inserts == len(keys)
        assert stats.lookups == len(probes)
        assert stats.lookup_probes >= stats.lookups or not probes
        assert stats.value_reads == int(found.sum())
        assert stats.insert_probes >= stats.inserts
