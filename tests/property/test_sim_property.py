"""Property-based tests of the simulation substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scheduler.morsel import MorselDispatcher
from repro.sim.engine import Simulator
from repro.sim.resources import solve_concurrent_rates
from repro.transfer.pipeline import chunk_sizes, pipeline_makespan


class TestDispatcherProperties:
    @given(
        total=st.integers(0, 10_000),
        morsel=st.integers(1, 500),
        batch=st.integers(1, 8),
    )
    @settings(max_examples=60, deadline=None)
    def test_exact_coverage_no_overlap(self, total, morsel, batch):
        dispatcher = MorselDispatcher(total, morsel)
        cursor = 0
        while (grant := dispatcher.next_batch(batch)) is not None:
            assert grant.start == cursor
            assert grant.end > grant.start
            cursor = grant.end
        assert cursor == total

    @given(total=st.integers(1, 10_000), morsel=st.integers(1, 500))
    @settings(max_examples=40, deadline=None)
    def test_all_but_last_morsel_full_size(self, total, morsel):
        dispatcher = MorselDispatcher(total, morsel)
        sizes = []
        while (grant := dispatcher.next_batch()) is not None:
            sizes.append(grant.tuples)
        assert all(s == morsel for s in sizes[:-1])
        assert 0 < sizes[-1] <= morsel


class TestSolverProperties:
    @given(
        demands=st.dictionaries(
            keys=st.sampled_from(["w1", "w2", "w3"]),
            values=st.dictionaries(
                keys=st.sampled_from(["a", "b", "c"]),
                values=st.floats(0.01, 10.0),
                min_size=1,
                max_size=3,
            ),
            min_size=1,
            max_size=3,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_solution_always_feasible(self, demands):
        rates = solve_concurrent_rates(demands)
        loads = {}
        for worker, vector in demands.items():
            for resource, occupancy in vector.items():
                loads[resource] = loads.get(resource, 0.0) + (
                    occupancy * rates[worker]
                )
        for load in loads.values():
            assert load <= 1.0 + 1e-6

    @given(
        demands=st.dictionaries(
            keys=st.sampled_from(["w1", "w2"]),
            values=st.dictionaries(
                keys=st.sampled_from(["a", "b"]),
                values=st.floats(0.01, 10.0),
                min_size=1,
            ),
            min_size=1,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_rates_never_exceed_solo(self, demands):
        from repro.sim.resources import solo_rate

        rates = solve_concurrent_rates(demands)
        for worker, vector in demands.items():
            assert rates[worker] <= solo_rate(vector) + 1e-9


class TestPipelineProperties:
    @given(total=st.integers(0, 10**9), chunks=st.integers(1, 256))
    @settings(max_examples=60, deadline=None)
    def test_chunks_partition_total(self, total, chunks):
        sizes = chunk_sizes(total, chunks)
        assert sum(sizes) == total
        assert len(sizes) == chunks
        assert max(sizes) - min(sizes) <= 1

    @given(
        stages=st.lists(st.floats(0.0, 100.0), min_size=1, max_size=4),
        chunks=st.integers(1, 64),
    )
    @settings(max_examples=60, deadline=None)
    def test_makespan_bounds(self, stages, chunks):
        makespan = pipeline_makespan(stages, chunks)
        # Never faster than the slowest stage, never slower than serial.
        assert makespan >= max(stages) - 1e-12
        assert makespan <= sum(stages) + 1e-9

    @given(stages=st.lists(st.floats(0.1, 100.0), min_size=2, max_size=4))
    @settings(max_examples=40, deadline=None)
    def test_more_chunks_never_slower(self, stages):
        few = pipeline_makespan(stages, 2)
        many = pipeline_makespan(stages, 64)
        assert many <= few + 1e-9


class TestEngineProperties:
    @given(delays=st.lists(st.floats(0.0, 100.0), min_size=1, max_size=50))
    @settings(max_examples=40, deadline=None)
    def test_events_observed_in_sorted_order(self, delays):
        sim = Simulator()
        observed = []
        for delay in delays:
            sim.schedule(delay, lambda s: observed.append(s.now))
        end = sim.run()
        assert observed == sorted(observed)
        assert end == max(delays)
