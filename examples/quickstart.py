#!/usr/bin/env python3
"""Quickstart: run one out-of-core GPU hash join on the simulated AC922.

The library pairs a functional layer (a real numpy hash join computing
real matches) with a performance layer (a cost model calibrated to the
paper's NVLink 2.0 / PCI-e 3.0 measurements).  This script joins
workload A — 2 GiB ⋈ 32 GiB at paper scale — with the hash table in GPU
memory and both relations streamed from CPU memory over NVLink 2.0.
"""

import repro


def main() -> None:
    # A simulated IBM AC922: 2x POWER9 + 2x V100 over NVLink 2.0.
    machine = repro.ibm_ac922()
    print(f"machine: {machine.name}")
    print(f"  GPU link: {machine.gpu_link('gpu0').name}")
    print(f"  coherent GPU access: {machine.coherent_gpu_access}")

    # Workload A (Table 2): |R| = 2^27, |S| = 2^31, 16-byte tuples.
    # `scale` controls how many tuples actually execute; the cost model
    # always prices the full paper-scale cardinality.
    workload = repro.workload_a(scale=2**-12)
    print(f"\nR: {workload.r}")
    print(f"S: {workload.s}")

    # Ask the paper's placement decision tree (Figure 11) what to do.
    table_bytes = workload.r.modeled_tuples * 16
    decision = repro.decide_placement(machine, table_bytes)
    print(f"\nplacement decision: {decision}")

    # Run the no-partitioning join with the Coherence transfer method.
    join = repro.NoPartitioningJoin(
        machine,
        hash_table_placement=decision.hash_table_placement,
        transfer_method="coherence",
    )
    result = join.run(workload.r, workload.s, processor="gpu0")

    print(f"\nmatches:   {result.matches} (functional, verified)")
    print(f"aggregate: {result.aggregate}")
    print(f"build:     {result.build_cost.seconds * 1e3:.1f} ms "
          f"(bottleneck: {result.build_cost.bottleneck})")
    print(f"probe:     {result.probe_cost.seconds * 1e3:.1f} ms "
          f"(bottleneck: {result.probe_cost.bottleneck})")
    print(f"throughput: {result.throughput_gtuples:.2f} G Tuples/s "
          f"(paper, Figure 12 Coherence: 3.83)")

    # Compare against the CPU radix baseline and PCI-e 3.0.
    cpu = repro.RadixJoin(machine).run(workload.r, workload.s)
    print(f"\nCPU radix baseline: {cpu.throughput_gtuples:.2f} G Tuples/s")
    intel = repro.intel_xeon_v100()
    # Zero-copy needs pinned source memory (Table 1) — reallocate.
    pinned = workload.placed_for("zero_copy")
    pcie = repro.NoPartitioningJoin(
        intel, hash_table_placement="gpu", transfer_method="zero_copy"
    ).run(pinned.r, pinned.s)
    print(f"PCI-e 3.0 zero-copy: {pcie.throughput_gtuples:.2f} G Tuples/s")
    print(f"NVLink speedup over PCI-e: "
          f"{result.throughput_gtuples / pcie.throughput_gtuples:.1f}x")


if __name__ == "__main__":
    main()
