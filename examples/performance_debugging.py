#!/usr/bin/env python3
"""Performance debugging walkthrough: why is my join this fast?

Uses the library's introspection tools on one out-of-core join:

1. `decide_placement` — what the Figure 11 tree recommends and why,
2. `explain_join` — per-resource utilization of each phase,
3. the NUMA distance matrix — where the data should live,
4. `tune_batch_morsels` — the Section 6.1 GPU batch knob,
5. what-if analysis: re-run with a different placement and compare.
"""

import numpy as np

import repro
from repro.obs.explain import explain_join
from repro.core.scheduler.batch import tune_batch_morsels
from repro.hardware.numa import render_matrix
from repro.workloads.custom import make_join_workload


def main() -> None:
    machine = repro.ibm_ac922()

    # A user-shaped workload: sparse 64-bit surrogate keys.
    rng = np.random.default_rng(11)
    r_keys = (rng.permutation(200_000).astype(np.int64) * 1009 + 7)
    s_keys = r_keys[rng.integers(0, len(r_keys), 2_000_000)]
    workload, recommendation = make_join_workload(
        r_keys, s_keys,
        name="orders⋈lineitems",
        modeled_r=2**27,
        modeled_s=2**31,
    )
    print(f"hash scheme: {recommendation.recommended} "
          f"({recommendation.reason})\n")

    # 1. What does the placement tree say?
    table_bytes = workload.r.modeled_tuples * 2 * workload.r.tuple_bytes
    decision = repro.decide_placement(machine, table_bytes)
    print(f"placement decision: {decision}\n")

    # 2. Run and explain.
    join = repro.NoPartitioningJoin(
        machine,
        hash_table_placement=decision.hash_table_placement,
        hash_scheme=recommendation.recommended,
    )
    result = join.run(workload.r, workload.s)
    print(explain_join(result))

    # 3. Where should data live? The NUMA picture.
    print()
    print(render_matrix(machine))

    # 4. The GPU batch knob for co-processing.
    gpu_rate = 3e9  # tuples/s, from the probe explanation above
    batch = tune_batch_morsels(
        morsel_tuples=1 << 20,
        worker_rate=gpu_rate,
        dispatch_latency=20e-6,
    )
    print(f"\ntuned GPU batch: {batch} morsels "
          f"(amortizes the 20 us dispatch below 2% overhead)")

    # 5. What-if: force the table into CPU memory and compare.
    spilled = repro.NoPartitioningJoin(
        machine,
        hash_table_placement="cpu",
        hash_scheme=recommendation.recommended,
    ).run(workload.r, workload.s)
    slowdown = result.throughput_gtuples / spilled.throughput_gtuples
    print(f"\nwhat-if (table spilled to CPU memory): "
          f"{spilled.throughput_gtuples:.2f} vs "
          f"{result.throughput_gtuples:.2f} G Tuples/s "
          f"({slowdown:.1f}x slower — the Figure 14 cliff)")


if __name__ == "__main__":
    main()
