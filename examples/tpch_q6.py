#!/usr/bin/env python3
"""TPC-H query 6 out-of-core (Section 7.2.4 / Figure 15).

Scales Q6 from SF 100 to SF 1000 (8.9-89.4 GiB working sets, nothing
cached in GPU memory) and compares branching vs. predicated kernels on
the CPU, the GPU over NVLink 2.0, and the GPU over PCI-e 3.0.

The counterintuitive result: *branching* beats predication on the GPU,
because the query's ~1.9% selectivity plus dbgen's clustered shipdates
let the branching kernel skip transferring most cache lines of the
later columns — and the interconnect is the bottleneck.
"""

import dataclasses

import repro


def main() -> None:
    ibm = repro.ibm_ac922()
    intel = repro.intel_xeon_v100()

    configs = [
        ("CPU  predicated", ibm, "cpu0", "predicated", "coherence"),
        ("CPU  branching ", ibm, "cpu0", "branching", "coherence"),
        ("NVL  predicated", ibm, "gpu0", "predicated", "coherence"),
        ("NVL  branching ", ibm, "gpu0", "branching", "coherence"),
        ("PCIe predicated", intel, "gpu0", "predicated", "zero_copy"),
        ("PCIe branching ", intel, "gpu0", "branching", "zero_copy"),
    ]

    header = f"{'config':>16} |" + "".join(
        f" SF{sf:>5}" for sf in (100, 500, 1000)
    )
    print(header + "   (G Tuples/s)")
    print("-" * len(header))
    revenue_checked = False
    for label, machine, proc, variant, method in configs:
        cells = []
        for sf in (100, 500, 1000):
            workload = repro.lineitem_q6(scale_factor=sf, scale=2**-10)
            # Allocate lineitem as the transfer method requires (Table 1).
            workload = dataclasses.replace(
                workload, kind=repro.get_method(method).required_kind
            )
            op = repro.TpchQ6(machine, variant=variant, transfer_method=method)
            res = op.run(workload, processor=proc)
            cells.append(f" {res.throughput_gtuples:>6.2f}")
            if not revenue_checked:
                print(f"  [functional check] SF{sf}: revenue "
                      f"{res.revenue:.2f} from {res.qualifying_rows} rows "
                      f"({res.selectivity:.1%} selectivity)")
                revenue_checked = True
        print(f"{label:>16} |" + "".join(cells))

    # Show the branching kernel's column-level skipping.
    workload = repro.lineitem_q6(scale_factor=1000, scale=2**-10)
    res = repro.TpchQ6(ibm, variant="branching").run(workload, processor="gpu0")
    names = ("l_shipdate", "l_discount", "l_quantity", "l_extendedprice")
    print("\nbranching variant, fraction of each column's lines loaded:")
    for name, fraction in zip(names, res.column_line_fractions):
        print(f"  {name:>16}: {fraction:.0%}")


if __name__ == "__main__":
    main()
