#!/usr/bin/env python3
"""A multi-operator analytical query through the vectorized engine.

The paper motivates GPU acceleration for warehouse-style queries; this
example runs a star-schema-flavoured query over generated data with the
library's generic operators (scan -> filter -> hash join -> group-by
aggregation), morsel-at-a-time:

    SELECT r.region, SUM(s.amount)
    FROM sales s JOIN customers r ON s.customer_id = r.id
    WHERE s.amount > 50
    GROUP BY r.region

and prices the same plan on the simulated AC922 with the cost model
(streaming scans over NVLink plus the join's hash-table traffic).
"""

import numpy as np

import repro
from repro.costmodel.access import AccessProfile, random_stream, seq_stream


def build_tables(n_customers=20_000, n_sales=500_000, seed=3):
    rng = np.random.default_rng(seed)
    customers = {
        "id": np.arange(n_customers, dtype=np.int64),
        "region": rng.integers(0, 8, n_customers).astype(np.int64),
    }
    sales = {
        "customer_id": rng.integers(0, n_customers, n_sales).astype(np.int64),
        "amount": rng.integers(1, 100, n_sales).astype(np.int64),
    }
    return customers, sales


def main() -> None:
    customers, sales = build_tables()

    # --- functional execution through the engine -----------------------
    plan = repro.HashAggregate(
        repro.HashJoinOp(
            build=repro.TableScan(customers, morsel_rows=4096),
            probe=repro.Filter(
                repro.TableScan(sales, morsel_rows=65536),
                lambda batch: batch["amount"] > 50,
            ),
            build_key="id",
            probe_key="customer_id",
        ),
        group_by=("build_region",),
        aggregates={"revenue": ("amount", "sum"), "orders": ("*", "count")},
    )
    result = repro.collect(plan)

    print("region | revenue      | orders")
    print("-------+--------------+-------")
    for region, revenue, orders in zip(
        result["build_region"], result["revenue"], result["orders"]
    ):
        print(f"{region:>6} | {revenue:>12} | {orders:>6}")

    # Verify against a direct numpy computation.
    mask = sales["amount"] > 50
    regions = customers["region"][sales["customer_id"][mask]]
    expected = {
        r: int(sales["amount"][mask][regions == r].sum())
        for r in np.unique(regions)
    }
    assert all(
        expected[r] == int(v)
        for r, v in zip(result["build_region"], result["revenue"])
    )
    print("\nfunctional result verified against numpy reference ✓")

    # --- price the same plan on the simulated AC922 --------------------
    machine = repro.ibm_ac922()
    cost_model = repro.CostModel(machine)
    scale_up = 2_000  # model a 1-billion-row sales table
    modeled_sales = len(sales["amount"]) * scale_up
    modeled_customers = len(customers["id"]) * scale_up
    profile = AccessProfile(
        streams=[
            seq_stream("gpu0", "cpu0-mem", modeled_sales * 16, "scan sales"),
            seq_stream(
                "gpu0", "cpu0-mem", modeled_customers * 16, "scan customers"
            ),
            random_stream(
                "gpu0",
                "gpu0-mem",
                accesses=2 * modeled_sales * float(mask.mean()),
                access_bytes=8,
                working_set_bytes=modeled_customers * 16,
                label="join probes",
            ),
        ],
        compute_tuples=modeled_sales * 2,
        label="star query",
    )
    cost = cost_model.phase_cost(profile)
    rows_per_second = modeled_sales / cost.seconds
    print(f"\nsimulated at {modeled_sales / 1e9:.1f}B sales rows: "
          f"{cost.seconds:.2f}s, {rows_per_second / 1e9:.2f} G rows/s, "
          f"bottleneck {cost.bottleneck}")


if __name__ == "__main__":
    main()
