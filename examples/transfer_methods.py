#!/usr/bin/env python3
"""Compare all eight transfer methods of Table 1 (Figure 12).

Runs workload A through every method on both machines, allocating the
relations in each method's required memory kind (pageable / pinned /
unified), and prints the resulting join throughput.  Coherence is
rejected on the PCI-e machine — PCI-e 3.0 is not cache-coherent.
"""

import repro
from repro.transfer.methods import TRANSFER_METHODS, UnsupportedTransferError


def main() -> None:
    workload = repro.workload_a(scale=2**-12)
    machines = {
        "NVLink 2.0 (AC922)": repro.ibm_ac922(),
        "PCI-e 3.0 (Xeon)": repro.intel_xeon_v100(),
    }

    print(f"{'method':>16} {'semantics':>10} {'level':>6} {'memory':>9} |"
          f" {'NVLink':>7} {'PCI-e':>7}")
    print("-" * 70)
    for name, method in TRANSFER_METHODS.items():
        cells = []
        for machine in machines.values():
            r = workload.r.placed("cpu0-mem", kind=method.required_kind)
            s = workload.s.placed("cpu0-mem", kind=method.required_kind)
            join = repro.NoPartitioningJoin(
                machine, hash_table_placement="gpu", transfer_method=name
            )
            try:
                res = join.run(r, s, processor="gpu0")
                cells.append(f"{res.throughput_gtuples:>7.2f}")
            except UnsupportedTransferError:
                cells.append(f"{'n/a':>7}")
        print(f"{name:>16} {method.semantics:>10} {method.level:>6} "
              f"{method.required_kind.value:>9} | " + " ".join(cells))

    print("\npull-based methods read CPU memory from inside the kernel;")
    print("push-based methods pipeline chunked copies into GPU memory.")

    # Inspect one method's ingest model directly.
    machine = repro.ibm_ac922()
    cost_model = repro.CostModel(machine)
    for name in ("coherence", "pageable_copy", "um_migration"):
        method = repro.get_method(name)
        bw = method.ingest_bandwidth(cost_model, "gpu0", "cpu0-mem")
        print(f"  {name}: effective ingest bandwidth "
              f"{bw / 2**30:.1f} GiB/s")


if __name__ == "__main__":
    main()
