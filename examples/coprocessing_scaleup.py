#!/usr/bin/env python3
"""Cooperative CPU+GPU execution (Section 6 / Figure 21).

Runs workloads A, B, and C under the four strategies — CPU-only, Het
(shared hash table in CPU memory), GPU+Het (per-processor table
copies), and GPU-only — and prints the morsel-dispatch timeline of the
heterogeneous probe phase, showing how the dispatcher balances load
between processors of very different speeds.
"""

import repro


def main() -> None:
    machine = repro.ibm_ac922()
    workloads = {
        "A (2 GiB ⋈ 32 GiB)": repro.workload_a(scale=2**-12),
        "B (4 MiB ⋈ 32 GiB)": repro.workload_b(scale=2**-12),
        "C (|R| = |S|)": repro.workload_c(scale=2**-12),
    }

    for name, workload in workloads.items():
        print(f"workload {name}")
        cpu = repro.NoPartitioningJoin(
            machine, hash_table_placement="cpu"
        ).run(workload.r, workload.s, processor="cpu0")
        print(f"  cpu-only : {cpu.throughput_gtuples:5.2f} G Tuples/s")

        for strategy in ("het", "gpu+het"):
            coop = repro.CoopJoin(machine, strategy=strategy)
            res = coop.run(workload.r, workload.s, workers=("cpu0", "gpu0"))
            shares = ", ".join(
                f"{worker}: {share:.0%}"
                for worker, share in sorted(res.worker_shares.items())
            )
            print(f"  {strategy:9s}: {res.throughput_gtuples:5.2f} G Tuples/s "
                  f"(probe shares — {shares})")

        gpu = repro.NoPartitioningJoin(
            machine, hash_table_placement="gpu"
        ).run(workload.r, workload.s)
        print(f"  gpu-only : {gpu.throughput_gtuples:5.2f} G Tuples/s")
        print()

    # Drill into the Het probe timeline for workload A.
    workload = workloads["A (2 GiB ⋈ 32 GiB)"]
    coop = repro.CoopJoin(machine, strategy="het", morsel_tuples=1 << 24)
    res = coop.run(workload.r, workload.s, workers=("cpu0", "gpu0"))
    print("Het probe timeline (workload A, 16M-tuple morsels):")
    for worker, spans in sorted(res.timeline.by_worker().items()):
        busy = res.timeline.busy_time(worker)
        tuples = res.timeline.units_processed(worker)
        tail = res.timeline.idle_tail(worker)
        print(f"  {worker}: {len(spans)} dispatches, {busy:.2f}s busy, "
              f"{tuples / 1e9:.2f}G tuples, idle tail {tail * 1e3:.1f} ms")
    print(f"  probe makespan: {res.probe_seconds:.2f}s "
          f"(skew kept small by dynamic morsel dispatch)")

    from repro.utils.gantt import render_gantt

    print()
    print(render_gantt(res.timeline, width=64))

    # The same dispatcher drives the functional layer.
    dispatcher = repro.MorselDispatcher(
        workload.s.executed_tuples, morsel_tuples=100_000
    )
    handed = 0
    while (grant := dispatcher.next_batch(4, worker="demo")) is not None:
        handed += grant.tuples
    print(f"\nfunctional dispatcher handed out {handed} tuples "
          f"in {len(dispatcher.dispatched)} batches")


if __name__ == "__main__":
    main()
