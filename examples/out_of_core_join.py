#!/usr/bin/env python3
"""Build-side scaling: hash tables larger than GPU memory.

Reproduces the story of Section 5 / Figure 17: as the build relation
grows, the hash table outgrows the 16 GiB GPU.  PCI-e 3.0 rides over a
performance cliff; NVLink 2.0 degrades gracefully; the hybrid hash
table (GPU-first allocation with CPU spill, Figure 8) keeps part of the
table local and recovers much of the loss.
"""

import repro
from repro.memory.allocator import OutOfMemoryError


def spilling_join(machine, workload, method):
    """GPU placement while the table fits, whole-table spill after."""
    workload = workload.placed_for(method)
    try:
        join = repro.NoPartitioningJoin(
            machine, hash_table_placement="gpu", transfer_method=method
        )
        return join.run(workload.r, workload.s), "gpu"
    except OutOfMemoryError:
        join = repro.NoPartitioningJoin(
            machine, hash_table_placement="cpu", transfer_method=method
        )
        return join.run(workload.r, workload.s), "cpu (spilled)"


def main() -> None:
    ibm = repro.ibm_ac922()
    intel = repro.intel_xeon_v100()

    print(f"{'tuples':>8} {'table':>9} | {'PCI-e 3.0':>10} "
          f"{'NVLink 2.0':>10} {'hybrid':>7}  (G Tuples/s)")
    print("-" * 58)
    for millions in (256, 512, 1024, 1280, 1536, 2048):
        workload = repro.workload_ratio(
            1, scale=2**-13, modeled_r=millions * 10**6
        )
        table_gib = millions * 10**6 * 16 / 2**30

        pcie, _ = spilling_join(intel, workload, "zero_copy")
        nvlink, placement = spilling_join(ibm, workload, "coherence")
        hybrid = repro.NoPartitioningJoin(
            ibm, hash_table_placement="hybrid"
        ).run(workload.r, workload.s)
        gpu_frac = hybrid.placement.gpu_fraction(ibm)

        print(f"{millions:>6}M {table_gib:>8.1f}G | "
              f"{pcie.throughput_gtuples:>10.2f} "
              f"{nvlink.throughput_gtuples:>10.2f} "
              f"{hybrid.throughput_gtuples:>7.2f}  "
              f"[{placement}, hybrid keeps {gpu_frac:.0%} on GPU]")

    print("\nThe hybrid hash table follows Section 5.3's model:")
    print("  J = A_gpu * G_tput + (1 - A_gpu) * C_tput")
    print("throughput degrades gracefully instead of falling off a cliff.")

    # Show the underlying allocation machinery directly.
    allocator = repro.Allocator(repro.ibm_ac922())
    allocation = repro.allocate_hybrid(
        allocator, "gpu0", nbytes=24 * 2**30, gpu_reserve=512 << 20
    )
    print(f"\nhybrid allocation of 24 GiB: "
          f"{allocation.bytes_per_region()} "
          f"(GPU fraction {allocation.gpu_fraction:.2f})")
    for segment in allocation.address_space.segments:
        print(f"  virtual [{segment.start:>12} .. {segment.end:>12}) "
              f"-> {segment.region_name}")


if __name__ == "__main__":
    main()
